//! Quickstart: the paper's headline experiment in ~40 lines.
//!
//! Throws n balls into n bins with d = 3 choices, once with fully random
//! choices and once with double hashing, and prints the load distributions
//! side by side (compare with Table 1 of the paper).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use balanced_allocations::prelude::*;
use balanced_allocations::stats::format_fraction;

fn main() {
    let n = 1u64 << 14;
    let d = 3;
    let trials = 100;

    println!("{n} balls into {n} bins, least-loaded of {d} choices, {trials} trials\n");

    let config = ExperimentConfig::new(n).trials(trials).seed(1);
    let random = run_load_experiment(&FullyRandom::new(n, d, Replacement::Without), &config);
    let double = run_load_experiment(&DoubleHashing::new(n, d), &config);

    println!(
        "{:>4}  {:>14}  {:>14}",
        "Load", "Fully Random", "Double Hashing"
    );
    let max_load = random.overall_max_load().max(double.overall_max_load());
    for load in 0..=max_load as usize {
        println!(
            "{:>4}  {:>14}  {:>14}",
            load,
            format_fraction(random.mean_fraction(load)),
            format_fraction(double.mean_fraction(load)),
        );
    }

    // The fluid limit predicts the same numbers for both (Theorem 8):
    let fluid = BalancedAllocationOde::new(d as u32, 8).load_fractions(1.0);
    println!("\nFluid-limit prediction (n = infinity):");
    for (load, p) in fluid.iter().enumerate().take(max_load as usize + 1) {
        println!("{load:>4}  {}", format_fraction(*p));
    }

    println!(
        "\nMax load seen: random = {}, double hashing = {}",
        random.overall_max_load(),
        double.overall_max_load()
    );
}
