//! Capture workload op streams to `.baops` files and replay them.
//!
//! A capture freezes a scenario's exact operation sequence, so the same
//! traffic can be served later — against a different scheme, choice mode,
//! worker mode, or a future version of this codebase — and the results
//! diffed bit-for-bit.
//!
//! ```text
//! cargo run --release --example replay_capture -- capture <scenario> <path> [ops] [keyspace] [seed]
//! cargo run --release --example replay_capture -- replay <path> [scheme] [keyed|stream]
//! cargo run --release --example replay_capture -- diff <path>
//! cargo run --release --example replay_capture -- golden <dir>
//! cargo run --release --example replay_capture -- smoke
//! ```
//!
//! * `capture` pulls ops from a scenario generator into a `.baops` file;
//! * `replay` serves a capture through a 4-shard engine and prints stats;
//! * `diff` serves a capture across every scheme × choice mode × worker
//!   mode and reports divergences (exit 1 if worker modes disagree);
//! * `golden` regenerates the pinned golden corpus into a directory (CI
//!   diffs the result against `tests/golden/`);
//! * `smoke` captures, saves, reopens, replays, and diffs every scenario
//!   end-to-end in a temp directory (exit 1 on any failure).

use balanced_allocations::prelude::*;
use balanced_allocations::workload::replay::{golden_capture, GOLDEN_SEED};
use std::path::Path;
use std::process::ExitCode;

const DIFF_SCHEMES: &[&str] = &["random", "double", "one"];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  replay_capture capture <scenario> <path> [ops] [keyspace] [seed]\n  \
         replay_capture replay <path> [scheme] [keyed|stream]\n  \
         replay_capture diff <path>\n  \
         replay_capture golden <dir>\n  \
         replay_capture smoke\n\nscenarios: {}",
        Scenario::names().join(", ")
    );
    ExitCode::FAILURE
}

fn open_or_die(path: &str) -> Result<ReplayFile, ExitCode> {
    ReplayFile::open(path).map_err(|e| {
        eprintln!("cannot open `{path}`: {e}");
        ExitCode::FAILURE
    })
}

fn capture_cmd(args: &[String]) -> ExitCode {
    let (Some(name), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(scenario) = Scenario::by_name(name) else {
        eprintln!(
            "unknown scenario `{name}`; expected one of: {}",
            Scenario::names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let ops: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let keyspace: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1 << 14);
    let seed: u64 = args
        .get(4)
        .and_then(|s| s.parse().ok())
        .unwrap_or(GOLDEN_SEED);
    let file = ReplayFile::capture(&scenario, keyspace, seed, ops);
    let bytes = file.encode();
    if let Err(e) = std::fs::write(path, &bytes) {
        eprintln!("cannot write `{path}`: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "captured {ops} `{name}` ops (keyspace {keyspace}, seed {seed}) -> {path} \
         ({} bytes, {:.2} bytes/op)",
        bytes.len(),
        bytes.len() as f64 / ops as f64
    );
    ExitCode::SUCCESS
}

fn replay_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let file = match open_or_die(path) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let scheme = args.get(1).map(String::as_str).unwrap_or("double");
    let mode = if args.iter().any(|a| a == "keyed") {
        ChoiceMode::Keyed
    } else {
        ChoiceMode::Stream
    };
    let header = file.header().clone();
    println!(
        "replaying `{}` capture: {} ops, keyspace {}, captured at seed {} (format v{})",
        header.scenario, header.op_count, header.keyspace, header.seed, header.version
    );
    let config = EngineConfig::new(4, 1 << 12, 3)
        .seed(header.seed)
        .mode(mode);
    let Some(mut engine) = Engine::by_name(scheme, config) else {
        eprintln!(
            "unknown scheme `{scheme}`; expected one of: {}",
            AnyScheme::names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let summary = engine.serve_replay(file.ops().iter().copied(), 4_096);
    println!(
        "scheme `{scheme}` ({mode:?} choices): {} inserts, {} deletes, {} lookups",
        summary.inserts, summary.deletes, summary.lookups
    );
    println!("{}", engine.stats().render());
    ExitCode::SUCCESS
}

fn diff_capture(file: &ReplayFile) -> Result<String, String> {
    let config = EngineConfig::new(4, 1 << 10, 3).seed(file.header().seed);
    let outcome =
        differential_replay(file, DIFF_SCHEMES, config, 2_048).expect("DIFF_SCHEMES are all known");
    if outcome.is_consistent() {
        Ok(outcome.render())
    } else {
        Err(outcome.render())
    }
}

fn diff_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let file = match open_or_die(path) {
        Ok(f) => f,
        Err(code) => return code,
    };
    match diff_capture(&file) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprintln!("{report}");
            ExitCode::FAILURE
        }
    }
}

fn golden_cmd(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create `{dir}`: {e}");
        return ExitCode::FAILURE;
    }
    for scenario in Scenario::all() {
        let path = Path::new(dir).join(format!("{}.baops", scenario.name()));
        let file = golden_capture(&scenario);
        let bytes = file.encode();
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} ({} ops, {} bytes)",
            path.display(),
            file.header().op_count,
            bytes.len()
        );
    }
    ExitCode::SUCCESS
}

fn smoke_cmd() -> ExitCode {
    let dir = std::env::temp_dir().join(format!("baops-smoke-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create temp dir: {e}");
        return ExitCode::FAILURE;
    }
    let mut failures = 0u32;
    for scenario in Scenario::all() {
        let name = scenario.name();
        let path = dir.join(format!("{name}.baops"));
        // Small but non-trivial: enough ops for churn/adversarial phases.
        let captured = ReplayFile::capture(&scenario, 512, GOLDEN_SEED, 4_096);
        if let Err(e) = captured.save(&path) {
            eprintln!("FAIL {name}: save: {e}");
            failures += 1;
            continue;
        }
        let reopened = match ReplayFile::open(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("FAIL {name}: reopen: {e}");
                failures += 1;
                continue;
            }
        };
        if reopened != captured {
            eprintln!("FAIL {name}: reopened capture differs from the original");
            failures += 1;
            continue;
        }
        match diff_capture(&reopened) {
            Ok(_) => println!("ok {name}: capture/save/open/replay/diff"),
            Err(report) => {
                eprintln!("FAIL {name}: worker modes diverged\n{report}");
                failures += 1;
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    if failures == 0 {
        println!("smoke: all {} scenarios pass", Scenario::all().len());
        ExitCode::SUCCESS
    } else {
        eprintln!("smoke: {failures} scenario(s) failed");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("capture") => capture_cmd(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("diff") => diff_cmd(&args[1..]),
        Some("golden") => golden_cmd(&args[1..]),
        Some("smoke") => smoke_cmd(),
        _ => usage(),
    }
}
