//! A power-of-d-choices load balancer (the supermarket model).
//!
//! Dispatchers in front of a server fleet sample d servers per request and
//! route to the shortest queue. This example compares response times when
//! the d samples come from full randomness vs double hashing, against the
//! fluid-limit prediction (the paper's Table 8 workload).
//!
//! ```text
//! cargo run --release --example load_balancer
//! ```

use balanced_allocations::prelude::*;

fn main() {
    let servers = 1u64 << 10;
    let horizon = 2_000.0; // simulated seconds
    let burn_in = 500.0;
    let seq = SeedSequence::new(99);

    println!(
        "{servers} servers, Poisson arrivals, exp(1) service, horizon {horizon}s \
         (burn-in {burn_in}s)\n"
    );
    println!(
        "{:>6} {:>3} {:>13} {:>14} {:>16}",
        "lambda", "d", "fluid limit", "fully random", "double hashing"
    );

    for lambda in [0.9f64, 0.99] {
        for d in [2usize, 3, 4] {
            let fluid = SupermarketOde::new(lambda, d as u32, 60).equilibrium_sojourn_time();
            let mut cells = Vec::new();
            for (i, name) in ["random", "double"].iter().enumerate() {
                let scheme = AnyScheme::by_name(name, servers, d).expect("known scheme");
                let sim = SupermarketSim::new(scheme, lambda);
                let mut rng = seq
                    .child((lambda * 100.0) as u64 * 100 + d as u64 * 10 + i as u64)
                    .xoshiro();
                cells.push(sim.run(horizon, burn_in, &mut rng).mean());
            }
            println!(
                "{lambda:>6} {d:>3} {fluid:>13.5} {:>14.5} {:>16.5}",
                cells[0], cells[1]
            );
        }
    }

    println!(
        "\nTakeaway: at every load level the two hashing disciplines agree with \
         each other and with the fluid limit; more choices help most near \
         saturation (lambda -> 1)."
    );
}
