//! Serve production-shaped traffic through the sharded allocation engine.
//!
//! Builds a 4-shard engine for a chosen scheme, streams every workload
//! scenario through it (uniform, Zipf, bursty, churn, adversarial), and
//! prints the per-shard load tables, per-op-kind percentiles, and serve
//! rates. The punchline is the paper's, at serving scale: double hashing's
//! max loads match fully random hashing under every traffic shape — in
//! both choice modes.
//!
//! ```text
//! cargo run --release --example engine_serve [scheme] [shards] [ops] [keyed|stream] [pipelined[=DEPTH]|rounds] [producers=N] [metrics[=PATH]]
//! # scheme: random | double | blocks | one | ... (default: compares random vs double)
//! # keyed: derive choices from hash(key, shard_salt) so re-inserts replay
//! #        their f + k·g probe sequences (default: stream)
//! # pipelined: overlap workload generation with shard application through
//! #            bounded per-worker SPSC rings (default: phased
//! #            generate/apply); DEPTH sets the ring depth (default 4;
//! #            must be a power of two — the same `EngineConfig`
//! #            validation that guards direct engine construction
//! #            rejects anything else here too)
//! # rounds: resolve each batch's inserts in synchronized propose/resolve
//! #         rounds over the global bin space; placement becomes a pure
//! #         function of (batch contents, seed), independent of op order,
//! #         thread count, and shard count
//! # producers: fan routing out to N producer threads on the pipelined
//! #            path, or propose-phase threads on the rounds path
//! #            (default 1; results are bit-identical for any N —
//! #            ignored, with a warning, under phased ingestion)
//! # metrics: stream live windowed unit-of-work metrics (batch latency,
//! #          queue occupancy, backpressure stalls, routing time) as
//! #          JSON lines to stderr, or append them to PATH with
//! #          metrics=PATH; results are bit-identical with or without
//! #          the exporter attached
//! ```

use balanced_allocations::prelude::*;
use std::io::Write;
use std::time::Duration;

/// Where the live metrics stream goes, if anywhere.
#[derive(Clone, PartialEq)]
enum MetricsOut {
    Off,
    Stderr,
    File(String),
}

impl MetricsOut {
    /// Builds one JSON-lines exporter for a single scenario run (file
    /// targets append, so every scenario's windows land in one log).
    fn exporter(&self) -> Option<Box<dyn MetricsSink + Send>> {
        let window = Duration::from_millis(25);
        match self {
            MetricsOut::Off => None,
            MetricsOut::Stderr => Some(Box::new(JsonLinesExporter::stderr(window))),
            MetricsOut::File(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot open metrics file {path}: {e}");
                        std::process::exit(1);
                    });
                let writer: Box<dyn Write + Send> = Box::new(file);
                Some(Box::new(JsonLinesExporter::new(writer, window)))
            }
        }
    }
}

fn serve_suite(
    scheme: &str,
    shards: usize,
    total_ops: u64,
    mode: ChoiceMode,
    ingest: IngestMode,
    metrics: &MetricsOut,
) {
    let bins_per_shard = 1u64 << 12;
    let keyspace = bins_per_shard * shards as u64;
    println!(
        "== scheme `{scheme}` ({mode:?} choices, {ingest:?} ingest): {shards} shards x {bins_per_shard} bins, d = 3, {total_ops} ops/scenario ==\n"
    );
    for scenario in Scenario::all() {
        let config = EngineConfig::new(shards, bins_per_shard, 3)
            .seed(2014)
            .mode(mode)
            .ingest(ingest);
        let report = match metrics.exporter() {
            Some(sink) => {
                run_scenario_with_sink(scheme, &scenario, config, keyspace, total_ops, 4096, sink)
            }
            None => run_scenario(scheme, &scenario, config, keyspace, total_ops, 4096),
        }
        .expect("scheme validated in main");
        println!(
            "--- {} ({:.2} M ops/s) ---",
            report.scenario,
            report.ops_per_sec() / 1e6
        );
        println!("{}", report.stats.render());
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // A trailing `keyed`/`stream` selects the choice mode.
    let mode = match args.iter().position(|a| a == "keyed" || a == "stream") {
        Some(idx) => {
            if args.remove(idx) == "keyed" {
                ChoiceMode::Keyed
            } else {
                ChoiceMode::Stream
            }
        }
        None => ChoiceMode::Stream,
    };
    // A `producers=N` token sets the pipelined fan-out width.
    let producers = match args.iter().position(|a| a.starts_with("producers=")) {
        Some(idx) => {
            let token = args.remove(idx);
            let n: usize = token["producers=".len()..].parse().unwrap_or_else(|_| {
                eprintln!("cannot parse `{token}`; expected producers=N");
                std::process::exit(1);
            });
            if n == 0 {
                eprintln!("producers=0 is not servable; need at least one");
                std::process::exit(1);
            }
            Some(n)
        }
        None => None,
    };
    // A `rounds` token selects round-based bulk-parallel ingestion; a
    // `pipelined` or `pipelined=DEPTH` token selects pipelined
    // ingestion. The requested queue depth passes through verbatim:
    // `EngineConfig::validate` is the single contract for rejecting
    // unusable depths (see below), so no silent round-up happens here.
    let rounds = args
        .iter()
        .position(|a| a == "rounds")
        .map(|idx| args.remove(idx))
        .is_some();
    let ingest = match args
        .iter()
        .position(|a| a == "pipelined" || a.starts_with("pipelined="))
    {
        Some(_) if rounds => {
            eprintln!("pick one ingestion mode: `pipelined` or `rounds`, not both");
            std::process::exit(1);
        }
        Some(idx) => {
            let token = args.remove(idx);
            let queue_depth: usize = match token.strip_prefix("pipelined=") {
                Some(depth) => depth.parse().unwrap_or_else(|_| {
                    eprintln!("cannot parse `{token}`; expected pipelined=DEPTH");
                    std::process::exit(1);
                }),
                None => 4,
            };
            IngestMode::Pipelined {
                queue_depth,
                producers: producers.unwrap_or(1),
            }
        }
        None if rounds => IngestMode::Rounds {
            producers: producers.unwrap_or(1),
        },
        None => {
            if let Some(n) = producers {
                eprintln!(
                    "warning: producers={n} has no effect under phased ingestion; pass `pipelined` or `rounds` to fan out"
                );
            }
            IngestMode::Phased
        }
    };
    // A `metrics` or `metrics=PATH` token turns on the live exporter.
    let metrics = match args
        .iter()
        .position(|a| a == "metrics" || a.starts_with("metrics="))
    {
        Some(idx) => {
            let token = args.remove(idx);
            match token.strip_prefix("metrics=") {
                Some(path) if !path.is_empty() => MetricsOut::File(path.to_string()),
                _ => MetricsOut::Stderr,
            }
        }
        None => MetricsOut::Off,
    };
    // A numeric first argument means the scheme was omitted: keep the
    // default two-scheme comparison and read [shards] [ops] from there.
    let (schemes, rest): (Vec<String>, &[String]) = match args.first() {
        Some(first) if first.parse::<u64>().is_err() => {
            if AnyScheme::by_name(first, 1 << 12, 3).is_none() {
                eprintln!(
                    "unknown scheme `{first}`; expected one of: {}",
                    AnyScheme::names().join(", ")
                );
                std::process::exit(1);
            }
            (vec![first.clone()], &args[1..])
        }
        _ => (vec!["random".into(), "double".into()], &args[..]),
    };
    let shards: usize = rest.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let total_ops: u64 = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);
    // One validation contract for every construction path: the exact
    // config serve_suite will build gets checked up front, so a bad
    // `pipelined=DEPTH` or `producers=0` fails here with the engine's
    // own error instead of being silently papered over.
    let probe = EngineConfig::new(shards, 1 << 12, 3)
        .seed(2014)
        .mode(mode)
        .ingest(ingest);
    if let Err(err) = probe.validate() {
        eprintln!("{err}");
        std::process::exit(2);
    }
    for scheme in &schemes {
        serve_suite(scheme, shards, total_ops, mode, ingest, &metrics);
    }
}
