//! "Less hashing, same performance" — Bloom filters with double hashing.
//!
//! The paper's §1.1 cites Kirsch–Mitzenmacher: deriving a Bloom filter's k
//! probe positions from two hash values instead of k changes nothing about
//! its false-positive rate. This example builds the same filter three ways
//! and measures it.
//!
//! ```text
//! cargo run --release --example bloom_filter
//! ```

use balanced_allocations::prelude::*;

fn main() {
    let n = 100_000u64; // keys inserted
    let queries = 500_000u64; // negative lookups
    println!("Bloom filter, {n} keys inserted, {queries} negative queries\n");
    println!(
        "{:>9} {:>3} {:>10} {:>13} {:>15} {:>16}",
        "target p", "k", "theory", "independent", "double hashing", "enhanced double"
    );

    for target in [0.1f64, 0.01, 0.001] {
        let mut measured = Vec::new();
        let mut k = 0;
        let mut theory = 0.0;
        for strategy in [
            ProbeStrategy::Independent,
            ProbeStrategy::DoubleHashing,
            ProbeStrategy::EnhancedDouble,
        ] {
            let mut filter = BloomFilter::with_rate(n, target, strategy, 2014);
            for key in 0..n {
                filter.insert(key);
            }
            k = filter.k();
            theory = filter.theoretical_fpr();
            let mut rng = Xoshiro256StarStar::seed_from_u64(1);
            measured.push(filter.measure_fpr(queries, &mut rng));
        }
        println!(
            "{target:>9} {k:>3} {theory:>10.5} {:>13.5} {:>15.5} {:>16.5}",
            measured[0], measured[1], measured[2]
        );
    }

    println!(
        "\nAll three columns agree with the theoretical rate: the k-probe \
         positions only need to *look* independent at the bit-vector level, \
         and an arithmetic progression from two hashes suffices — the same \
         phenomenon the paper proves for balanced allocations."
    );
}
