//! A router flow table built on d-left hashing with double hashing.
//!
//! The paper's hardware motivation: multiple-choice hashing is used in
//! routers, where computing d independent hashes per packet costs silicon.
//! Double hashing needs two. This example sizes a d-left flow table the way
//! a switch designer would: fixed-capacity buckets, d subtables, insert
//! until overflow, and reports achievable occupancy under both hashing
//! disciplines.
//!
//! ```text
//! cargo run --release --example router_flow_table
//! ```

use balanced_allocations::prelude::*;

/// Inserts flows one at a time into bucket-capacity-limited bins until one
/// overflows; returns the number of flows placed before overflow.
fn fill_until_overflow<S: ChoiceScheme>(
    scheme: &S,
    bucket_capacity: u32,
    rng: &mut impl Rng64,
) -> u64 {
    let mut alloc = Allocation::new(scheme.n());
    let mut choices = vec![0u64; scheme.d()];
    let mut placed = 0u64;
    loop {
        scheme.fill_choices(rng, &mut choices);
        // Ties to the left: Vöcking's rule, matching d-left hardware.
        let bin = alloc.place(&choices, TieBreak::FirstOffered, rng);
        if alloc.load(bin) > bucket_capacity {
            return placed;
        }
        placed += 1;
    }
}

fn main() {
    // A 4-way d-left table with 2^12 buckets per subtable, 4 entries each —
    // 64Ki flow slots, the shape of a small TCAM-assist table.
    let d = 4usize;
    let subtable = 1u64 << 12;
    let n = subtable * d as u64;
    let bucket_capacity = 4u32;
    let trials = 25;

    println!(
        "d-left flow table: {d} subtables x {subtable} buckets x {bucket_capacity} entries \
         = {} slots\n",
        n * bucket_capacity as u64
    );
    println!(
        "{:>22}  {:>12}  {:>10}",
        "hashing", "flows placed", "occupancy"
    );

    let seq = SeedSequence::new(7);
    for (label, scheme) in [
        (
            "fully random",
            AnyScheme::by_name("dleft-random", n, d).expect("known"),
        ),
        (
            "double hashing",
            AnyScheme::by_name("dleft-double", n, d).expect("known"),
        ),
    ] {
        let mut w = Welford::new();
        for trial in 0..trials {
            let mut rng = seq.child(trial).xoshiro();
            w.push(fill_until_overflow(&scheme, bucket_capacity, &mut rng) as f64);
        }
        let occupancy = w.mean() / (n * bucket_capacity as u64) as f64;
        println!(
            "{:>22}  {:>12.0}  {:>9.1}%",
            label,
            w.mean(),
            occupancy * 100.0
        );
    }

    println!(
        "\nBoth disciplines reach the same occupancy before first overflow — \
         the paper's claim, in the paper's motivating application."
    );
}
