//! Maximum-load growth: log n / log log n vs log log n.
//!
//! The classical separation that makes the power of two choices famous,
//! with double hashing shown to sit exactly on the multiple-choice curve.
//!
//! ```text
//! cargo run --release --example max_load_scaling
//! ```

use balanced_allocations::prelude::*;

fn mean_max_load(scheme: &AnyScheme, n: u64, trials: u64, seed: u64) -> f64 {
    let cfg = ExperimentConfig::new(n).trials(trials).seed(seed);
    let maxes = run_maxload_experiment(scheme, &cfg);
    maxes.iter().map(|&m| m as f64).sum::<f64>() / maxes.len() as f64
}

fn main() {
    let trials = 30;
    println!("mean maximum load over {trials} trials (n balls into n bins)\n");
    println!(
        "{:>6} {:>12} {:>15} {:>15} {:>15}",
        "n", "one choice", "2 random", "3 double-hash", "ln n / ln ln n"
    );
    for exp in [10u32, 12, 14, 16, 18] {
        let n = 1u64 << exp;
        let one = AnyScheme::by_name("one", n, 1).expect("known");
        let two = AnyScheme::by_name("random", n, 2).expect("known");
        let three = AnyScheme::by_name("double", n, 3).expect("known");
        let ln = (n as f64).ln();
        println!(
            "{:>6} {:>12.2} {:>15.2} {:>15.2} {:>15.2}",
            format!("2^{exp}"),
            mean_max_load(&one, n, trials, 1),
            mean_max_load(&two, n, trials, 2),
            mean_max_load(&three, n, trials, 3),
            ln / ln.ln(),
        );
    }
    println!(
        "\nOne choice tracks ln n / ln ln n; both multiple-choice columns are \
         flat at log log n scale — double hashing included (Corollary 3 / \
         Theorem 4 of the paper)."
    );
}
