//! Why the fluid limit survives double hashing: ancestry lists.
//!
//! The paper's key technical device (Lemmas 5-7): the load of a bin is
//! determined by its "ancestry list" — the balls that chose it, and
//! recursively the balls that chose *their* bins. Double hashing only
//! breaks the independence argument if the ancestry lists of a ball's d
//! choices collide; this example shows how rarely that happens.
//!
//! ```text
//! cargo run --release --example ancestry_explorer
//! ```

use balanced_allocations::analysis::ancestry::History;
use balanced_allocations::analysis::branching::ancestry_growth;
use balanced_allocations::prelude::*;

fn main() {
    let d = 3;
    println!("ancestry lists under double hashing (d = {d}, m = n balls)\n");
    println!(
        "{:>6} {:>11} {:>9} {:>8} {:>15}",
        "n", "mean size", "max size", "ln n", "disjoint rate"
    );
    let seq = SeedSequence::new(5);
    for exp in [8u32, 10, 12] {
        let n = 1u64 << exp;
        let mut rng = seq.child(exp as u64).xoshiro();
        let history = History::record(&DoubleHashing::new(n, d), n, &mut rng);
        let sizes = history.ancestry_sizes();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let max = sizes.iter().max().copied().unwrap_or(0);
        let sample: Vec<u32> = (0..n as u32).step_by((n / 200).max(1) as usize).collect();
        let rate = history.disjointness_rate(&sample);
        println!(
            "{:>6} {:>11.1} {:>9} {:>8.1} {:>15.3}",
            format!("2^{exp}"),
            mean,
            max,
            (n as f64).ln(),
            rate,
        );
    }

    // The dominating branching process of Lemma 6.
    println!("\nLemma 6's branching-process bound E[B] <= e^(T d(d-1)):");
    let n = 1u64 << 12;
    let trials = 4000u64;
    let mut rng = seq.child(100).xoshiro();
    for (dd, t) in [(2u32, 1.0f64), (3, 1.0), (3, 0.5)] {
        let total: u64 = (0..trials)
            .map(|_| ancestry_growth(n, t, dd, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        let bound = (t * (dd * (dd - 1)) as f64).exp();
        println!("  d = {dd}, T = {t}: mean B = {mean:>7.2}   (bound {bound:.1})");
    }

    println!(
        "\nSmall, log-n-scale ancestry lists that almost never intersect are \
         exactly why the d choices look asymptotically independent, and why \
         the same ODEs govern both hashing disciplines (Theorem 8)."
    );
}
