//! Cuckoo hashing at the load threshold, under both hashing disciplines.
//!
//! The paper's conclusion asks whether double hashing is "free" for cuckoo
//! hashing too (answered empirically in Mitzenmacher–Thaler 2012: yes).
//! This example fills d-ary cuckoo tables until the first insertion
//! failure and compares the achieved load against the known thresholds.
//!
//! ```text
//! cargo run --release --example cuckoo_table
//! ```

use balanced_allocations::prelude::*;

fn mean_threshold(name: &str, n: u64, d: usize, trials: u64) -> f64 {
    let seq = SeedSequence::new(77);
    let mut w = Welford::new();
    for t in 0..trials {
        let scheme = AnyScheme::by_name(name, n, d).expect("known scheme");
        let mut table = CuckooTable::new(scheme, 5_000, seq.child(t).derive_u64());
        let mut rng = seq.child(t).child(1).xoshiro();
        w.push(table.fill_until_failure(&mut rng));
    }
    w.mean()
}

fn main() {
    let n = 1u64 << 12;
    let trials = 10;
    println!("d-ary cuckoo hashing: load factor at first insertion failure");
    println!("(n = {n} buckets, 1 slot each, random-walk insertion, {trials} trials)\n");
    println!(
        "{:>3} {:>14} {:>16} {:>12}",
        "d", "fully random", "double hashing", "literature"
    );
    for (d, lit) in [(2usize, 0.5), (3, 0.918), (4, 0.977)] {
        let fr = mean_threshold("random", n, d, trials);
        let dh = mean_threshold("double", n, d, trials);
        println!("{d:>3} {fr:>14.4} {dh:>16.4} {lit:>12.3}");
    }
    println!(
        "\nBoth disciplines hit the same thresholds. Lookups under double \
         hashing cost two hash computations instead of d — free capacity \
         for hardware tables."
    );
}
