//! Cross-layer integration tests for the sharded engine + workload suite.
//!
//! These run through the public facade and check the properties the
//! subsystem exists for: persistent-worker serving changes nothing,
//! per-shard state is exactly `ba_core`'s single-threaded state in both
//! choice modes, keyed delete→re-insert replays its probe sequence for
//! every scheme, and the paper's claim — double hashing loses nothing
//! against fully random hashing — survives every production-shaped
//! traffic scenario.

use balanced_allocations::core::{run_churn_process, run_process, run_process_keys, TieBreak};
use balanced_allocations::engine::{route, Shard};
use balanced_allocations::prelude::*;

fn config(shards: usize, bins: u64, d: usize, seed: u64) -> EngineConfig {
    EngineConfig::new(shards, bins, d).seed(seed)
}

#[test]
fn pipelined_ingestion_equals_phased_for_every_scenario_scheme_mode_and_depth() {
    // The pipelined acceptance matrix: for all 5 scenarios × every scheme
    // the workspace ships × both choice modes × a (queue depth, producer
    // count) axis spanning depths {1, 4, 64} single-producer plus the
    // multi-producer fan-out at {2, 4} producers × depths {1, 4}, serving
    // through the lock-free SPSC-ring pipeline is bit-identical —
    // summary, per-shard loads, max loads, stats percentiles — to phased
    // WorkerMode::Sequential serving of the same generated stream.
    let total_ops = 4_000u64;
    let keyspace = 512u64;
    let axis: &[(usize, usize)] = &[(1, 1), (4, 1), (64, 1), (1, 2), (4, 2), (1, 4), (4, 4)];
    for scenario in Scenario::all() {
        for &scheme in AnyScheme::names() {
            // d = 4 divides the 128-bin tables evenly (the d-left
            // schemes require it); the one-choice baseline keeps d = 1.
            let d = if scheme == "one" { 1 } else { 4 };
            for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
                let phased = run_scenario(
                    scheme,
                    &scenario,
                    config(4, 128, d, 29).mode(mode).sequential(),
                    keyspace,
                    total_ops,
                    256,
                )
                .unwrap();
                for &(depth, producers) in axis {
                    let pipelined = run_scenario(
                        scheme,
                        &scenario,
                        config(4, 128, d, 29)
                            .mode(mode)
                            .ingest(IngestMode::Pipelined {
                                queue_depth: depth,
                                producers,
                            }),
                        keyspace,
                        total_ops,
                        256,
                    )
                    .unwrap();
                    let tag = format!(
                        "{}/{scheme}/{mode:?}/depth {depth} x{producers}",
                        scenario.name()
                    );
                    assert_eq!(pipelined.summary, phased.summary, "{tag}");
                    assert_eq!(
                        pipelined.stats.max_loads(),
                        phased.stats.max_loads(),
                        "{tag}"
                    );
                    let divergences = phased.stats.divergences(&pipelined.stats);
                    assert!(divergences.is_empty(), "{tag}: {divergences:?}");
                }
            }
        }
    }
}

#[test]
fn persistent_engine_equals_sequential_engine_for_every_shard_count_and_scenario() {
    // Satellite acceptance: the persistent-worker engine is bit-identical
    // to the sequential path for shards ∈ {1, 2, 8} across all workload
    // scenarios, in both choice modes.
    for shards in [1usize, 2, 8] {
        for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
            for scenario in Scenario::all() {
                let keyspace = 2_048u64;
                let par = run_scenario(
                    "double",
                    &scenario,
                    config(shards, 512, 3, 11).mode(mode),
                    keyspace,
                    30_000,
                    1_024,
                )
                .unwrap();
                let seq = run_scenario(
                    "double",
                    &scenario,
                    config(shards, 512, 3, 11).mode(mode).sequential(),
                    keyspace,
                    30_000,
                    1_024,
                )
                .unwrap();
                let tag = format!("{}/{shards} shards/{mode:?}", scenario.name());
                assert_eq!(par.summary, seq.summary, "{tag}");
                assert_eq!(par.stats.max_loads(), seq.stats.max_loads(), "{tag}");
                assert_eq!(
                    par.stats.merged_histogram().counts(),
                    seq.stats.merged_histogram().counts(),
                    "{tag}"
                );
            }
        }
    }
}

#[test]
fn scoped_spawn_baseline_still_matches_persistent_workers() {
    // The pre-pool execution strategy is kept for benchmarking; it must
    // stay on the same determinism contract.
    let ops: Vec<Op> = (0..20_000u64)
        .map(|i| match i % 4 {
            0..=1 => Op::Insert(i / 2),
            2 => Op::Lookup(i / 3),
            _ => Op::Delete(i / 2),
        })
        .collect();
    let mut scoped =
        Engine::by_name("double", config(8, 512, 3, 3).workers(WorkerMode::Scoped)).unwrap();
    let mut persistent = Engine::by_name(
        "double",
        config(8, 512, 3, 3).workers(WorkerMode::Persistent),
    )
    .unwrap();
    assert_eq!(scoped.serve(&ops, 777), persistent.serve(&ops, 777));
    for (a, b) in scoped.shards().iter().zip(persistent.shards()) {
        assert_eq!(a.allocation().loads(), b.allocation().loads());
    }
}

#[test]
fn keyed_delete_reinsert_replays_probe_sequence_for_every_scheme() {
    // Satellite acceptance: in keyed mode, deleting and re-inserting a
    // key lands it via the same derived probe sequence — for every scheme
    // the workspace ships.
    for &name in AnyScheme::names() {
        let d = if name == "one" { 1 } else { 4 };
        let n = 64u64;
        let cfg = config(1, n, d, 9).keyed();
        let scheme = AnyScheme::by_name(name, n, d).unwrap();
        let mut shard = Shard::new(0, scheme, &cfg);
        for key in 0..48u64 {
            shard.insert(key);
        }
        for key in [3u64, 17, 40] {
            let probes = shard.probes_for(key);
            for cycle in 0..25 {
                shard.delete(key).expect("key live");
                let bin = shard.insert(key);
                assert!(
                    probes.contains(&bin),
                    "{name}: cycle {cycle} re-inserted key {key} into bin {bin} \
                     outside its probe sequence {probes:?}"
                );
            }
        }
    }
}

#[test]
fn stream_and_keyed_modes_agree_with_core_on_insert_only_traffic() {
    // Satellite acceptance: insert-only traffic through the engine equals
    // ba_core's single-threaded process in the matching mode — stream
    // against run_process, keyed against run_process_keys.
    let shards = 4usize;
    let bins = 256u64;
    let seed = 23u64;
    let ops: Vec<Op> = (0..2_048u64).map(Op::Insert).collect();
    for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
        let mut engine =
            Engine::by_name("double", config(shards, bins, 3, seed).mode(mode)).unwrap();
        engine.serve(&ops, 256);
        for id in 0..shards {
            let keys: Vec<u64> = ops
                .iter()
                .map(|op| op.key())
                .filter(|&k| route(k, shards) == id)
                .collect();
            let scheme = DoubleHashing::new(bins, 3);
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let shard = engine.shard(id);
            let reference = match mode {
                ChoiceMode::Stream => {
                    run_process(&scheme, keys.len() as u64, TieBreak::Random, &mut rng)
                }
                ChoiceMode::Keyed => run_process_keys(
                    &scheme,
                    ChoiceSource::Keyed { salt: shard.salt() },
                    keys.iter().copied(),
                    TieBreak::Random,
                    &mut rng,
                ),
            };
            assert_eq!(
                shard.allocation().loads(),
                reference.loads(),
                "{mode:?} shard {id}"
            );
        }
    }
}

#[test]
fn engine_shards_reproduce_core_runs_for_every_scheme() {
    // Insert-only traffic: shard i of the engine must equal a
    // single-threaded ba_core run over shard i's routed key stream, for
    // the same (seed, scheme) pair — the engine adds sharding, not noise.
    let shards = 4usize;
    let bins = 256u64;
    let seed = 23u64;
    let ops: Vec<Op> = (0..2_048u64).map(Op::Insert).collect();
    for name in ["random", "double", "blocks"] {
        let mut engine = Engine::by_name(name, config(shards, bins, 3, seed)).unwrap();
        engine.serve(&ops, 256);
        for id in 0..shards {
            let balls = ops
                .iter()
                .filter(|op| route(op.key(), shards) == id)
                .count() as u64;
            let scheme = AnyScheme::by_name(name, bins, 3).unwrap();
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let reference = run_process(&scheme, balls, TieBreak::Random, &mut rng);
            assert_eq!(
                engine.shards()[id].allocation().loads(),
                reference.loads(),
                "{name} shard {id}"
            );
        }
    }
}

#[test]
fn double_hashing_loses_nothing_under_served_churn() {
    // The paper's deletion claim, at the engine layer: after heavy churn
    // the load profiles of double hashing and fully random are
    // indistinguishable, and both match the single-table ChurnProcess
    // dynamics from ba_core (flatter-than-fresh profile, bounded max).
    let bins = 1u64 << 12;
    let run = |scheme: &str| {
        run_scenario(
            scheme,
            &Scenario::Churn {
                delete_fraction: 0.5,
            },
            config(4, bins, 3, 31),
            bins, // population target ≈ one ball per 4 bins... scaled below
            400_000,
            4_096,
        )
        .unwrap()
    };
    let dh = run("double");
    let fr = run("random");
    assert_eq!(dh.summary.missed_deletes, 0);
    let (hd, hf) = (dh.stats.merged_histogram(), fr.stats.merged_histogram());
    for load in 0..3usize {
        let (a, b) = (hd.fraction(load), hf.fraction(load));
        assert!(
            (a - b).abs() < 0.03,
            "load {load}: double {a} vs random {b}"
        );
    }
    assert!(dh.stats.max_load() <= 6, "max load {}", dh.stats.max_load());

    // Same dynamics as the single-table churn process from ba_core.
    let mut rng = Xoshiro256StarStar::seed_from_u64(31);
    let reference = run_churn_process(
        &DoubleHashing::new(bins, 3),
        bins / 4,
        2 * bins,
        TieBreak::Random,
        &mut rng,
    );
    assert!(
        reference.max_load() <= dh.stats.max_load() + 2
            && dh.stats.max_load() <= reference.max_load() + 2,
        "engine churn (max {}) drifted from ChurnProcess (max {})",
        dh.stats.max_load(),
        reference.max_load()
    );
}

#[test]
fn adversarial_reinsertion_does_not_break_double_hashing() {
    // Correlated delete/re-insert traffic on a small working set, in both
    // choice modes: stream mode stresses churn pressure (recently vacated
    // bins refilling), keyed mode is the paper's fixed-probe re-insertion
    // setting (every re-insert replays its f + k·g sequence). Max load
    // must stay at two-choice scale either way.
    for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
        let report = run_scenario(
            "double",
            &Scenario::Adversarial,
            config(4, 1 << 10, 3, 41).mode(mode),
            1 << 10,
            200_000,
            2_048,
        )
        .unwrap();
        assert!(
            report.stats.max_load() <= 6,
            "{mode:?} adversarial traffic blew up max load: {}",
            report.stats.max_load()
        );
    }
}

#[test]
fn engine_runs_the_prng_ablation() {
    // RngKind flows through EngineConfig: the engine serves the paper's
    // generator ablation like the trial harness does, each family staying
    // deterministic and at two-choice max loads.
    let ops: Vec<Op> = (0..8_192u64).map(Op::Insert).collect();
    let mut tables = Vec::new();
    for &name in RngKind::names() {
        let kind = RngKind::by_name(name).unwrap();
        let run = |seed: u64| {
            let mut engine =
                Engine::by_name("double", config(4, 1 << 10, 3, seed).rng(kind)).unwrap();
            engine.serve(&ops, 1_024);
            engine.stats().merged_histogram().counts().to_vec()
        };
        let a = run(19);
        assert_eq!(a, run(19), "{name} must be reproducible");
        assert_ne!(a, run(20), "{name} must respond to the seed");
        tables.push(a);
    }
    assert!(
        tables.windows(2).any(|w| w[0] != w[1]),
        "all PRNG families produced identical tables"
    );
}

#[test]
fn engine_stats_expose_op_percentiles() {
    let report = run_scenario(
        "double",
        &Scenario::Churn {
            delete_fraction: 0.5,
        },
        config(4, 512, 3, 13),
        1_024,
        30_000,
        1_024,
    )
    .unwrap();
    let observed = report.stats.merged_observations();
    assert_eq!(observed.insert_load.count(), report.summary.inserts);
    assert_eq!(observed.delete_load.count(), report.summary.deletes);
    // Inserts land at depth >= 1; the winning probe index is within d.
    assert!(observed.insert_load.percentile(50.0) >= 1);
    assert!(observed.insert_probe.max() < 3);
    let rendered = report.stats.render();
    assert!(rendered.contains("insert landing load"), "{rendered}");
}

#[test]
fn facade_prelude_serves_engine_types() {
    let mut engine = Engine::by_name("double", EngineConfig::new(2, 128, 2)).unwrap();
    let summary = engine.serve(&[Op::Insert(1), Op::Lookup(1), Op::Delete(1)], 8);
    assert_eq!(summary.inserts, 1);
    assert_eq!(summary.hits, 1);
    assert_eq!(summary.deletes, 1);
    let stats: EngineStats = engine.stats();
    assert_eq!(stats.total_balls(), 0);
}

/// A scheme whose every placement naps, so pipelined shard workers
/// drain their queues slowly — the lever the stall-accounting tests
/// use to force real backpressure without racing the scheduler.
#[derive(Debug, Clone)]
struct Sluggish {
    n: u64,
    nap: std::time::Duration,
}

impl ChoiceScheme for Sluggish {
    fn n(&self) -> u64 {
        self.n
    }
    fn d(&self) -> usize {
        1
    }
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        std::thread::sleep(self.nap);
        out[0] = rng.gen_range(self.n);
    }
}

/// Serves `ops` inserts through a single slow shard with the given
/// queue depth and returns the per-batch metric records.
fn slow_pipelined_records(total_ops: u64, batch: usize, depth: usize) -> Vec<MetricRecord> {
    let cfg = config(1, 64, 1, 7);
    let mut engine = Engine::with_scheme_factory(cfg, |_| Sluggish {
        n: 64,
        nap: std::time::Duration::from_micros(200),
    });
    let sink = SharedSink::new();
    engine.set_sink(Box::new(sink.clone()));
    engine.serve_pipelined((0..total_ops).map(Op::Insert), batch, depth);
    engine.take_sink();
    sink.records()
}

#[test]
fn tiny_queue_depth_records_backpressure_stalls() {
    // Eight batches into a depth-1 queue whose worker needs ~6ms per
    // batch: the producer must block on at least one send, and the
    // sink's stall accounting has to say so.
    let records = slow_pipelined_records(256, 32, 1);
    assert_eq!(records.len(), 8, "one record per shipped batch");
    assert!(records.iter().all(|r| r.shard == Some(0)));
    let stalls: u32 = records.iter().map(|r| r.stalls).sum();
    assert!(
        stalls > 0,
        "depth-1 queue behind a slow worker never stalled"
    );
    let stalled: std::time::Duration = records.iter().map(|r| r.stalled).sum();
    assert!(stalled > std::time::Duration::ZERO);
    // Occupancy is bounded by the queue depth at every observation.
    assert!(records.iter().all(|r| r.queue_occupancy <= 1));
}

#[test]
fn ample_queue_depth_records_zero_stalls() {
    // With queue depth comfortably above the total batch count the
    // producer can never block, however slow the worker: stall counts
    // must be exactly zero, not merely small.
    let records = slow_pipelined_records(256, 32, 64);
    assert_eq!(records.len(), 8);
    assert!(records.iter().all(|r| r.stalls == 0), "{records:?}");
    assert!(records
        .iter()
        .all(|r| r.stalled == std::time::Duration::ZERO));
}

#[test]
#[should_panic(expected = "EngineConfig::pipelined(3)")]
fn workload_path_rejects_non_power_of_two_queue_depth_at_construction() {
    // Fail-fast satellite: a queue depth that is not a power of two dies
    // when the engine is built — before any ops are generated — and the
    // panic names the offending builder call.
    let _ = run_scenario(
        "double",
        &Scenario::Adversarial,
        config(4, 128, 3, 7).pipelined(3),
        512,
        1_000,
        256,
    );
}

#[test]
#[should_panic(expected = "EngineConfig::pipelined_producers(.., 0)")]
fn workload_path_rejects_zero_producers_at_construction() {
    let _ = run_scenario(
        "double",
        &Scenario::Adversarial,
        config(4, 128, 3, 7).pipelined_producers(4, 0),
        512,
        1_000,
        256,
    );
}

#[test]
fn degenerate_pipelined_batch_size_warns_and_matches_phased() {
    // Satellite acceptance: batch_size below the shard count under
    // IngestMode::Pipelined clamps every per-shard batch to one op. The
    // engine must say so through its warning channel while staying
    // bit-identical to phased serving of the same stream.
    let ops: Vec<Op> = (0..4_000u64)
        .map(|i| match i % 5 {
            0..=2 => Op::Insert(i % 300),
            3 => Op::Lookup(i % 300),
            _ => Op::Delete(i % 300),
        })
        .collect();
    let mut phased = Engine::by_name("double", config(8, 256, 3, 7).keyed()).unwrap();
    let expected = phased.serve(&ops, 5);
    let mut pipelined =
        Engine::by_name("double", config(8, 256, 3, 7).keyed().pipelined(4)).unwrap();
    let summary = pipelined.serve_replay(ops.iter().copied(), 5);
    assert_eq!(summary, expected);
    assert!(phased.stats().matches(&pipelined.stats()));
    let warnings = pipelined.take_warnings();
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(
        warnings[0].contains("batch_size 5 < 8 shards"),
        "{warnings:?}"
    );
    assert!(pipelined.take_warnings().is_empty(), "warnings must drain");
}

#[test]
fn phased_ingestion_records_no_queue_pressure() {
    // Phased serving has no queues at all: every record is engine-wide
    // (shard None) with zeroed stall and occupancy fields.
    let mut engine = Engine::by_name("double", config(4, 128, 3, 7)).unwrap();
    let sink = SharedSink::new();
    engine.set_sink(Box::new(sink.clone()));
    let ops: Vec<Op> = (0..2_000u64).map(Op::Insert).collect();
    engine.serve(&ops, 256);
    engine.take_sink();
    let records = sink.records();
    assert_eq!(records.len(), 8);
    for r in &records {
        assert_eq!(r.shard, None);
        assert_eq!(r.stalls, 0);
        assert_eq!(r.stalled, std::time::Duration::ZERO);
        assert_eq!(r.queue_occupancy, 0);
    }
}
