//! Cross-layer integration tests for the sharded engine + workload suite.
//!
//! These run through the public facade and check the properties the
//! subsystem exists for: parallel serving changes nothing, per-shard state
//! is exactly `ba_core`'s single-threaded state, and the paper's claim —
//! double hashing loses nothing against fully random hashing — survives
//! every production-shaped traffic scenario.

use balanced_allocations::core::{run_churn_process, run_process, TieBreak};
use balanced_allocations::engine::route;
use balanced_allocations::prelude::*;

fn config(shards: usize, bins: u64, d: usize, seed: u64) -> EngineConfig {
    EngineConfig::new(shards, bins, d).seed(seed)
}

#[test]
fn parallel_engine_equals_sequential_engine_under_every_scenario() {
    for scenario in Scenario::all() {
        let keyspace = 2_048u64;
        let par = run_scenario(
            "double",
            &scenario,
            config(8, 512, 3, 11),
            keyspace,
            30_000,
            1_024,
        )
        .unwrap();
        let seq = run_scenario(
            "double",
            &scenario,
            config(8, 512, 3, 11).sequential(),
            keyspace,
            30_000,
            1_024,
        )
        .unwrap();
        assert_eq!(par.summary, seq.summary, "{}", scenario.name());
        assert_eq!(
            par.stats.max_loads(),
            seq.stats.max_loads(),
            "{}",
            scenario.name()
        );
        assert_eq!(
            par.stats.merged_histogram().counts(),
            seq.stats.merged_histogram().counts(),
            "{}",
            scenario.name()
        );
    }
}

#[test]
fn engine_shards_reproduce_core_runs_for_every_scheme() {
    // Insert-only traffic: shard i of the engine must equal a
    // single-threaded ba_core run over shard i's routed key stream, for
    // the same (seed, scheme) pair — the engine adds sharding, not noise.
    let shards = 4usize;
    let bins = 256u64;
    let seed = 23u64;
    let ops: Vec<Op> = (0..2_048u64).map(Op::Insert).collect();
    for name in ["random", "double", "blocks"] {
        let mut engine = Engine::by_name(name, config(shards, bins, 3, seed)).unwrap();
        engine.serve(&ops, 256);
        for id in 0..shards {
            let balls = ops
                .iter()
                .filter(|op| route(op.key(), shards) == id)
                .count() as u64;
            let scheme = AnyScheme::by_name(name, bins, 3).unwrap();
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let reference = run_process(&scheme, balls, TieBreak::Random, &mut rng);
            assert_eq!(
                engine.shards()[id].allocation().loads(),
                reference.loads(),
                "{name} shard {id}"
            );
        }
    }
}

#[test]
fn double_hashing_loses_nothing_under_served_churn() {
    // The paper's deletion claim, at the engine layer: after heavy churn
    // the load profiles of double hashing and fully random are
    // indistinguishable, and both match the single-table ChurnProcess
    // dynamics from ba_core (flatter-than-fresh profile, bounded max).
    let bins = 1u64 << 12;
    let run = |scheme: &str| {
        run_scenario(
            scheme,
            &Scenario::Churn {
                delete_fraction: 0.5,
            },
            config(4, bins, 3, 31),
            bins, // population target ≈ one ball per 4 bins... scaled below
            400_000,
            4_096,
        )
        .unwrap()
    };
    let dh = run("double");
    let fr = run("random");
    assert_eq!(dh.summary.missed_deletes, 0);
    let (hd, hf) = (dh.stats.merged_histogram(), fr.stats.merged_histogram());
    for load in 0..3usize {
        let (a, b) = (hd.fraction(load), hf.fraction(load));
        assert!(
            (a - b).abs() < 0.03,
            "load {load}: double {a} vs random {b}"
        );
    }
    assert!(dh.stats.max_load() <= 6, "max load {}", dh.stats.max_load());

    // Same dynamics as the single-table churn process from ba_core.
    let mut rng = Xoshiro256StarStar::seed_from_u64(31);
    let reference = run_churn_process(
        &DoubleHashing::new(bins, 3),
        bins / 4,
        2 * bins,
        TieBreak::Random,
        &mut rng,
    );
    assert!(
        reference.max_load() <= dh.stats.max_load() + 2
            && dh.stats.max_load() <= reference.max_load() + 2,
        "engine churn (max {}) drifted from ChurnProcess (max {})",
        dh.stats.max_load(),
        reference.max_load()
    );
}

#[test]
fn adversarial_reinsertion_does_not_break_double_hashing() {
    // Correlated delete/re-insert traffic on a small working set (the
    // engine's process model draws fresh choices per insert, so this is
    // churn pressure, not fixed-probe replay — see AdversarialWorkload
    // docs); max load must stay at two-choice scale.
    let report = run_scenario(
        "double",
        &Scenario::Adversarial,
        config(4, 1 << 10, 3, 41),
        1 << 10,
        200_000,
        2_048,
    )
    .unwrap();
    assert!(
        report.stats.max_load() <= 6,
        "adversarial traffic blew up max load: {}",
        report.stats.max_load()
    );
}

#[test]
fn facade_prelude_serves_engine_types() {
    let mut engine = Engine::by_name("double", EngineConfig::new(2, 128, 2)).unwrap();
    let summary = engine.serve(&[Op::Insert(1), Op::Lookup(1), Op::Delete(1)], 8);
    assert_eq!(summary.inserts, 1);
    assert_eq!(summary.hits, 1);
    assert_eq!(summary.deletes, 1);
    let stats: EngineStats = engine.stats();
    assert_eq!(stats.total_balls(), 0);
}
