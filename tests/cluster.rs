//! The cluster tier's cross-layer acceptance tests, against the
//! checked-in golden `.baops` corpus (see `tests/replay.rs` for the
//! corpus anchors).
//!
//! Three contracts, mirroring how PR 3 verified replay:
//!
//! 1. **Node-count invariance** — every golden capture served through a
//!    1-node, 2-node, and 4-node cluster yields bit-identical per-key
//!    placement and merged [`EngineStats`], in both choice modes and
//!    with pipelined partition engines.
//! 2. **Rebalance fidelity** — the same capture served before a live
//!    `add_node`/`remove_node` is bit-identically placed after a
//!    [`RebalanceMode::Transfer`], and a [`RebalanceMode::Drain`]
//!    conserves every ball, keeps keyed balls inside their probe sets,
//!    and logs any bin movement as an explainable divergence.
//! 3. **Routing purity** — `node_for` agrees with the ring's partition
//!    ownership for every key of the capture, so placement can be
//!    replayed without a cluster in hand.

use balanced_allocations::engine::cluster::partition_of;
use balanced_allocations::prelude::*;
use balanced_allocations::workload::replay::{GOLDEN_OPS, GOLDEN_SEED};
use std::path::PathBuf;

fn golden_path(scenario: &Scenario) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.baops", scenario.name()))
}

fn golden_ops(scenario: &Scenario) -> Vec<Op> {
    ReplayFile::open(golden_path(scenario))
        .expect("golden file decodes")
        .ops()
        .to_vec()
}

fn scenario(name: &str) -> Scenario {
    Scenario::by_name(name).expect("known scenario")
}

/// The test cluster shape: 8 partitions of 2 shards x 128 bins, enough
/// spread for 64-vnode ownership to move real partitions on rebalance.
fn config(mode: ChoiceMode) -> ClusterConfig {
    ClusterConfig::new(
        EngineConfig::new(2, 128, 3)
            .seed(GOLDEN_SEED)
            .mode(mode)
            .sequential(),
    )
    .partitions(8)
}

fn cluster(mode: ChoiceMode, nodes: &[u64]) -> Cluster<AnyScheme> {
    Cluster::by_name("double", config(mode), nodes).expect("known scheme")
}

#[test]
fn golden_corpus_is_node_count_invariant() {
    // Acceptance criterion: the corpus through 1-node and {2, 4}-node
    // clusters yields bit-identical per-key placement and merged stats.
    for scenario in Scenario::all() {
        let ops = golden_ops(&scenario);
        for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
            let mut reference = cluster(mode, &[0]);
            let expected = reference.serve(&ops, 512);
            assert_eq!(expected.total_ops(), GOLDEN_OPS);
            for node_count in [2u64, 4] {
                let tag = format!("{}/{mode:?}/{node_count} nodes", scenario.name());
                let nodes: Vec<u64> = (0..node_count).collect();
                let mut spread = cluster(mode, &nodes);
                let summary = spread.serve(&ops, 512);
                assert_eq!(summary, expected, "{tag}");
                let divergences = reference.stats().divergences(&spread.stats());
                assert!(divergences.is_empty(), "{tag}: {divergences:?}");
                let placement_diff = reference.placement_divergences(&spread);
                assert!(placement_diff.is_empty(), "{tag}: {placement_diff:?}");
            }
        }
    }
}

#[test]
fn pipelined_partition_engines_match_phased_on_golden_corpus() {
    // The cluster reuses each partition engine's IngestMode: a cluster
    // of pipelined engines must serve the corpus bit-identically to a
    // cluster of phased ones.
    let ops = golden_ops(&scenario("zipf"));
    for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
        let mut phased = cluster(mode, &[0, 1]);
        let expected = phased.serve(&ops, 512);
        let pipelined_config = ClusterConfig::new(
            EngineConfig::new(2, 128, 3)
                .seed(GOLDEN_SEED)
                .mode(mode)
                .pipelined_producers(4, 2),
        )
        .partitions(8);
        let mut pipelined =
            Cluster::by_name("double", pipelined_config, &[0, 1]).expect("known scheme");
        let summary = pipelined.serve(&ops, 512);
        assert_eq!(summary, expected, "{mode:?}");
        assert!(phased.stats().matches(&pipelined.stats()), "{mode:?}");
        assert!(
            phased.placement_divergences(&pipelined).is_empty(),
            "{mode:?}"
        );
    }
}

#[test]
fn node_for_is_pure_ring_ownership() {
    let c = cluster(ChoiceMode::Keyed, &[7, 11, 13]);
    for key in 0..4096u64 {
        let partition = partition_of(key, c.partitions());
        assert_eq!(c.partition_for(key), partition);
        assert_eq!(c.node_for(key), c.partition_owner(partition));
        assert!(c.nodes().contains(&c.node_for(key)));
    }
}

#[test]
fn transfer_rebalance_keeps_golden_placement_bit_identical() {
    // Before/after sides of a live rebalance: Transfer moves ownership
    // wholesale, so placement and stats must not move by a bit.
    for scenario in [scenario("uniform"), scenario("churn")] {
        let ops = golden_ops(&scenario);
        let mut c = cluster(ChoiceMode::Keyed, &[0, 1]);
        c.serve(&ops, 512);
        let placements = c.placements();
        let stats = c.stats();
        let owners_before: Vec<u64> = (0..c.partitions()).map(|p| c.partition_owner(p)).collect();

        let report = c.add_node(2, RebalanceMode::Transfer);
        assert!(
            !report.moved.is_empty(),
            "{}: nothing moved",
            scenario.name()
        );
        assert!(report.divergences.is_empty());
        assert_eq!(c.placements(), placements, "{}", scenario.name());
        assert!(c.stats().matches(&stats), "{}", scenario.name());
        // Only partitions claimed by the new node changed owner.
        for (p, &was) in owners_before.iter().enumerate() {
            let now = c.partition_owner(p);
            assert!(now == was || now == 2, "partition {p}: {was} -> {now}");
        }

        // Removing the node hands its partitions back: ownership and
        // placement both return to the before side exactly.
        let report = c.remove_node(2, RebalanceMode::Transfer);
        assert!(report.moved.iter().all(|m| m.from == 2));
        assert_eq!(c.placements(), placements);
        let owners_after: Vec<u64> = (0..c.partitions()).map(|p| c.partition_owner(p)).collect();
        assert_eq!(owners_before, owners_after);
    }
}

#[test]
fn rebalanced_cluster_keeps_serving_like_a_fresh_topology() {
    // Serve half the capture on 2 nodes, transfer-rebalance to 3, serve
    // the rest: placement and stats must equal a fresh 3-node cluster
    // serving the full capture (batch boundaries differ across the two
    // serve calls; placement and stats are boundary-invariant).
    let ops = golden_ops(&scenario("bursty"));
    let (first, second) = ops.split_at(ops.len() / 2);

    let mut live = cluster(ChoiceMode::Keyed, &[0, 1]);
    let mut summary = live.serve(first, 512);
    live.add_node(2, RebalanceMode::Transfer);
    summary.absorb(&live.serve(second, 512));

    let mut fresh = cluster(ChoiceMode::Keyed, &[0, 1, 2]);
    let expected = fresh.serve(&ops, 512);

    assert_eq!(summary, expected);
    assert!(fresh.stats().matches(&live.stats()));
    assert!(fresh.placement_divergences(&live).is_empty());
}

#[test]
fn drain_rebalance_conserves_and_explains_on_golden_corpus() {
    // Drain is the key-level migration path: keyed delete → re-insert
    // replaying each key's f + k·g probe sequence on the destination.
    // Balls are conserved, every ball stays inside its probe set, and
    // any bin movement is logged with probe indices.
    for scenario in [scenario("zipf"), scenario("adversarial")] {
        let ops = golden_ops(&scenario);
        let mut c = cluster(ChoiceMode::Keyed, &[0, 1]);
        c.serve(&ops, 512);
        let balls = c.total_balls();
        let keys: u64 = c
            .placements()
            .values()
            .map(|p| p.bins.len() as u64)
            .sum::<u64>();
        assert_eq!(keys, balls, "placement map out of sync with ball count");

        let report = c.add_node(2, RebalanceMode::Drain);
        assert!(
            report.keys_moved > 0,
            "{}: nothing drained",
            scenario.name()
        );
        assert_eq!(
            c.total_balls(),
            balls,
            "{}: drain lost balls",
            scenario.name()
        );
        for m in &report.moved {
            assert_eq!(m.to, 2);
            let engine = c.engine(m.partition);
            for shard in engine.shards() {
                for key in shard.live_key_ids() {
                    let probes = shard.probes_for(key);
                    for bin in shard.bins_of(key).unwrap() {
                        assert!(
                            probes.contains(bin),
                            "{}: key {key} escaped probe set {probes:?}",
                            scenario.name()
                        );
                    }
                }
            }
        }
        for line in &report.divergences {
            assert!(
                line.contains("probe indices"),
                "{}: unexplained divergence {line}",
                scenario.name()
            );
        }
        // The drain is deterministic: a twin cluster drains to identical
        // placement, so the divergence log is reproducible evidence.
        let mut twin = cluster(ChoiceMode::Keyed, &[0, 1]);
        twin.serve(&ops, 512);
        let twin_report = twin.add_node(2, RebalanceMode::Drain);
        assert!(
            c.placement_divergences(&twin).is_empty(),
            "{}",
            scenario.name()
        );
        assert_eq!(report.divergences, twin_report.divergences);
    }
}

#[test]
fn cluster_stats_match_plain_engine_totals() {
    // The cluster splits the corpus across partition engines; its merged
    // traffic counters must equal a single engine serving the capture
    // (placement differs — partitioning changes shard routing — but op
    // accounting is conserved).
    let ops = golden_ops(&scenario("churn"));
    let mut c = cluster(ChoiceMode::Keyed, &[0, 1]);
    let cluster_summary = c.serve(&ops, 512);
    let mut engine = Engine::by_name(
        "double",
        EngineConfig::new(2, 128, 3).seed(GOLDEN_SEED).keyed(),
    )
    .unwrap();
    let engine_summary = engine.serve(&ops, 512);
    assert_eq!(cluster_summary.inserts, engine_summary.inserts);
    assert_eq!(cluster_summary.lookups, engine_summary.lookups);
    assert_eq!(
        cluster_summary.deletes + cluster_summary.missed_deletes,
        engine_summary.deletes + engine_summary.missed_deletes
    );
    assert_eq!(c.stats().total_balls(), c.total_balls());
}

#[test]
#[should_panic(expected = "EngineConfig::pipelined(3)")]
fn cluster_construction_rejects_bad_pipeline_config() {
    // The fail-fast satellite, surfaced at the cluster tier: a bad
    // engine template dies naming the builder call, before any ops flow.
    let bad = ClusterConfig::new(EngineConfig::new(2, 128, 3).pipelined(3));
    let _ = Cluster::by_name("double", bad, &[0]);
}
