//! Property tests for multi-producer pipelined serving.
//!
//! The SPSC-ring pipeline's ordering contract says the (producer, seq)
//! merge makes producer fan-out invisible: for *any* op stream, any
//! producer count, and any ring depth, serving is bit-identical to
//! sequential phased application of the same stream. The example-based
//! matrices in `tests/engine.rs` pin that for scenario-shaped traffic;
//! these properties sample arbitrary streams — duplicate keys, deletes
//! of absent keys, empty and sub-batch streams included — across
//! producers ∈ {1, 2, 3, 8} × queue depths {1, 4} × uneven batch sizes.

use balanced_allocations::prelude::*;
use proptest::prelude::*;

/// Strategy: one op over a deliberately small keyspace, so inserts,
/// repeat inserts, deletes of live keys, and deletes/lookups of absent
/// keys all occur with non-trivial probability.
fn op(keyspace: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..keyspace).prop_map(Op::Insert),
        (0..keyspace).prop_map(Op::Delete),
        (0..keyspace).prop_map(Op::Lookup),
    ]
}

proptest! {
    #[test]
    fn multi_producer_pipelined_serving_is_bit_identical_to_sequential(
        ops in proptest::collection::vec(op(512), 0..1500),
        producers in prop_oneof![Just(1usize), Just(2), Just(3), Just(8)],
        queue_depth in prop_oneof![Just(1usize), Just(4)],
        batch in prop_oneof![Just(1usize), Just(13), Just(256)],
        seed in any::<u64>(),
    ) {
        let config = || EngineConfig::new(4, 128, 3).seed(seed);

        let mut sequential = Engine::by_name("double", config().sequential()).unwrap();
        let expected_summary = sequential.serve(&ops, batch);
        let expected_stats = sequential.stats();

        let mut pipelined = Engine::by_name("double", config()).unwrap();
        let summary = pipelined.serve_pipelined_producers(
            ops.iter().copied(),
            batch,
            queue_depth,
            producers,
        );
        let tag = format!(
            "{} ops, {producers} producers, depth {queue_depth}, batch {batch}, seed {seed}",
            ops.len()
        );

        prop_assert_eq!(summary, expected_summary, "summary diverged: {}", &tag);
        let divergences = expected_stats.divergences(&pipelined.stats());
        prop_assert!(divergences.is_empty(), "{}: {:?}", &tag, divergences);
        for (a, b) in sequential.shards().iter().zip(pipelined.shards()) {
            prop_assert_eq!(
                a.allocation().loads(),
                b.allocation().loads(),
                "shard {} bin loads diverged: {}",
                a.id(),
                &tag
            );
        }
    }

    #[test]
    fn producer_count_never_changes_results_at_fixed_stream(
        keyspace in prop_oneof![Just(32u64), Just(4096)],
        total in 0u64..3000,
        seed in any::<u64>(),
    ) {
        // A second angle on the same contract: hold the stream fixed
        // (insert-heavy, deterministic from the seed) and sweep the
        // producer axis; every width must agree with width 1 exactly.
        let ops: Vec<Op> = (0..total)
            .map(|i| {
                let key = seed.wrapping_mul(i + 1) % keyspace;
                match i % 5 {
                    4 => Op::Delete(key),
                    3 => Op::Lookup(key),
                    _ => Op::Insert(key),
                }
            })
            .collect();
        let config = || EngineConfig::new(8, 64, 2).seed(seed ^ 0x5EED);

        let mut reference = Engine::by_name("double", config()).unwrap();
        let expected = reference.serve_pipelined_producers(ops.iter().copied(), 64, 4, 1);
        for producers in [2usize, 3, 8] {
            let mut engine = Engine::by_name("double", config()).unwrap();
            let summary =
                engine.serve_pipelined_producers(ops.iter().copied(), 64, 4, producers);
            prop_assert_eq!(summary, expected, "{} producers, {} ops", producers, total);
            prop_assert!(
                engine.stats().matches(&reference.stats()),
                "{} producers: {:?}",
                producers,
                reference.stats().divergences(&engine.stats())
            );
        }
    }
}
