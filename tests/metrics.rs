//! Cross-layer acceptance tests for the telemetry subsystem.
//!
//! Three anchors, mirroring the replay suite's structure:
//!
//! 1. **Sketch oracle over the golden corpus** — for every golden
//!    scenario, every per-op-kind [`OnlinePercentiles`] tracker converted
//!    via `to_sketch()` reports p50/p99/max within one bin of the exact
//!    tracker (unit bins over integer loads: exactly equal), so the
//!    bounded-memory sketch path can replace the exact path without
//!    changing any reported number.
//! 2. **Merge reassembly** — splitting an engine's stats snapshot into
//!    per-shard-group pieces and re-merging with [`EngineStats::merge`]
//!    reproduces the single-engine snapshot, divergence-free — the
//!    cross-engine/cross-node aggregation contract, over real traffic.
//! 3. **Exporter fidelity** — serving with a [`JsonLinesExporter`]
//!    attached emits parseable JSON lines with the expected keys *and*
//!    leaves allocation results bit-identical to the sink-free run.

use balanced_allocations::prelude::*;
use balanced_allocations::workload::replay::{GOLDEN_KEYSPACE, GOLDEN_OPS, GOLDEN_SEED};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn golden_config() -> EngineConfig {
    EngineConfig::new(4, 1 << 10, 3).seed(GOLDEN_SEED)
}

#[test]
fn sketch_percentiles_match_exact_trackers_over_golden_corpus() {
    // The tentpole acceptance criterion: sketch vs exact, over every
    // golden scenario's merged observations. Integer loads into unit
    // bins make the sketch exact, not merely one-bin-close — assert the
    // stronger property and keep the one-bin bound as the documented
    // fallback.
    for scenario in Scenario::all() {
        let report = run_scenario(
            "double",
            &scenario,
            golden_config(),
            GOLDEN_KEYSPACE,
            GOLDEN_OPS,
            512,
        )
        .expect("known scheme");
        let observed = report.stats.merged_observations();
        let trackers = [
            ("insert_load", &observed.insert_load),
            ("insert_probe", &observed.insert_probe),
            ("delete_load", &observed.delete_load),
            ("lookup_depth", &observed.lookup_depth),
        ];
        for (name, exact) in trackers {
            if exact.count() == 0 {
                continue; // insert-only scenarios have no delete/lookup data
            }
            let sketch = exact.to_sketch().expect("non-empty tracker exports");
            assert_eq!(sketch.count(), exact.count(), "{}/{name}", scenario.name());
            for p in [50.0, 99.0] {
                let (s, e) = (sketch.percentile(p), f64::from(exact.percentile(p)));
                assert!(
                    (s - e).abs() <= 1.0,
                    "{}/{name} p{p}: sketch {s} vs exact {e} off by more than one bin",
                    scenario.name()
                );
                assert_eq!(
                    s,
                    e,
                    "{}/{name} p{p}: unit bins should be exact",
                    scenario.name()
                );
            }
            assert_eq!(
                sketch.max(),
                f64::from(exact.max()),
                "{}/{name} max",
                scenario.name()
            );
        }
    }
}

#[test]
fn merged_split_stats_match_single_engine_over_golden_corpus() {
    for scenario in Scenario::all() {
        let report = run_scenario(
            "double",
            &scenario,
            golden_config(),
            GOLDEN_KEYSPACE,
            GOLDEN_OPS,
            512,
        )
        .expect("known scheme");
        let whole = report.stats;
        let shards = whole.shards();
        // Split the snapshot as if shards 0-1 and 2-3 lived on separate
        // nodes, then aggregate the halves.
        let mut left = EngineStats::new(shards[..2].to_vec());
        let right = EngineStats::new(shards[2..].to_vec());
        left.merge(&right);
        assert!(
            left.matches(&whole),
            "{}: {:?}",
            scenario.name(),
            left.divergences(&whole)
        );
        assert_eq!(left.total_balls(), whole.total_balls());
        assert_eq!(left.max_load(), whole.max_load());
        // Merge must also reassemble out-of-order splits deterministically.
        let mut reversed = EngineStats::new(shards[2..].to_vec());
        reversed.merge(&EngineStats::new(shards[..2].to_vec()));
        assert!(reversed.matches(&whole), "{}", scenario.name());
    }
}

/// A `Write` target the test can read back after the exporter (boxed
/// into the engine) is gone.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Minimal structural JSON check for one exporter line: balanced braces
/// outside strings, expected keys present, no trailing comma.
fn assert_parses_as_metrics_line(line: &str) {
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    let mut depth = 0i32;
    let mut in_string = false;
    let mut prev = ' ';
    for c in line.chars() {
        match c {
            '"' if prev != '\\' => in_string = !in_string,
            '{' if !in_string => depth += 1,
            '}' if !in_string => {
                depth -= 1;
                assert!(prev != ',', "trailing comma: {line}");
            }
            _ => {}
        }
        prev = c;
    }
    assert_eq!(depth, 0, "unbalanced braces: {line}");
    assert!(!in_string, "unterminated string: {line}");
    for key in [
        "\"window\": ",
        "\"start_us\": ",
        "\"end_us\": ",
        "\"batches\": ",
        "\"ops\": ",
        "\"inserts\": ",
        "\"deletes\": ",
        "\"lookups\": ",
        "\"stalls\": ",
        "\"stall_us\": ",
        "\"route_us\": ",
        "\"apply_us\": {",
        "\"batch_ops\": {",
        "\"occupancy\": {",
    ] {
        assert!(line.contains(key), "missing {key}: {line}");
    }
    for nested in [
        "\"count\": ",
        "\"mean\": ",
        "\"p50\": ",
        "\"p99\": ",
        "\"max\": ",
    ] {
        assert!(
            line.contains(nested),
            "missing sketch field {nested}: {line}"
        );
    }
}

#[test]
fn exporter_emits_parseable_lines_and_results_stay_bit_identical() {
    // Both ingestion paths: phased (records as batches apply) and
    // pipelined (records at stream drain, stall accounting live).
    for pipelined in [false, true] {
        let config = || {
            let c = golden_config();
            if pipelined {
                c.pipelined(2)
            } else {
                c
            }
        };
        let plain = run_scenario(
            "double",
            &Scenario::Zipf { theta: 0.9 },
            config(),
            GOLDEN_KEYSPACE,
            GOLDEN_OPS,
            512,
        )
        .expect("known scheme");
        let buf = SharedBuf::default();
        let exporter = JsonLinesExporter::new(buf.clone(), Duration::from_millis(5));
        let observed = run_scenario_with_sink(
            "double",
            &Scenario::Zipf { theta: 0.9 },
            config(),
            GOLDEN_KEYSPACE,
            GOLDEN_OPS,
            512,
            Box::new(exporter),
        )
        .expect("known scheme");

        // Bit-identity: the exporter observed, never steered.
        assert_eq!(observed.summary, plain.summary, "pipelined={pipelined}");
        assert!(
            observed.stats.matches(&plain.stats),
            "pipelined={pipelined}: {:?}",
            observed.stats.divergences(&plain.stats)
        );

        // Every emitted line is a parseable metrics object, and the
        // stream accounts for every served op.
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("exporter output is UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "exporter emitted nothing");
        for line in &lines {
            assert_parses_as_metrics_line(line);
        }
        let total_ops: u64 = lines
            .iter()
            .map(|l| {
                let rest = &l[l.find("\"ops\": ").unwrap() + 7..];
                rest[..rest.find(',').unwrap()].parse::<u64>().unwrap()
            })
            .sum();
        assert_eq!(total_ops, GOLDEN_OPS, "pipelined={pipelined}");
    }
}

#[test]
fn multi_producer_serving_with_sink_stays_bit_identical_and_attributes_routing() {
    // The telemetry contract under the fanned-out front end: attaching a
    // sink to a multi-producer pipelined run changes nothing about the
    // results, and the records carry the new per-producer attribution —
    // producer indices within the fan-out width and a measured routing
    // time on at least some batches.
    let producers = 3usize;
    // Batch 128 over 4 shards makes a 512-op routing chunk, so the
    // 2048-op golden stream spans four chunks and the round-robin
    // distribution reaches producers beyond index 0.
    let batch = 128usize;
    let config = || golden_config().pipelined_producers(4, producers);
    let plain = run_scenario(
        "double",
        &Scenario::Zipf { theta: 0.9 },
        config(),
        GOLDEN_KEYSPACE,
        GOLDEN_OPS,
        batch,
    )
    .expect("known scheme");
    let sink = SharedSink::new();
    let observed = run_scenario_with_sink(
        "double",
        &Scenario::Zipf { theta: 0.9 },
        config(),
        GOLDEN_KEYSPACE,
        GOLDEN_OPS,
        batch,
        Box::new(sink.clone()),
    )
    .expect("known scheme");

    assert_eq!(observed.summary, plain.summary);
    assert!(
        observed.stats.matches(&plain.stats),
        "{:?}",
        observed.stats.divergences(&plain.stats)
    );

    let records = sink.records();
    assert!(!records.is_empty());
    let mut seen_producers = std::collections::BTreeSet::new();
    for r in &records {
        assert!(
            (r.producer as usize) < producers,
            "producer {} outside fan-out width {producers}",
            r.producer
        );
        assert!(r.shard.is_some(), "stream records are per-shard");
        seen_producers.insert(r.producer);
    }
    assert!(
        seen_producers.len() > 1,
        "round-robin chunk distribution should touch several producers: {seen_producers:?}"
    );
    assert!(
        records.iter().any(|r| r.routed > Duration::ZERO),
        "no batch carried routing time under multi-producer serving"
    );
}

#[test]
fn windowed_aggregator_totals_match_shared_sink_totals() {
    // The aggregator is a lossless roll-up of the record stream: window
    // totals sum to exactly what a raw SharedSink collects.
    let records = {
        let sink = SharedSink::new();
        run_scenario_with_sink(
            "double",
            &Scenario::Churn {
                delete_fraction: 0.5,
            },
            golden_config().pipelined(2),
            GOLDEN_KEYSPACE,
            GOLDEN_OPS,
            512,
            Box::new(sink.clone()),
        )
        .expect("known scheme");
        sink.records()
    };
    let mut aggregator = WindowedAggregator::new(Duration::from_millis(2));
    for record in &records {
        aggregator.record(record);
    }
    let windows = aggregator.finish_all();
    assert_eq!(
        windows.iter().map(|w| w.batches).sum::<u64>(),
        records.len() as u64
    );
    assert_eq!(
        windows.iter().map(|w| w.ops).sum::<u64>(),
        records.iter().map(|r| u64::from(r.ops)).sum::<u64>()
    );
    assert_eq!(
        windows.iter().map(|w| w.stalls).sum::<u64>(),
        records.iter().map(|r| u64::from(r.stalls)).sum::<u64>()
    );
    // And the sketches hold every batch's latency sample.
    assert_eq!(
        windows.iter().map(|w| w.apply_us.count()).sum::<u64>(),
        records.len() as u64
    );
}
