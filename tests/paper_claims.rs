//! Integration tests asserting the paper's *claims* end to end: double
//! hashing and fully random hashing are statistically indistinguishable
//! across every workload the paper evaluates, and both match the fluid
//! limit.

use balanced_allocations::prelude::*;
use balanced_allocations::stats::two_proportion_z;

const N: u64 = 1 << 12;
const TRIALS: u64 = 60;

fn pair(n: u64, d: usize) -> (FullyRandom, DoubleHashing) {
    (
        FullyRandom::new(n, d, Replacement::Without),
        DoubleHashing::new(n, d),
    )
}

/// z-statistic comparing the load-i bin counts pooled over all trials.
fn load_z(a: &TrialAccumulator, b: &TrialAccumulator, load: usize) -> f64 {
    let bins_a = a.trials() * a.bins_per_trial();
    let bins_b = b.trials() * b.bins_per_trial();
    let xa = (a.mean_fraction(load) * bins_a as f64).round() as u64;
    let xb = (b.mean_fraction(load) * bins_b as f64).round() as u64;
    two_proportion_z(xa, bins_a, xb, bins_b)
}

#[test]
fn standard_process_indistinguishable_d3() {
    let (fr, dh) = pair(N, 3);
    let cfg = ExperimentConfig::new(N).trials(TRIALS).seed(11);
    let a = run_load_experiment(&fr, &cfg);
    let b = run_load_experiment(&dh, &cfg);
    for load in 0..=2 {
        let z = load_z(&a, &b, load);
        assert!(
            z.abs() < 4.0,
            "load {load}: z = {z} — schemes distinguishable"
        );
    }
}

#[test]
fn standard_process_indistinguishable_d4() {
    let (fr, dh) = pair(N, 4);
    let cfg = ExperimentConfig::new(N).trials(TRIALS).seed(12);
    let a = run_load_experiment(&fr, &cfg);
    let b = run_load_experiment(&dh, &cfg);
    for load in 0..=2 {
        let z = load_z(&a, &b, load);
        assert!(z.abs() < 4.0, "load {load}: z = {z}");
    }
}

#[test]
fn both_schemes_match_fluid_limit() {
    let (fr, dh) = pair(N, 3);
    let cfg = ExperimentConfig::new(N).trials(TRIALS).seed(13);
    let fluid = BalancedAllocationOde::new(3, 8).load_fractions(1.0);
    for (name, acc) in [
        ("random", run_load_experiment(&fr, &cfg)),
        ("double", run_load_experiment(&dh, &cfg)),
    ] {
        for (load, fluid_p) in fluid.iter().enumerate().take(3) {
            let sim = acc.mean_fraction(load);
            assert!(
                (sim - fluid_p).abs() < 0.005,
                "{name} load {load}: sim {sim} vs fluid {fluid_p}"
            );
        }
    }
}

#[test]
fn heavily_loaded_case_indistinguishable() {
    // Table 6 shape: m = 16n balls; compare the dominant loads 15..17.
    let n = 1u64 << 10;
    let m = n * 16;
    let (fr, dh) = pair(n, 3);
    let cfg = ExperimentConfig::new(m).trials(40).seed(14);
    let a = run_load_experiment(&fr, &cfg);
    let b = run_load_experiment(&dh, &cfg);
    for load in 15..=17 {
        let z = load_z(&a, &b, load);
        assert!(z.abs() < 4.0, "load {load}: z = {z}");
    }
    // Mean load must be 16 in both.
    let mean =
        |acc: &TrialAccumulator| -> f64 { (0..40).map(|l| l as f64 * acc.mean_fraction(l)).sum() };
    assert!((mean(&a) - 16.0).abs() < 1e-9);
    assert!((mean(&b) - 16.0).abs() < 1e-9);
}

#[test]
fn dleft_indistinguishable_and_tighter() {
    // Table 7 shape: Vöcking's scheme with both disciplines, plus the
    // d-left ODE as the reference.
    let n = 1u64 << 12;
    let d = 4;
    let m = n / d as u64;
    let fr = Partitioned::new(FullyRandom::new(m, d, Replacement::With), n);
    let dh = Partitioned::new(DoubleHashing::new(m, d), n);
    let cfg = ExperimentConfig::new(n)
        .trials(TRIALS)
        .seed(15)
        .tie(TieBreak::FirstOffered);
    let a = run_load_experiment(&fr, &cfg);
    let b = run_load_experiment(&dh, &cfg);
    for load in 0..=2 {
        let z = load_z(&a, &b, load);
        assert!(z.abs() < 4.0, "load {load}: z = {z}");
    }
    let fluid = DLeftOde::new(d, 8).load_fractions(1.0);
    for (load, fluid_p) in fluid.iter().enumerate().take(3) {
        assert!(
            (a.mean_fraction(load) - fluid_p).abs() < 0.01,
            "dleft load {load}: sim {} vs fluid {fluid_p}",
            a.mean_fraction(load)
        );
    }
    // d-left concentrates harder than the symmetric process: almost no
    // bins at load 3.
    assert!(a.mean_fraction(3) < 1e-3);
    assert!(b.mean_fraction(3) < 1e-3);
}

#[test]
fn max_load_fractions_agree() {
    // Table 4 shape: the fraction of trials with max load exactly 3.
    let (fr, dh) = pair(N, 3);
    let cfg = ExperimentConfig::new(N).trials(100).seed(16);
    let a = run_maxload_experiment(&fr, &cfg);
    let b = run_maxload_experiment(&dh, &cfg);
    let fa = fraction_with_max_load(&a, 3);
    let fb = fraction_with_max_load(&b, 3);
    // At n = 2^12 the paper reports ~87% for d = 3; allow broad noise.
    assert!((0.6..=1.0).contains(&fa), "random: {fa}");
    assert!((0.6..=1.0).contains(&fb), "double: {fb}");
    assert!((fa - fb).abs() < 0.25, "fractions diverge: {fa} vs {fb}");
}

#[test]
fn queueing_indistinguishable() {
    // Table 8 shape at reduced scale.
    let n = 1u64 << 9;
    let lambda = 0.9;
    let d = 3;
    let seq = SeedSequence::new(17);
    let run = |scheme: AnyScheme, stream: u64| -> f64 {
        let sim = SupermarketSim::new(scheme, lambda);
        let mut rng = seq.child(stream).xoshiro();
        sim.run(1_500.0, 300.0, &mut rng).mean()
    };
    let fr = run(AnyScheme::by_name("random", n, d).unwrap(), 0);
    let dh = run(AnyScheme::by_name("double", n, d).unwrap(), 1);
    let fluid = SupermarketOde::new(lambda, d as u32, 60).equilibrium_sojourn_time();
    assert!((fr - dh).abs() / fr < 0.04, "random {fr} vs double {dh}");
    assert!(
        (fr - fluid).abs() / fluid < 0.06,
        "sim {fr} vs fluid {fluid}"
    );
}

#[test]
fn one_plus_beta_indistinguishable() {
    // Extension: the mixture process with double hashing for the 2-choice
    // step matches the fully random mixture.
    let n = 1u64 << 12;
    let beta = 0.6;
    let seq = SeedSequence::new(18);
    let run = |use_double: bool| -> f64 {
        let mut total = 0u64;
        let trials = 30;
        for t in 0..trials {
            let mut rng = seq.child(t + if use_double { 1000 } else { 0 }).xoshiro();
            let max = if use_double {
                OnePlusBeta::new(DoubleHashing::new(n, 2), beta)
                    .run(n, TieBreak::Random, &mut rng)
                    .max_load()
            } else {
                OnePlusBeta::new(FullyRandom::new(n, 2, Replacement::Without), beta)
                    .run(n, TieBreak::Random, &mut rng)
                    .max_load()
            };
            total += max as u64;
        }
        total as f64 / trials as f64
    };
    let fr = run(false);
    let dh = run(true);
    assert!(
        (fr - dh).abs() < 1.0,
        "mean max loads diverge: {fr} vs {dh}"
    );
}

#[test]
fn max_load_distributions_pass_ks() {
    // Whole-distribution check: the per-trial maximum-load samples of the
    // two schemes must pass a two-sample KS test, not just agree in mean.
    use balanced_allocations::stats::{ks_critical_value, ks_statistic};
    let (fr, dh) = pair(1 << 11, 3);
    let cfg = ExperimentConfig::new(1 << 11).trials(400).seed(21);
    let mut a: Vec<f64> = run_maxload_experiment(&fr, &cfg)
        .into_iter()
        .map(f64::from)
        .collect();
    let mut b: Vec<f64> = run_maxload_experiment(&dh, &cfg.clone().seed(22))
        .into_iter()
        .map(f64::from)
        .collect();
    let d = ks_statistic(&mut a, &mut b);
    let crit = ks_critical_value(a.len(), b.len(), 0.001);
    assert!(d < crit, "KS statistic {d} exceeds critical value {crit}");
}
