//! The replay subsystem's cross-layer acceptance tests.
//!
//! Three anchors, all against the checked-in golden corpus under
//! `tests/golden/` (one `.baops` capture per scenario, pinned at
//! `(GOLDEN_KEYSPACE, GOLDEN_SEED, GOLDEN_OPS)`):
//!
//! 1. **Generator stability** — regenerating each golden capture from its
//!    `(scenario, seed)` pair must reproduce the checked-in file
//!    byte-for-byte, so any change to generators, the Zipf sampler, or
//!    the RNG tree that silently perturbs op streams fails loudly here.
//! 2. **Replay fidelity** — a capture replayed through [`ReplayWorkload`]
//!    produces bit-identical final shard states and [`EngineStats`] to
//!    live generation, for every scenario × `ChoiceMode` × `WorkerMode`.
//! 3. **Placement stability** — `run_scenario` max loads and p50/p99
//!    observation summaries at the pinned seed match checked-in expected
//!    values, so silent drift in hashing, sharding, or percentile math
//!    also fails loudly.

use balanced_allocations::engine::WorkerMode;
use balanced_allocations::prelude::*;
use balanced_allocations::workload::replay::{
    golden_capture, GOLDEN_KEYSPACE, GOLDEN_OPS, GOLDEN_SEED,
};
use std::path::PathBuf;

fn golden_path(scenario: &Scenario) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.baops", scenario.name()))
}

#[test]
fn golden_captures_regenerate_byte_for_byte() {
    // The corpus anchor: `(scenario, seed)` must still mean exactly the
    // stream that was checked in. If this fails, a generator/RNG change
    // altered op streams — either fix the change or consciously
    // regenerate the corpus via `replay_capture golden tests/golden`.
    for scenario in Scenario::all() {
        let path = golden_path(&scenario);
        let on_disk =
            std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let regenerated = golden_capture(&scenario).encode();
        assert_eq!(
            on_disk,
            regenerated,
            "{}: checked-in golden capture no longer matches its generator",
            scenario.name()
        );
    }
}

#[test]
fn golden_captures_decode_with_expected_headers() {
    for scenario in Scenario::all() {
        let file = ReplayFile::open(golden_path(&scenario)).expect("golden file decodes");
        let header = file.header();
        assert_eq!(header.scenario, scenario.name());
        assert_eq!(header.seed, GOLDEN_SEED);
        assert_eq!(header.keyspace, GOLDEN_KEYSPACE);
        assert_eq!(header.op_count, GOLDEN_OPS);
        assert_eq!(file.ops().len() as u64, GOLDEN_OPS);
    }
}

#[test]
fn replayed_golden_captures_match_live_generation_bit_for_bit() {
    // The tentpole acceptance criterion: for every scenario × ChoiceMode
    // × WorkerMode, serving the golden capture through ReplayWorkload is
    // indistinguishable — final bin loads, batch summaries, full stats —
    // from serving the live generator.
    for scenario in Scenario::all() {
        let file = ReplayFile::open(golden_path(&scenario)).expect("golden file decodes");
        for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
            for workers in [
                WorkerMode::Sequential,
                WorkerMode::Scoped,
                WorkerMode::Persistent,
            ] {
                let config = || {
                    EngineConfig::new(4, 256, 3)
                        .seed(GOLDEN_SEED)
                        .mode(mode)
                        .workers(workers)
                };
                let tag = format!("{}/{mode:?}/{workers:?}", scenario.name());

                let mut live_engine = Engine::by_name("double", config()).unwrap();
                let mut generator = scenario.build(GOLDEN_KEYSPACE, GOLDEN_SEED);
                let live = drive(&mut live_engine, generator.as_mut(), GOLDEN_OPS, 512);

                let mut replay_engine = Engine::by_name("double", config()).unwrap();
                let mut replayed_workload = file.workload();
                let replayed = drive(&mut replay_engine, &mut replayed_workload, GOLDEN_OPS, 512);

                assert_eq!(live.summary, replayed.summary, "{tag}");
                let divergences = live.stats.divergences(&replayed.stats);
                assert!(divergences.is_empty(), "{tag}: {divergences:?}");
                for (a, b) in live_engine.shards().iter().zip(replay_engine.shards()) {
                    assert_eq!(
                        a.allocation().loads(),
                        b.allocation().loads(),
                        "{tag}: shard {} bin loads",
                        a.id()
                    );
                }
            }
        }
    }
}

#[test]
fn differential_replay_of_golden_corpus_is_consistent() {
    // The differential runner over the checked-in corpus: every scheme ×
    // choice mode serves each capture identically under all worker modes.
    for scenario in Scenario::all() {
        let file = ReplayFile::open(golden_path(&scenario)).expect("golden file decodes");
        let outcome = differential_replay(
            &file,
            &["random", "double", "one"],
            EngineConfig::new(4, 256, 3).seed(GOLDEN_SEED),
            512,
        )
        .unwrap();
        assert!(
            outcome.is_consistent(),
            "{}: {:?}",
            scenario.name(),
            outcome.divergences
        );
        assert_eq!(outcome.scenario, scenario.name());
    }
}

#[test]
fn serve_replay_on_golden_capture_matches_drive() {
    // The engine's iterator ingestion path and the workload driver agree
    // on replayed streams.
    let file = ReplayFile::open(golden_path(&Scenario::Bursty)).unwrap();
    let config = || EngineConfig::new(4, 256, 3).seed(GOLDEN_SEED);
    let mut via_drive = Engine::by_name("double", config()).unwrap();
    let mut workload = file.workload();
    let report = drive(&mut via_drive, &mut workload, GOLDEN_OPS, 512);
    let mut via_serve = Engine::by_name("double", config()).unwrap();
    let summary = via_serve.serve_replay(file.ops().iter().copied(), 512);
    assert_eq!(report.summary, summary);
    assert!(via_drive.stats().matches(&via_serve.stats()));
}

#[test]
fn serve_pipelined_on_golden_captures_matches_phased_replay() {
    // The pipelined twin of the replay-fidelity anchor: pushing a golden
    // capture through the SPSC-ring pipeline — at several queue depths,
    // single- and multi-producer — is bit-identical to phased
    // serve_replay of the same file, in both choice modes.
    for scenario in Scenario::all() {
        let file = ReplayFile::open(golden_path(&scenario)).expect("golden file decodes");
        for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
            let config = || EngineConfig::new(4, 256, 3).seed(GOLDEN_SEED).mode(mode);
            let mut phased_engine = Engine::by_name("double", config()).unwrap();
            let phased = phased_engine.serve_replay(file.ops().iter().copied(), 512);
            for (depth, producers) in [(1usize, 1usize), (4, 1), (64, 1), (4, 2), (4, 4)] {
                let tag = format!("{}/{mode:?}/depth {depth} x{producers}", scenario.name());
                let mut pipelined_engine = Engine::by_name("double", config()).unwrap();
                let pipelined = pipelined_engine.serve_pipelined_producers(
                    file.ops().iter().copied(),
                    512,
                    depth,
                    producers,
                );
                assert_eq!(pipelined, phased, "{tag}");
                let divergences = phased_engine.stats().divergences(&pipelined_engine.stats());
                assert!(divergences.is_empty(), "{tag}: {divergences:?}");
                for (a, b) in phased_engine.shards().iter().zip(pipelined_engine.shards()) {
                    assert_eq!(
                        a.allocation().loads(),
                        b.allocation().loads(),
                        "{tag}: shard {} bin loads",
                        a.id()
                    );
                }
            }
        }
    }
}

#[test]
fn golden_stats_snapshots_at_pinned_seed() {
    // Placement-stability anchor: expected values were produced by this
    // exact configuration and checked in. A mismatch means hashing,
    // routing, tie-breaking, generator, or percentile behaviour changed.
    // Columns: (scenario, max_load, insert_load p50, insert_load p99,
    //           insert_probe p99, delete count, lookup count).
    const EXPECTED: &[(&str, u32, u32, u32, u32, u64, u64)] = &[
        ("uniform", 4, 2, 3, 2, 0, 0),
        ("zipf", 4, 1, 3, 2, 0, 518),
        ("bursty", 4, 2, 3, 2, 0, 0),
        ("churn", 3, 1, 2, 2, 511, 0),
        ("adversarial", 2, 1, 2, 2, 512, 0),
    ];
    for &(name, max_load, p50, p99, probe_p99, deletes, lookups) in EXPECTED {
        let scenario = Scenario::by_name(name).unwrap();
        let report = run_scenario(
            "double",
            &scenario,
            EngineConfig::new(4, 256, 3).seed(GOLDEN_SEED),
            GOLDEN_KEYSPACE,
            GOLDEN_OPS,
            512,
        )
        .unwrap();
        let observed = report.stats.merged_observations();
        let actual = (
            name,
            report.stats.max_load(),
            observed.insert_load.percentile(50.0),
            observed.insert_load.percentile(99.0),
            observed.insert_probe.percentile(99.0),
            observed.delete_load.count(),
            observed.lookup_depth.count(),
        );
        assert_eq!(
            actual,
            (name, max_load, p50, p99, probe_p99, deletes, lookups),
            "{name}: pinned stats snapshot drifted"
        );
    }
}

#[test]
fn tampered_golden_files_are_rejected_with_typed_errors() {
    let bytes = std::fs::read(golden_path(&Scenario::Uniform)).unwrap();
    // Sanity: the pristine file decodes.
    assert!(ReplayFile::decode(&bytes).is_ok());
    // Truncation mid-body.
    assert!(matches!(
        ReplayFile::decode(&bytes[..bytes.len() / 2]),
        Err(ReplayError::ChecksumMismatch { .. } | ReplayError::Truncated)
    ));
    // A flipped payload bit.
    let mut corrupt = bytes.clone();
    corrupt[100] ^= 0x10;
    assert!(matches!(
        ReplayFile::decode(&corrupt),
        Err(ReplayError::ChecksumMismatch { .. })
    ));
    // A future format version.
    let mut future = bytes.clone();
    future[5] = 7;
    assert!(matches!(
        ReplayFile::decode(&future),
        Err(ReplayError::UnsupportedVersion(7))
    ));
    // Not a .baops file at all.
    assert!(matches!(
        ReplayFile::decode(b"PNG\r\n definitely not ops"),
        Err(ReplayError::BadMagic)
    ));
}
