//! Property-based tests (proptest) on the cross-crate invariants.

use balanced_allocations::numtheory::{euler_totient, gcd, is_prime, mod_inverse, mul_mod};
use balanced_allocations::prelude::*;
use balanced_allocations::stats::LoadHistogram;
use proptest::prelude::*;

/// Strategy: a plausible (n, d) pair for a choice scheme.
fn scheme_params() -> impl Strategy<Value = (u64, usize)> {
    (2u64..=512, 1usize..=6).prop_filter("d <= n", |(n, d)| *d as u64 <= *n)
}

proptest! {
    #[test]
    fn double_hashing_probes_distinct_and_in_range((n, d) in scheme_params(), seed in any::<u64>()) {
        let scheme = DoubleHashing::new(n, d);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let choices = scheme.choices(&mut rng);
        prop_assert_eq!(choices.len(), d);
        let mut sorted = choices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), d, "duplicates in {:?}", choices);
        prop_assert!(choices.iter().all(|&c| c < n));
    }

    #[test]
    fn double_hashing_strides_coprime((n, d) in scheme_params(), seed in any::<u64>()) {
        prop_assume!(n >= 3 && d >= 2);
        let scheme = DoubleHashing::new(n, d);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let choices = scheme.choices(&mut rng);
        let g = (choices[1] + n - choices[0]) % n;
        prop_assert_eq!(gcd(g, n), 1);
    }

    #[test]
    fn fully_random_without_replacement_distinct((n, d) in scheme_params(), seed in any::<u64>()) {
        let scheme = FullyRandom::new(n, d, Replacement::Without);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let choices = scheme.choices(&mut rng);
        let mut sorted = choices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), d);
    }

    #[test]
    fn allocation_conserves_balls(
        n in 1u64..=256,
        m in 0u64..=2048,
        seed in any::<u64>(),
        d in 1usize..=4,
    ) {
        prop_assume!(d as u64 <= n);
        let scheme = FullyRandom::new(n, d, Replacement::Without);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let alloc = run_process(&scheme, m, TieBreak::Random, &mut rng);
        prop_assert_eq!(alloc.balls(), m);
        let hist = alloc.histogram();
        prop_assert_eq!(hist.total_balls(), m);
        prop_assert_eq!(hist.total_bins(), n);
        prop_assert_eq!(hist.max_load() , alloc.max_load());
    }

    #[test]
    fn more_choices_never_hurt_much(
        seed in any::<u64>(),
    ) {
        // Monotonicity in expectation (checked loosely per-seed): max load
        // with 4 choices is at most max load with 1 choice + 1 slack.
        let n = 1u64 << 10;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let one = run_process(&OneChoice::new(n), n, TieBreak::Random, &mut rng).max_load();
        let four = run_process(
            &FullyRandom::new(n, 4, Replacement::Without),
            n,
            TieBreak::Random,
            &mut rng,
        )
        .max_load();
        prop_assert!(four <= one + 1, "four={four} one={one}");
    }

    #[test]
    fn histogram_tail_is_monotone(loads in proptest::collection::vec(0u32..32, 1..200)) {
        let hist = LoadHistogram::from_loads(&loads);
        for i in 0..hist.len() {
            prop_assert!(hist.tail_count(i) >= hist.tail_count(i + 1));
        }
        prop_assert_eq!(hist.tail_count(0), loads.len() as u64);
    }

    #[test]
    fn welford_merge_any_split(
        data in proptest::collection::vec(-1e6f64..1e6, 2..200),
        split in 0usize..200,
    ) {
        let split = split % data.len();
        let mut whole = Welford::new();
        for &x in &data { whole.push(x); }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..split] { left.push(x); }
        for &x in &data[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3f64.max(whole.variance() * 1e-9));
    }

    #[test]
    fn mod_inverse_is_inverse(a in 1u64..100_000, m in 2u64..100_000) {
        match mod_inverse(a, m) {
            Some(inv) => {
                prop_assert_eq!(gcd(a % m, m), 1);
                prop_assert_eq!(mul_mod(a % m, inv, m), 1 % m);
            }
            None => prop_assert!(gcd(a % m, m) != 1),
        }
    }

    #[test]
    fn totient_multiplicative(a in 1u64..2_000, b in 1u64..2_000) {
        prop_assume!(gcd(a, b) == 1);
        prop_assert_eq!(euler_totient(a * b), euler_totient(a) * euler_totient(b));
    }

    #[test]
    fn primes_have_full_totient(n in 2u64..1_000_000) {
        if is_prime(n) {
            prop_assert_eq!(euler_totient(n), n - 1);
        }
    }

    #[test]
    fn seed_streams_never_collide(seed in any::<u64>(), i in 0u64..10_000, j in 0u64..10_000) {
        prop_assume!(i != j);
        let seq = SeedSequence::new(seed);
        prop_assert_ne!(seq.child(i).derive_u64(), seq.child(j).derive_u64());
    }

    #[test]
    fn experiment_deterministic_across_thread_counts(
        seed in any::<u64>(),
        trials in 1u64..12,
    ) {
        let n = 128u64;
        let scheme = DoubleHashing::new(n, 3);
        let base = ExperimentConfig::new(n).trials(trials).seed(seed);
        let seq = run_load_experiment(&scheme, &base.clone().threads(1));
        let par = run_load_experiment(&scheme, &base.threads(4));
        for load in 0..4 {
            prop_assert_eq!(seq.mean_fraction(load), par.mean_fraction(load));
        }
    }
}
