//! The determinism contract of `ba_core::runner::run_trials`, exercised
//! with real allocation workloads: identical results for any thread count
//! on the same seed.

use balanced_allocations::core::experiment::{run_load_experiment, ExperimentConfig};
use balanced_allocations::core::runner::run_trials;
use balanced_allocations::prelude::*;

/// A full allocation trial: throw n balls, return the final loads.
fn trial_loads(n: u64, seq: SeedSequence) -> Vec<u32> {
    let scheme = DoubleHashing::new(n, 3);
    let mut rng = seq.xoshiro();
    run_process(&scheme, n, TieBreak::Random, &mut rng)
        .loads()
        .to_vec()
}

#[test]
fn thread_counts_1_2_8_agree_on_full_allocations() {
    let n = 1u64 << 10;
    let trials = 24u64;
    let seed = 7u64;
    let run = |threads: usize| run_trials(trials, threads, seed, |_i, seq| trial_loads(n, seq));
    let t1 = run(1);
    let t2 = run(2);
    let t8 = run(8);
    assert_eq!(t1, t2, "threads=2 diverged from threads=1");
    assert_eq!(t1, t8, "threads=8 diverged from threads=1");
}

#[test]
fn thread_counts_agree_across_schemes() {
    let n = 512u64;
    for name in ["random", "double", "blocks", "one"] {
        let d = if name == "one" { 1 } else { 3 };
        let run = |threads: usize| {
            run_trials(16, threads, 99, |_i, seq| {
                let scheme = AnyScheme::by_name(name, n, d).expect("known scheme");
                let mut rng = seq.xoshiro();
                run_process(&scheme, n, TieBreak::Random, &mut rng).max_load()
            })
        };
        assert_eq!(run(1), run(2), "{name}: threads=2 diverged");
        assert_eq!(run(1), run(8), "{name}: threads=8 diverged");
    }
}

#[test]
fn experiment_layer_inherits_thread_independence() {
    // The same contract one layer up: run_load_experiment with different
    // `threads` settings must aggregate to identical statistics.
    let n = 512u64;
    let scheme = DoubleHashing::new(n, 3);
    let acc = |threads: usize| {
        run_load_experiment(
            &scheme,
            &ExperimentConfig::new(n).trials(12).seed(5).threads(threads),
        )
    };
    let a = acc(1);
    let b = acc(2);
    let c = acc(8);
    assert_eq!(a.overall_max_load(), b.overall_max_load());
    assert_eq!(a.overall_max_load(), c.overall_max_load());
    for load in 0..=a.overall_max_load() as usize {
        assert_eq!(a.mean_fraction(load), b.mean_fraction(load), "load {load}");
        assert_eq!(a.mean_fraction(load), c.mean_fraction(load), "load {load}");
    }
}

#[test]
fn seed_changes_results_thread_count_does_not() {
    let f = |_i: u64, seq: SeedSequence| seq.xoshiro().next_u64();
    let base = run_trials(32, 1, 1, f);
    assert_eq!(base, run_trials(32, 8, 1, f));
    assert_ne!(base, run_trials(32, 1, 2, f), "seed must matter");
}
