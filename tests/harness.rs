//! Integration tests for the experiment harness (ba-bench): every
//! registered experiment runs and produces plausibly-shaped output at tiny
//! trial counts.

use ba_bench::{experiment, Opts, EXPERIMENTS};

fn tiny_opts() -> Opts {
    Opts {
        trials: 2,
        seed: 424242,
        threads: 0,
        full: false,
    }
}

#[test]
fn table1_output_contains_both_schemes() {
    let out = experiment("table1").expect("registered")(&tiny_opts());
    assert!(out.contains("Fully Random"));
    assert!(out.contains("Double Hashing"));
    assert!(out.contains("3 choices"));
    assert!(out.contains("4 choices"));
}

#[test]
fn table2_includes_fluid_column() {
    let out = experiment("table2").expect("registered")(&tiny_opts());
    assert!(out.contains("Fluid Limit"));
    // The known fluid values must appear (computed, not simulated, so they
    // are trial-count independent).
    assert!(out.contains("0.82304"), "missing fluid x1 in:\n{out}");
    assert!(out.contains("0.17645"), "missing fluid x2 in:\n{out}");
}

#[test]
fn majorize_reports_zero_violations() {
    let out = experiment("majorize").expect("registered")(&tiny_opts());
    for line in out
        .lines()
        .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
    {
        let cols: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(cols[3], "0", "majorization violated: {line}");
    }
}

#[test]
fn branching_means_below_bounds() {
    let out = experiment("branching").expect("registered")(&tiny_opts());
    for line in out
        .lines()
        .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
    {
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() == 4 {
            let mean: f64 = cols[2].parse().expect("mean column");
            let bound: f64 = cols[3].parse().expect("bound column");
            // The bound constrains the *expectation*; B is heavy-tailed, so
            // grant the sample mean 20% sampling slack.
            assert!(mean < bound * 1.2, "branching bound violated: {line}");
        }
    }
}

#[test]
fn witness_shows_adversarial_gap() {
    let out = experiment("witness").expect("registered")(&tiny_opts());
    assert!(out.contains("first n/3 loaded"));
    assert!(out.contains("random n/3 loaded"));
}

#[test]
fn experiment_output_is_deterministic() {
    let opts = tiny_opts();
    let a = experiment("table1").expect("registered")(&opts);
    let b = experiment("table1").expect("registered")(&opts);
    assert_eq!(a, b, "same opts must give identical output");
}

#[test]
fn experiment_output_varies_with_seed() {
    let mut opts = tiny_opts();
    let a = experiment("table1").expect("registered")(&opts);
    opts.seed += 1;
    let b = experiment("table1").expect("registered")(&opts);
    assert_ne!(a, b, "different seeds must give different samples");
}

#[test]
fn all_fast_experiments_render_tables() {
    // Skip the big-n sweeps (table3/4/5 go to 2^18+, table8 simulates
    // thousands of seconds) and `pipeline` (a half-million-op timing
    // sweep that also writes BENCH_pipeline.json into the working
    // directory — covered at small scale by its own unit test);
    // everything else must run at tiny scale.
    let skip = [
        "table3", "table4", "table5", "table6", "table7", "table8", "pipeline",
    ];
    for (name, f) in EXPERIMENTS {
        if skip.contains(name) {
            continue;
        }
        let out = f(&tiny_opts());
        assert!(
            out.contains('-') && out.lines().count() >= 4,
            "{name} produced implausible output:\n{out}"
        );
    }
}
