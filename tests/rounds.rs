//! Rounds-mode acceptance tests over the checked-in golden corpus.
//!
//! Three anchors, all against the `.baops` captures under `tests/golden/`
//! (pinned at `(GOLDEN_KEYSPACE, GOLDEN_SEED, GOLDEN_OPS)`):
//!
//! 1. **Determinism** — serving a golden capture through
//!    [`IngestMode::Rounds`] is bit-identical whatever the in-batch op
//!    order, worker mode, or propose-thread count: final global bin
//!    vector, batch summary, and full stats all match a sequential
//!    single-producer baseline.
//! 2. **Shard invariance** — the global bin vector is even invariant
//!    under re-sharding at a fixed global bin total, because the rounds
//!    resolver places into the global bin space before shard routing.
//! 3. **Quality** — bulk-parallel resolution may not wreck the paper's
//!    balance: per scenario, the rounds max load stays within a small
//!    additive slack of the sequential keyed d-choice max load.

use balanced_allocations::engine::WorkerMode;
use balanced_allocations::prelude::*;
use balanced_allocations::workload::replay::{GOLDEN_OPS, GOLDEN_SEED};
use std::path::PathBuf;

/// Batch size every rounds serve here uses — the granularity the
/// determinism contract is stated over.
const BATCH: usize = 512;

/// Global bin total held constant while the shard axis varies.
const TOTAL_BINS: u64 = 1024;

fn golden_path(scenario: &Scenario) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.baops", scenario.name()))
}

fn rounds_config(shards: usize, workers: WorkerMode, producers: usize) -> EngineConfig {
    EngineConfig::new(shards, TOTAL_BINS / shards as u64, 3)
        .seed(GOLDEN_SEED)
        .workers(workers)
        .rounds_producers(producers)
}

/// The global per-bin load vector — shard layout flattened away, which
/// is the space the purity contract is stated over.
fn global_loads<S: balanced_allocations::hash::ChoiceScheme + 'static>(
    engine: &Engine<S>,
) -> Vec<u32> {
    engine
        .shards()
        .iter()
        .flat_map(|s| s.allocation().loads().iter().copied())
        .collect()
}

/// Reverses each batch-sized chunk: any in-batch permutation must be
/// invisible to the rounds resolver (crossing a batch boundary would
/// legitimately change batch multisets).
fn permute_within_batches(ops: &[Op], batch: usize) -> Vec<Op> {
    let mut permuted = ops.to_vec();
    for chunk in permuted.chunks_mut(batch) {
        chunk.reverse();
    }
    permuted
}

#[test]
fn golden_corpus_through_rounds_is_order_worker_and_producer_invariant() {
    // Anchor 1: capture-order baseline vs per-batch-permuted streams
    // under every worker mode and several producer fan-outs.
    for scenario in Scenario::all() {
        let file = ReplayFile::open(golden_path(&scenario)).expect("golden file decodes");
        let ops: Vec<Op> = file.ops().to_vec();
        let permuted = permute_within_batches(&ops, BATCH);

        let mut reference =
            Engine::by_name("double", rounds_config(4, WorkerMode::Sequential, 1)).unwrap();
        let baseline_summary = reference.serve(&ops, BATCH);
        let baseline_loads = global_loads(&reference);
        let report = reference.take_round_report().expect("rounds mode");
        assert!(
            report.batches > 0,
            "{}: no batches resolved",
            scenario.name()
        );

        for (workers, producers) in [
            (WorkerMode::Sequential, 4),
            (WorkerMode::Scoped, 1),
            (WorkerMode::Persistent, 2),
            (WorkerMode::Persistent, 4),
        ] {
            let tag = format!("{}/{workers:?} x{producers}", scenario.name());
            let mut engine =
                Engine::by_name("double", rounds_config(4, workers, producers)).unwrap();
            let summary = engine.serve(&permuted, BATCH);
            assert_eq!(summary, baseline_summary, "{tag}: summary diverged");
            assert_eq!(
                global_loads(&engine),
                baseline_loads,
                "{tag}: global bin vector diverged"
            );
            let divergences = reference.stats().divergences(&engine.stats());
            assert!(divergences.is_empty(), "{tag}: {divergences:?}");
        }
    }
}

#[test]
fn golden_corpus_through_rounds_is_shard_count_invariant() {
    // Anchor 2: the same capture resolved over {1, 2, 4} shards at a
    // constant 1024-bin global space lands every ball in the same
    // global bin. (Per-shard stats legitimately differ across shard
    // counts — routing attributes lookups/deletes differently — so the
    // comparison is global loads + summary only.)
    for scenario in Scenario::all() {
        let file = ReplayFile::open(golden_path(&scenario)).expect("golden file decodes");
        let ops: Vec<Op> = file.ops().to_vec();

        let mut reference =
            Engine::by_name("double", rounds_config(1, WorkerMode::Sequential, 1)).unwrap();
        let baseline_summary = reference.serve(&ops, BATCH);
        let baseline_loads = global_loads(&reference);
        assert_eq!(baseline_loads.len() as u64, TOTAL_BINS);

        for shards in [2usize, 4] {
            let tag = format!("{}/{shards} shards", scenario.name());
            let mut engine =
                Engine::by_name("double", rounds_config(shards, WorkerMode::Persistent, 2))
                    .unwrap();
            let summary = engine.serve(&ops, BATCH);
            assert_eq!(summary, baseline_summary, "{tag}: summary diverged");
            assert_eq!(
                global_loads(&engine),
                baseline_loads,
                "{tag}: global bin vector diverged"
            );
        }
    }
}

#[test]
fn rounds_max_load_tracks_sequential_d_choice_on_golden_corpus() {
    // Anchor 3: bulk-parallel resolution keeps the d-choice balance the
    // paper is about. Round-synchronized placement can differ from the
    // strictly sequential process (all balls in a round see the same
    // pre-round loads), but on these captures it must stay within a
    // small additive slack of the sequential keyed max load.
    for scenario in Scenario::all() {
        let file = ReplayFile::open(golden_path(&scenario)).expect("golden file decodes");
        let ops: Vec<Op> = file.ops().to_vec();

        let mut sequential = Engine::by_name(
            "double",
            EngineConfig::new(4, 256, 3).seed(GOLDEN_SEED).keyed(),
        )
        .unwrap();
        sequential.serve(&ops, BATCH);

        let mut rounds =
            Engine::by_name("double", rounds_config(4, WorkerMode::Persistent, 2)).unwrap();
        rounds.serve(&ops, BATCH);
        let report = rounds.take_round_report().expect("rounds mode");

        assert_eq!(report.max_load, rounds.max_load());
        assert!(
            report.max_load <= sequential.max_load() + 2,
            "{}: rounds max load {} vs sequential {}",
            scenario.name(),
            report.max_load,
            sequential.max_load()
        );
    }
}

#[test]
fn incremental_max_load_tracker_matches_full_scan_on_golden_corpus() {
    // The O(1) max-load tracker (occupancy counters inside
    // `Allocation`) against a full load scan, after serving each golden
    // capture through both rounds ingestion and sequential keyed
    // serving — the insert/delete churn paths CI gates on.
    for scenario in Scenario::all() {
        let file = ReplayFile::open(golden_path(&scenario)).expect("golden file decodes");
        let ops: Vec<Op> = file.ops().to_vec();

        let mut rounds =
            Engine::by_name("double", rounds_config(4, WorkerMode::Persistent, 2)).unwrap();
        rounds.serve(&ops, BATCH);
        let mut sequential = Engine::by_name(
            "double",
            EngineConfig::new(4, 256, 3).seed(GOLDEN_SEED).keyed(),
        )
        .unwrap();
        sequential.serve(&ops, BATCH);

        for engine in [&rounds, &sequential] {
            for shard in engine.shards() {
                assert_eq!(
                    shard.allocation().max_load(),
                    shard.allocation().scanned_max_load(),
                    "{}: shard {} tracker diverged from scan",
                    scenario.name(),
                    shard.id()
                );
            }
        }
    }
}

#[test]
fn drive_through_rounds_matches_direct_serve_on_golden_capture() {
    // The workload driver and direct serve agree on rounds engines, so
    // `run_scenario`/`drive` reports describe the same allocation the
    // engine API produces.
    let file = ReplayFile::open(golden_path(&Scenario::Bursty)).unwrap();
    let mut via_drive =
        Engine::by_name("double", rounds_config(4, WorkerMode::Sequential, 1)).unwrap();
    let mut workload = file.workload();
    let report = drive(&mut via_drive, &mut workload, GOLDEN_OPS, BATCH);
    assert_eq!(report.summary.total_ops(), GOLDEN_OPS);

    let mut via_serve =
        Engine::by_name("double", rounds_config(4, WorkerMode::Sequential, 1)).unwrap();
    let summary = via_serve.serve(file.ops(), BATCH);
    assert_eq!(report.summary, summary);
    assert_eq!(global_loads(&via_drive), global_loads(&via_serve));
    assert!(via_drive.stats().matches(&via_serve.stats()));
}
