//! Witness-tree construction (Section 2.2 / Vöcking).
//!
//! A *witness tree* certifies a high load: if some bin reaches load `L + c`
//! then, walking backwards through the balls that caused each level, there
//! is a depth-`L` tree of balls in which every node's ball found all its
//! other choices at height ≥ its own. Section 2.2 bounds the probability
//! any such tree "activates" under double hashing. This module *builds*
//! the witness tree below a given bin from a recorded [`History`], so the
//! structure the proof talks about can be inspected, measured, and tested
//! on real runs.

use crate::ancestry::History;

/// A node of a witness tree: the ball that pushed some bin to a height,
/// plus the witness subtrees of the choices that beat it.
#[derive(Debug, Clone)]
pub struct WitnessNode {
    /// The ball id (its arrival time).
    pub ball: u32,
    /// The bin this node certifies (where `ball` was placed).
    pub bin: u64,
    /// The height this node certifies: `ball` landed on a bin of load
    /// `height − 1`, making it the `height`-th ball there.
    pub height: u32,
    /// Witness subtrees for each of the ball's *other* choices (each of
    /// which had load ≥ `height − 1` when the ball arrived).
    pub children: Vec<WitnessNode>,
}

impl WitnessNode {
    /// The depth of the tree (a single node has depth 1).
    pub fn depth(&self) -> u32 {
        1 + self
            .children
            .iter()
            .map(WitnessNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Total number of nodes.
    pub fn size(&self) -> u64 {
        1 + self.children.iter().map(WitnessNode::size).sum::<u64>()
    }

    /// Collects all ball ids in the tree (with multiplicity).
    pub fn balls(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.size() as usize);
        self.collect_balls(&mut out);
        out
    }

    fn collect_balls(&self, out: &mut Vec<u32>) {
        out.push(self.ball);
        for c in &self.children {
            c.collect_balls(out);
        }
    }
}

/// Builds the witness tree certifying that `bin` reached `target_height`
/// during the recorded run, descending `levels` levels (heights
/// `target_height` down to `target_height − levels + 1`).
///
/// Returns `None` if the bin never reached `target_height`.
///
/// Construction: replay the history; the ball that raised `bin` from
/// `target_height − 1` to `target_height` is the root. For each of that
/// ball's other choices — which, by the greedy rule, carried load ≥
/// `target_height − 1` at that moment — recurse one level lower, bounded
/// by the root ball's time.
pub fn build_witness_tree(
    history: &History,
    bin: u64,
    target_height: u32,
    levels: u32,
) -> Option<WitnessNode> {
    build_at(history, bin, target_height, history.balls() as u32, levels)
}

/// Finds the ball that raised `bin` to `height` strictly before time
/// `before`, then recurses on its other choices.
fn build_at(
    history: &History,
    bin: u64,
    height: u32,
    before: u32,
    levels: u32,
) -> Option<WitnessNode> {
    if height == 0 || levels == 0 {
        return None;
    }
    // Replay placements into `bin` to find the ball landing at `height`.
    let mut load = 0u32;
    let mut found: Option<u32> = None;
    for ball in history.balls_placed_in(bin) {
        if ball >= before {
            break;
        }
        load += 1;
        if load == height {
            found = Some(ball);
            break;
        }
    }
    let ball = found?;
    let mut children = Vec::new();
    if levels > 1 && height > 1 {
        for &other in history.ball_choices(ball) {
            if other == bin {
                continue;
            }
            // The greedy rule guarantees `other` had load ≥ height − 1 at
            // time `ball`; its witness at the lower level must exist.
            if let Some(child) = build_at(history, other, height - 1, ball, levels - 1) {
                children.push(child);
            }
        }
    }
    Some(WitnessNode {
        ball,
        bin,
        height,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_hash::DoubleHashing;
    use ba_rng::Xoshiro256StarStar;

    fn history(n: u64, d: usize, seed: u64) -> History {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        History::record(&DoubleHashing::new(n, d), n, &mut rng)
    }

    /// The deepest-loaded bin of the run and its final load.
    fn deepest(history: &History) -> (u64, u32) {
        let mut best = (0u64, 0u32);
        for bin in 0..history.n() {
            let load = history.balls_placed_in(bin).count() as u32;
            if load > best.1 {
                best = (bin, load);
            }
        }
        best
    }

    #[test]
    fn witness_tree_exists_for_max_load_bin() {
        let h = history(1 << 10, 3, 1);
        let (bin, load) = deepest(&h);
        assert!(load >= 2, "max load {load} too small to witness");
        let tree = build_witness_tree(&h, bin, load, load).expect("tree must exist");
        assert_eq!(tree.bin, bin);
        assert_eq!(tree.height, load);
    }

    #[test]
    fn witness_tree_depth_tracks_levels() {
        let h = history(1 << 10, 3, 2);
        let (bin, load) = deepest(&h);
        for levels in 1..=load {
            let tree = build_witness_tree(&h, bin, load, levels).expect("exists");
            assert!(
                tree.depth() <= levels,
                "depth {} > levels {levels}",
                tree.depth()
            );
        }
    }

    #[test]
    fn children_certify_lower_heights() {
        let h = history(1 << 10, 4, 3);
        let (bin, load) = deepest(&h);
        let tree = build_witness_tree(&h, bin, load, load).expect("exists");
        fn check(node: &WitnessNode) {
            for c in &node.children {
                assert_eq!(c.height, node.height - 1);
                assert!(c.ball < node.ball, "child must precede parent in time");
                check(c);
            }
        }
        check(&tree);
    }

    #[test]
    fn greedy_rule_gives_full_fanout_below_root() {
        // Every non-leaf node at height ≥ 2 must have witnesses for *all*
        // d−1 other choices: the greedy rule guarantees those bins carried
        // load ≥ height−1 ≥ 1 when the ball arrived.
        let h = history(1 << 10, 3, 4);
        let (bin, load) = deepest(&h);
        assert!(load >= 3, "need load ≥ 3 for an interior level, got {load}");
        let tree = build_witness_tree(&h, bin, load, 2).expect("exists");
        assert_eq!(
            tree.children.len(),
            2,
            "root at height {load} must witness both other choices"
        );
    }

    #[test]
    fn missing_height_returns_none() {
        let h = history(1 << 8, 3, 5);
        let (bin, load) = deepest(&h);
        assert!(build_witness_tree(&h, bin, load + 1, 3).is_none());
    }

    #[test]
    fn tree_size_and_balls_agree() {
        let h = history(1 << 9, 3, 6);
        let (bin, load) = deepest(&h);
        let tree = build_witness_tree(&h, bin, load, load).expect("exists");
        assert_eq!(tree.size() as usize, tree.balls().len());
        assert!(tree.size() >= 1);
    }
}
