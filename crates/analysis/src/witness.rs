//! Witness-tree leaf activation (Section 2.2).
//!
//! Vöcking's witness-tree argument needs: "a leaf ball whose d choices all
//! have load ≥ 3" happens with probability ≤ 3^-d. With independent
//! choices that is immediate (at most n/3 bins can have load ≥ 3). The
//! paper's Section 2.2 observes that under double hashing the *placement*
//! of the loaded bins matters: if the loaded third is contiguous, the
//! fraction of (f, g) pairs landing entirely inside it is Θ(1/d²), far
//! above 3^-d. This module computes the exact activation fraction for a
//! given load configuration by enumerating all (f, g) pairs, making that
//! discussion quantitative.

use ba_numtheory::gcd;

/// Exact fraction of double-hashing hash pairs `(f, g)` — `f ∈ [0, n)`,
/// `g ∈ [1, n)` coprime to `n` — whose `d` probes all land on bins marked
/// `true` in `loaded`.
///
/// Runs in `O(n·φ(n)·d)`; intended for `n` up to a few thousand.
///
/// # Panics
///
/// Panics if `loaded.is_empty()` or `d == 0` or `d > n`.
pub fn double_hash_activation_fraction(loaded: &[bool], d: usize) -> f64 {
    let n = loaded.len();
    assert!(n >= 2, "need at least two bins");
    assert!(d >= 1 && d <= n, "need 1 <= d <= n");
    let mut total = 0u64;
    let mut active = 0u64;
    for g in 1..n {
        if gcd(g as u64, n as u64) != 1 {
            continue;
        }
        for f in 0..n {
            total += 1;
            let mut h = f;
            let mut all = true;
            for _ in 0..d {
                if !loaded[h] {
                    all = false;
                    break;
                }
                h += g;
                if h >= n {
                    h -= n;
                }
            }
            if all {
                active += 1;
            }
        }
    }
    active as f64 / total as f64
}

/// The independent-choice reference value: if a `alpha` fraction of bins is
/// loaded and the `d` choices were uniform and independent, the activation
/// probability would be `alpha^d`.
pub fn independent_activation_fraction(loaded: &[bool], d: usize) -> f64 {
    let n = loaded.len() as f64;
    let alpha = loaded.iter().filter(|&&b| b).count() as f64 / n;
    alpha.powi(d as i32)
}

/// Builds the adversarial configuration from the paper's example: the first
/// `k` of `n` bins loaded (one contiguous run).
pub fn contiguous_loaded(n: usize, k: usize) -> Vec<bool> {
    assert!(k <= n, "cannot load more bins than exist");
    let mut v = vec![false; n];
    for slot in v.iter_mut().take(k) {
        *slot = true;
    }
    v
}

/// Builds a uniformly random configuration with `k` of `n` bins loaded,
/// deterministically from `seed`.
///
/// Randomness matters here: any *structured* placement (e.g. an arithmetic
/// progression) is itself a double-hashing probe orbit and would bias the
/// activation fraction — exactly the effect
/// [`double_hash_activation_fraction`] exists to expose.
pub fn scattered_loaded(n: usize, k: usize, seed: u64) -> Vec<bool> {
    assert!(k <= n, "cannot load more bins than exist");
    use ba_rng::{Rng64, Xoshiro256StarStar};
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut v = vec![false; n];
    let mut placed = 0;
    while placed < k {
        let pos = rng.gen_range(n as u64) as usize;
        if !v[pos] {
            v[pos] = true;
            placed += 1;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_adversary_beats_independent_bound() {
        // The paper's example: first n/3 bins loaded. Double hashing's
        // activation fraction is Θ(1/d²), while the independent value is
        // 3^-d ≈ 0.0123 for d = 4. At n = 512 the gap is pronounced.
        let n = 512;
        let d = 4;
        let loaded = contiguous_loaded(n, n / 3);
        let dh = double_hash_activation_fraction(&loaded, d);
        let indep = independent_activation_fraction(&loaded, d);
        assert!(
            dh > 2.0 * indep,
            "contiguous: double-hash {dh} should far exceed independent {indep}"
        );
        // And the paper's lower-bound intuition: at least ~(9(d+1)²)^-1.
        let paper_lower = 1.0 / (9.0 * ((d + 1) * (d + 1)) as f64);
        assert!(
            dh > paper_lower * 0.5,
            "dh {dh} vs paper bound {paper_lower}"
        );
    }

    #[test]
    fn scattered_configuration_matches_independent_closely() {
        // When the loaded bins are spread out, double hashing behaves like
        // independent choices (this is why the average case is fine).
        let n = 512;
        let d = 3;
        let loaded = scattered_loaded(n, n / 3, 7);
        let dh = double_hash_activation_fraction(&loaded, d);
        let indep = independent_activation_fraction(&loaded, d);
        assert!(
            (dh - indep).abs() / indep < 0.5,
            "scattered: double-hash {dh} vs independent {indep}"
        );
    }

    #[test]
    fn all_loaded_activates_everything() {
        let loaded = vec![true; 64];
        assert_eq!(double_hash_activation_fraction(&loaded, 3), 1.0);
        assert_eq!(independent_activation_fraction(&loaded, 3), 1.0);
    }

    #[test]
    fn none_loaded_activates_nothing() {
        let loaded = vec![false; 64];
        assert_eq!(double_hash_activation_fraction(&loaded, 3), 0.0);
        assert_eq!(independent_activation_fraction(&loaded, 3), 0.0);
    }

    #[test]
    fn d_one_equals_loaded_fraction() {
        let loaded = contiguous_loaded(100, 25);
        let dh = double_hash_activation_fraction(&loaded, 1);
        assert!((dh - 0.25).abs() < 1e-12, "marginals are uniform: {dh}");
    }

    #[test]
    fn builders_count_correctly() {
        assert_eq!(contiguous_loaded(10, 4).iter().filter(|&&b| b).count(), 4);
        assert_eq!(
            scattered_loaded(97, 30, 3).iter().filter(|&&b| b).count(),
            30
        );
    }

    #[test]
    #[should_panic(expected = "more bins")]
    fn contiguous_rejects_overfull() {
        contiguous_loaded(4, 5);
    }
}
