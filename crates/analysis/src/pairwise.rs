//! Empirical pairwise-uniformity measurement.
//!
//! The introduction of the paper isolates the property its whole analysis
//! needs: for a ball's choices `h_1..h_d`, every position is marginally
//! uniform and every ordered pair of positions is uniform over ordered
//! pairs of distinct bins. This module measures both deviations for any
//! scheme, so the harness can show double hashing has the property while,
//! e.g., [`ba_hash::ContiguousBlocks`] does not.

use ba_hash::ChoiceScheme;
use ba_rng::Rng64;

/// Measured deviations from pairwise uniformity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseReport {
    /// Number of samples drawn.
    pub samples: u64,
    /// Max over positions i and bins b of |P̂(h_i = b) − 1/n|.
    pub max_marginal_deviation: f64,
    /// Max over position pairs (i, j), i ≠ j, and bin pairs (b1 ≠ b2) of
    /// |P̂(h_i = b1, h_j = b2) − 1/(n(n−1))|.
    pub max_pair_deviation: f64,
    /// Fraction of samples where any two positions held the *same* bin
    /// (exactly zero for schemes choosing without replacement).
    pub collision_rate: f64,
}

impl PairwiseReport {
    /// The sampling-noise scale for pair cells: the standard deviation of a
    /// binomial estimate of a probability `p ≈ 1/(n(n−1))` over `samples`.
    pub fn pair_noise_scale(&self, n: u64) -> f64 {
        let p = 1.0 / (n as f64 * (n as f64 - 1.0));
        (p * (1.0 - p) / self.samples as f64).sqrt()
    }
}

/// Samples `samples` choice vectors from `scheme` and measures marginal and
/// pairwise deviations from uniformity.
///
/// Memory is `O(d² n²)`, so keep `n` modest (≤ a few hundred) — deviations
/// are properties of the scheme, not of `n`, and small `n` maximizes the
/// per-cell resolution for a given sample budget.
///
/// # Panics
///
/// Panics if `samples == 0` or the scheme has `d < 2`.
#[allow(clippy::needless_range_loop)] // (i, j) position pairs are symmetric index math
pub fn measure_pairwise<S: ChoiceScheme + ?Sized, R: Rng64>(
    scheme: &S,
    samples: u64,
    rng: &mut R,
) -> PairwiseReport {
    assert!(samples > 0, "need at least one sample");
    let n = scheme.n() as usize;
    let d = scheme.d();
    assert!(d >= 2, "pairwise measurement needs d >= 2");
    // marginals[i][b], pairs[(i,j)][b1 * n + b2] for i < j (we fold (j,i)
    // into the same table by recording both orders separately).
    let mut marginals = vec![vec![0u64; n]; d];
    let npairs = d * (d - 1);
    let mut pair_index = vec![vec![0usize; d]; d];
    {
        let mut idx = 0;
        for i in 0..d {
            for j in 0..d {
                if i != j {
                    pair_index[i][j] = idx;
                    idx += 1;
                }
            }
        }
    }
    let mut pairs = vec![vec![0u64; n * n]; npairs];
    let mut collisions = 0u64;
    let mut buf = vec![0u64; d];
    for _ in 0..samples {
        scheme.fill_choices(rng, &mut buf);
        let mut collided = false;
        for i in 0..d {
            marginals[i][buf[i] as usize] += 1;
            for j in 0..d {
                if i == j {
                    continue;
                }
                if buf[i] == buf[j] {
                    collided = true;
                }
                pairs[pair_index[i][j]][buf[i] as usize * n + buf[j] as usize] += 1;
            }
        }
        if collided {
            collisions += 1;
        }
    }
    let s = samples as f64;
    let uniform1 = 1.0 / n as f64;
    let mut max_marginal: f64 = 0.0;
    for row in &marginals {
        for &c in row {
            max_marginal = max_marginal.max((c as f64 / s - uniform1).abs());
        }
    }
    let uniform2 = 1.0 / (n as f64 * (n as f64 - 1.0));
    let mut max_pair: f64 = 0.0;
    for table in &pairs {
        for b1 in 0..n {
            for b2 in 0..n {
                if b1 == b2 {
                    continue;
                }
                let c = table[b1 * n + b2];
                max_pair = max_pair.max((c as f64 / s - uniform2).abs());
            }
        }
    }
    PairwiseReport {
        samples,
        max_marginal_deviation: max_marginal,
        max_pair_deviation: max_pair,
        collision_rate: collisions as f64 / s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_hash::{ContiguousBlocks, DoubleHashing, FullyRandom, Replacement};
    use ba_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn double_hashing_prime_n_is_pairwise_uniform() {
        // The intro's pairwise-uniformity property holds exactly when n is
        // prime: the stride is uniform over all of [1, n), so the ordered
        // pair (h_i, h_j) is uniform over ordered pairs of distinct bins.
        let n = 17u64;
        let scheme = DoubleHashing::new(n, 3);
        let samples = 2_000_000;
        let report = measure_pairwise(&scheme, samples, &mut rng(1));
        let noise = report.pair_noise_scale(n);
        assert!(
            report.max_pair_deviation < 6.0 * noise,
            "pair deviation {} vs noise {noise}",
            report.max_pair_deviation
        );
        assert!(report.max_marginal_deviation < 0.002);
        assert_eq!(report.collision_rate, 0.0, "coprime stride never collides");
    }

    #[test]
    fn double_hashing_power_of_two_has_parity_structure() {
        // For n = 2^k the stride is odd, so h_j − h_i ≡ (j−i)·g is an odd
        // multiple of (j−i): pairs at even offsets from each other are
        // impossible for adjacent positions, and position pair (0, 2) only
        // reaches differences ≡ 2 (mod 4), etc. Strict pairwise uniformity
        // fails; the marginals stay perfectly uniform. (The paper's tables
        // use power-of-two n; its *fluid-limit* argument never needs the
        // exact pairwise property — only near-uniform pair hit rates, which
        // footnote 5 handles via φ(n).)
        let n = 16u64;
        let scheme = DoubleHashing::new(n, 3);
        let report = measure_pairwise(&scheme, 500_000, &mut rng(5));
        let uniform2 = 1.0 / (n as f64 * (n as f64 - 1.0));
        assert!(
            report.max_pair_deviation > 2.0 * uniform2,
            "expected structural nulls: deviation {} vs uniform {uniform2}",
            report.max_pair_deviation
        );
        assert!(report.max_marginal_deviation < 0.002);
        assert_eq!(report.collision_rate, 0.0);
    }

    #[test]
    fn fully_random_without_replacement_pairwise_uniform() {
        let n = 16u64;
        let scheme = FullyRandom::new(n, 3, Replacement::Without);
        let report = measure_pairwise(&scheme, 2_000_000, &mut rng(2));
        let noise = report.pair_noise_scale(n);
        assert!(report.max_pair_deviation < 6.0 * noise);
        assert_eq!(report.collision_rate, 0.0);
    }

    #[test]
    fn with_replacement_has_collisions() {
        let n = 8u64;
        let scheme = FullyRandom::new(n, 3, Replacement::With);
        let report = measure_pairwise(&scheme, 100_000, &mut rng(3));
        // P(some pair collides) = 1 − (7/8)(6/8) ≈ 0.344.
        assert!(
            (report.collision_rate - 0.344).abs() < 0.01,
            "collision rate {}",
            report.collision_rate
        );
    }

    #[test]
    fn blocks_scheme_is_not_pairwise_uniform() {
        // Within a block, h_2 = h_1 + 1 deterministically: the pair
        // distribution is wildly non-uniform. The report must flag it.
        let n = 16u64;
        let scheme = ContiguousBlocks::new(n, 4);
        let report = measure_pairwise(&scheme, 200_000, &mut rng(4));
        let noise = report.pair_noise_scale(n);
        assert!(
            report.max_pair_deviation > 50.0 * noise,
            "blocks should fail pairwise uniformity: dev {} noise {noise}",
            report.max_pair_deviation
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let scheme = DoubleHashing::new(8, 2);
        measure_pairwise(&scheme, 0, &mut rng(0));
    }
}
