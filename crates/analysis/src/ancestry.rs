//! Ancestry lists (Lemmas 5–7).
//!
//! The fluid-limit proof hinges on the *ancestry list* of a bin `b` at time
//! `t`: the balls that chose `b` before `t`, plus recursively the balls
//! that chose any of *their* bins before *their* times. The two facts the
//! proof needs — sizes are `O(log n)` and the lists of a ball's `d` choices
//! are disjoint whp — are exactly what this module measures on real runs.

use ba_core::TieBreak;
use ba_hash::ChoiceScheme;
use ba_rng::Rng64;
use std::collections::HashSet;

/// A recorded run of a balanced-allocation process: every ball's choices in
/// arrival order, plus a per-bin index of choosing balls.
#[derive(Debug, Clone)]
pub struct History {
    n: u64,
    d: usize,
    /// Ball `i`'s d choices, flattened (`choices[i*d .. (i+1)*d]`).
    choices: Vec<u64>,
    /// For each bin, the balls that listed it among their choices, in time
    /// order.
    per_bin: Vec<Vec<u32>>,
    /// For each bin, the balls actually placed there, in time order.
    placed_per_bin: Vec<Vec<u32>>,
}

impl History {
    /// Runs `m` balls of the standard least-loaded process under `scheme`,
    /// recording every ball's choices.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds `u32::MAX` (ball ids are 32-bit).
    pub fn record<S: ChoiceScheme + ?Sized, R: Rng64>(scheme: &S, m: u64, rng: &mut R) -> Self {
        assert!(m <= u32::MAX as u64, "ball ids are 32-bit");
        let n = scheme.n();
        let d = scheme.d();
        let mut alloc = ba_core::Allocation::new(n);
        let mut choices = Vec::with_capacity((m as usize) * d);
        let mut per_bin: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        let mut placed_per_bin: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        let mut buf = vec![0u64; d];
        for ball in 0..m {
            scheme.fill_choices(rng, &mut buf);
            let placed = alloc.place(&buf, TieBreak::Random, rng);
            placed_per_bin[placed as usize].push(ball as u32);
            for &c in &buf {
                per_bin[c as usize].push(ball as u32);
            }
            choices.extend_from_slice(&buf);
        }
        Self {
            n,
            d,
            choices,
            per_bin,
            placed_per_bin,
        }
    }

    /// The number of bins.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The number of choices per ball.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The number of recorded balls.
    pub fn balls(&self) -> u64 {
        (self.choices.len() / self.d) as u64
    }

    /// The balls placed into `bin`, in arrival order.
    pub fn balls_placed_in(&self, bin: u64) -> impl Iterator<Item = u32> + '_ {
        self.placed_per_bin[bin as usize].iter().copied()
    }

    /// The choices of ball `i`.
    pub fn ball_choices(&self, ball: u32) -> &[u64] {
        let d = self.d;
        &self.choices[ball as usize * d..(ball as usize + 1) * d]
    }

    /// The set of bins in the ancestry list of `bin` considering only balls
    /// arriving strictly before `before`. The queried bin itself is
    /// included (matching the lemma's `B_0 = 1` convention).
    pub fn ancestry_bins(&self, bin: u64, before: u32) -> HashSet<u64> {
        let mut bins: HashSet<u64> = HashSet::new();
        let mut visited_balls: HashSet<u32> = HashSet::new();
        let mut stack: Vec<(u64, u32)> = vec![(bin, before)];
        bins.insert(bin);
        while let Some((b, t)) = stack.pop() {
            // Balls that chose b strictly before t (per_bin is time-sorted).
            let list = &self.per_bin[b as usize];
            let cut = list.partition_point(|&z| z < t);
            for &z in &list[..cut] {
                if !visited_balls.insert(z) {
                    continue;
                }
                for &b2 in self.ball_choices(z) {
                    bins.insert(b2);
                    stack.push((b2, z));
                }
            }
        }
        bins
    }

    /// Sizes (in bins) of the ancestry lists of all `n` bins at the end of
    /// the run.
    pub fn ancestry_sizes(&self) -> Vec<usize> {
        let end = self.balls() as u32;
        (0..self.n)
            .map(|b| self.ancestry_bins(b, end).len())
            .collect()
    }

    /// For each ball in `sample` (ids), whether the ancestry lists of its
    /// `d` choices — evaluated just before the ball arrived, with the
    /// queried bins themselves excluded from the overlap test only if they
    /// differ — are pairwise disjoint. Returns the fraction that are
    /// disjoint (Lemma 7 says this tends to 1).
    pub fn disjointness_rate(&self, sample: &[u32]) -> f64 {
        if sample.is_empty() {
            return 1.0;
        }
        let mut disjoint = 0usize;
        for &ball in sample {
            let choices = self.ball_choices(ball).to_vec();
            let lists: Vec<HashSet<u64>> = choices
                .iter()
                .map(|&b| self.ancestry_bins(b, ball))
                .collect();
            let mut ok = true;
            'outer: for i in 0..lists.len() {
                for j in i + 1..lists.len() {
                    if lists[i].intersection(&lists[j]).next().is_some() {
                        ok = false;
                        break 'outer;
                    }
                }
            }
            if ok {
                disjoint += 1;
            }
        }
        disjoint as f64 / sample.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_hash::DoubleHashing;
    use ba_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn small_history(seed: u64) -> History {
        History::record(&DoubleHashing::new(64, 3), 64, &mut rng(seed))
    }

    #[test]
    fn record_shapes() {
        let h = small_history(1);
        assert_eq!(h.n(), 64);
        assert_eq!(h.d(), 3);
        assert_eq!(h.balls(), 64);
        assert_eq!(h.ball_choices(0).len(), 3);
    }

    #[test]
    fn ancestry_contains_self() {
        let h = small_history(2);
        for bin in [0u64, 5, 63] {
            assert!(h.ancestry_bins(bin, 0).contains(&bin));
            assert_eq!(h.ancestry_bins(bin, 0).len(), 1, "time 0 = just self");
        }
    }

    #[test]
    fn ancestry_grows_with_time() {
        let h = small_history(3);
        let end = h.balls() as u32;
        for bin in 0..8u64 {
            let early = h.ancestry_bins(bin, end / 4).len();
            let late = h.ancestry_bins(bin, end).len();
            assert!(late >= early, "bin {bin}: {late} < {early}");
        }
    }

    #[test]
    fn ancestry_includes_direct_choosers() {
        let h = small_history(4);
        // Ball 0's bins each include all of ball 0's other bins in their
        // ancestry at any time after 0.
        let c = h.ball_choices(0).to_vec();
        let anc = h.ancestry_bins(c[0], 1);
        for &b in &c {
            assert!(
                anc.contains(&b),
                "ancestry of {} missing {b}: {anc:?}",
                c[0]
            );
        }
    }

    #[test]
    fn ancestry_sizes_bounded_by_lemma_scale() {
        // Lemma 6: sizes are O(log n) whp, with the constant growing like
        // e^{T·d(d−1)}. For d = 2, T = 1 that constant is e^2 ≈ 7.4, so at
        // n = 2^10 the mean should be a small constant and the max far
        // below n. (d = 3 already has constant e^6 ≈ 400 — comparable to n
        // at this scale, which is why the lemma is asymptotic.)
        let n = 1u64 << 10;
        let h = History::record(&DoubleHashing::new(n, 2), n, &mut rng(5));
        let sizes = h.ancestry_sizes();
        let max = *sizes.iter().max().unwrap();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            max < (n as usize) / 4,
            "max ancestry size {max} suspiciously large vs n={n}"
        );
        assert!(mean < 64.0, "mean ancestry size {mean}");
    }

    #[test]
    fn ancestry_sizes_grow_with_d() {
        // The branching constant e^{T·d(d−1)} is increasing in d.
        let n = 1u64 << 9;
        let mean_size = |d: usize, seed: u64| {
            let h = History::record(&DoubleHashing::new(n, d), n, &mut rng(seed));
            let sizes = h.ancestry_sizes();
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        let m2 = mean_size(2, 8);
        let m3 = mean_size(3, 9);
        assert!(m3 > m2, "d=3 mean {m3} should exceed d=2 mean {m2}");
    }

    #[test]
    fn disjointness_rate_tends_to_one() {
        // Lemma 7: overlap probability η = O(d² log² n / n) → 0. Check the
        // disjointness rate improves with n and is high at n = 2^12, d = 2.
        let rate_at = |n: u64, seed: u64| {
            let h = History::record(&DoubleHashing::new(n, 2), n, &mut rng(seed));
            let sample: Vec<u32> = (0..h.balls() as u32)
                .step_by((h.balls() / 128).max(1) as usize)
                .collect();
            h.disjointness_rate(&sample)
        };
        let small = rate_at(1 << 8, 6);
        let large = rate_at(1 << 12, 7);
        assert!(large > 0.85, "disjointness rate at n=2^12: {large}");
        assert!(
            large >= small - 0.05,
            "rate should improve with n: {small} -> {large}"
        );
    }

    #[test]
    fn disjointness_empty_sample_is_one() {
        let h = small_history(7);
        assert_eq!(h.disjointness_rate(&[]), 1.0);
    }
}
