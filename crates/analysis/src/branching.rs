//! Branching processes (Lemma 6's domination argument).

use ba_rng::Rng64;

/// A Galton–Watson branching process with a finite offspring distribution.
#[derive(Debug, Clone)]
pub struct GaltonWatson {
    /// `pmf[k]` = probability an individual leaves `k` offspring.
    pmf: Vec<f64>,
}

impl GaltonWatson {
    /// Creates the process from an offspring pmf.
    ///
    /// # Panics
    ///
    /// Panics unless the pmf is non-empty, non-negative, and sums to 1
    /// within 1e-9.
    pub fn new(pmf: Vec<f64>) -> Self {
        assert!(!pmf.is_empty(), "offspring pmf must be non-empty");
        assert!(pmf.iter().all(|&p| p >= 0.0), "probabilities must be >= 0");
        let total: f64 = pmf.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "offspring pmf must sum to 1, got {total}"
        );
        Self { pmf }
    }

    /// The mean offspring count ρ.
    pub fn mean_offspring(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(k, &p)| k as f64 * p)
            .sum()
    }

    /// Samples one offspring count.
    fn sample_offspring<R: Rng64>(&self, rng: &mut R) -> usize {
        let mut u = rng.gen_f64();
        for (k, &p) in self.pmf.iter().enumerate() {
            if u < p {
                return k;
            }
            u -= p;
        }
        self.pmf.len() - 1
    }

    /// Simulates `generations` generations from one ancestor; returns the
    /// population size per generation (index 0 = 1 ancestor). Stops early
    /// if the population dies out or exceeds `cap`.
    pub fn simulate<R: Rng64>(&self, generations: usize, cap: u64, rng: &mut R) -> Vec<u64> {
        let mut sizes = vec![1u64];
        for _ in 0..generations {
            let current = *sizes.last().expect("non-empty");
            if current == 0 || current > cap {
                break;
            }
            let mut next = 0u64;
            for _ in 0..current {
                next += self.sample_offspring(rng) as u64;
            }
            sizes.push(next);
        }
        sizes
    }

    /// Estimates the extinction probability from `trials` simulations of up
    /// to `generations` generations (population 0 = extinct; hitting `cap`
    /// counts as survival).
    pub fn extinction_probability<R: Rng64>(
        &self,
        trials: u64,
        generations: usize,
        cap: u64,
        rng: &mut R,
    ) -> f64 {
        let mut extinct = 0u64;
        for _ in 0..trials {
            let sizes = self.simulate(generations, cap, rng);
            if *sizes.last().expect("non-empty") == 0 {
                extinct += 1;
            }
        }
        extinct as f64 / trials as f64
    }
}

/// Simulates the *exact* ancestry-list growth process from Lemma 6: start
/// with `B = 1` bin; for each of the `t_n = ⌈T·n⌉` balls (walking backward
/// in time), with probability `min(B·d/n, 1)` the ball hits the list and
/// adds `d − 1` bins. Returns the final list size.
///
/// Lemma 6 dominates this by a Galton–Watson process and concludes
/// `E[B_{Tn}] ≤ e^{T·d(d−1)}` — a constant — with exponential tails.
pub fn ancestry_growth<R: Rng64>(n: u64, t_scale: f64, d: u32, rng: &mut R) -> u64 {
    assert!(n > 0, "need at least one bin");
    assert!(t_scale >= 0.0, "time scale must be non-negative");
    assert!(d >= 2, "ancestry growth needs d >= 2");
    let steps = (t_scale * n as f64).ceil() as u64;
    let mut b = 1u64;
    for _ in 0..steps {
        let p = (b as f64 * d as f64 / n as f64).min(1.0);
        if rng.gen_bool(p) {
            b += (d - 1) as u64;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn mean_offspring_computed() {
        let gw = GaltonWatson::new(vec![0.25, 0.0, 0.75]);
        assert!((gw.mean_offspring() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn pmf_must_normalize() {
        GaltonWatson::new(vec![0.5, 0.4]);
    }

    #[test]
    fn subcritical_process_dies() {
        // ρ = 0.5 < 1: extinction is certain.
        let gw = GaltonWatson::new(vec![0.5, 0.5]);
        let mut r = rng(1);
        let p = gw.extinction_probability(2000, 200, 1 << 20, &mut r);
        assert!(p > 0.999, "subcritical extinction prob {p}");
    }

    #[test]
    fn supercritical_extinction_probability() {
        // Offspring: 0 w.p. 1/4, 2 w.p. 3/4 → extinction prob is the
        // smallest root of s = 1/4 + 3/4 s², i.e. s = 1/3.
        let gw = GaltonWatson::new(vec![0.25, 0.0, 0.75]);
        let mut r = rng(2);
        let p = gw.extinction_probability(20_000, 60, 1 << 16, &mut r);
        assert!((p - 1.0 / 3.0).abs() < 0.02, "extinction prob {p}");
    }

    #[test]
    fn critical_process_mean_stays_one() {
        // ρ = 1: E[Z_g] = 1 for every generation.
        let gw = GaltonWatson::new(vec![0.5, 0.0, 0.5]);
        let mut r = rng(3);
        let g = 8;
        let total: u64 = (0..30_000)
            .map(|_| *gw.simulate(g, 1 << 20, &mut r).last().unwrap())
            .sum();
        let mean = total as f64 / 30_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean generation-{g} size {mean}");
    }

    #[test]
    fn simulate_stops_at_extinction() {
        let gw = GaltonWatson::new(vec![1.0]);
        let sizes = gw.simulate(100, 1 << 20, &mut rng(4));
        assert_eq!(sizes, vec![1, 0], "all-die pmf must stop after one step");
    }

    #[test]
    fn ancestry_growth_mean_bounded_by_lemma() {
        // Lemma 6: E[B_{Tn}] ≤ e^{T·d(d−1)}. T = 1, d = 3 → bound e^6 ≈ 403.
        // The actual mean is much smaller; check both the bound and sanity.
        let n = 1u64 << 12;
        let mut r = rng(5);
        let trials = 2000;
        let total: u64 = (0..trials)
            .map(|_| ancestry_growth(n, 1.0, 3, &mut r))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!(mean < 403.0, "mean {mean} violates the Lemma 6 bound");
        assert!(mean > 1.0, "growth never happened?");
    }

    #[test]
    fn ancestry_growth_scales_with_d() {
        let n = 1u64 << 12;
        let mut r = rng(6);
        let mean = |d: u32, r: &mut Xoshiro256StarStar| {
            let trials = 1500;
            (0..trials)
                .map(|_| ancestry_growth(n, 1.0, d, r))
                .sum::<u64>() as f64
                / trials as f64
        };
        let m2 = mean(2, &mut r);
        let m4 = mean(4, &mut r);
        assert!(m4 > m2, "d=4 mean {m4} should exceed d=2 mean {m2}");
    }

    #[test]
    fn ancestry_growth_zero_time() {
        assert_eq!(ancestry_growth(100, 0.0, 3, &mut rng(7)), 1);
    }
}
