//! The majorization coupling of Theorem 2.

use ba_rng::Rng64;

/// Returns whether sorted-descending `x` majorizes sorted-descending `y`:
/// equal sums and every prefix sum of `x` at least that of `y`.
///
/// # Panics
///
/// Panics if the vectors differ in length or are not sorted descending.
pub fn majorizes(x: &[u32], y: &[u32]) -> bool {
    assert_eq!(x.len(), y.len(), "vectors must have equal length");
    debug_assert!(x.windows(2).all(|w| w[0] >= w[1]), "x must be sorted desc");
    debug_assert!(y.windows(2).all(|w| w[0] >= w[1]), "y must be sorted desc");
    let mut px = 0u64;
    let mut py = 0u64;
    for (&a, &b) in x.iter().zip(y) {
        px += a as u64;
        py += b as u64;
        if px < py {
            return false;
        }
    }
    px == py
}

/// A load vector maintained in sorted-descending order with an O(1)-ish
/// "increment the element at sorted position p" operation.
///
/// Incrementing position `p` keeps sortedness by instead incrementing the
/// *first* position holding the same value (the classic trick from
/// majorization proofs: the incremented coordinate slides to the front of
/// its value class).
#[derive(Debug, Clone)]
pub struct SortedLoads {
    loads: Vec<u32>,
}

impl SortedLoads {
    /// Creates `n` empty bins.
    pub fn new(n: usize) -> Self {
        Self { loads: vec![0; n] }
    }

    /// The loads, sorted descending.
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Increments the load at sorted position `p`, preserving sortedness.
    /// Returns the position actually incremented.
    ///
    /// # Panics
    ///
    /// Panics if `p >= n`.
    pub fn increment(&mut self, p: usize) -> usize {
        let v = self.loads[p];
        // Find the first index with value v (binary search on the
        // descending vector: partition point where load > v).
        let q = self.loads.partition_point(|&x| x > v);
        debug_assert!(self.loads[q] == v && q <= p);
        self.loads[q] += 1;
        q
    }

    /// Total number of balls.
    pub fn total(&self) -> u64 {
        self.loads.iter().map(|&x| x as u64).sum()
    }

    /// Maximum load.
    pub fn max(&self) -> u32 {
        self.loads.first().copied().unwrap_or(0)
    }
}

/// Result of one coupled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CouplingOutcome {
    /// Whether ~x(t) majorized ~y(t) after every ball.
    pub majorized_throughout: bool,
    /// Final maximum load of the 2-random-choice process X.
    pub max_load_two_choice: u32,
    /// Final maximum load of the d-choice double-hashing process Y.
    pub max_load_double: u32,
}

/// Runs the exact coupling from the proof of Theorem 2 for `m` balls over
/// `n` bins, and checks majorization after every placement.
///
/// Process X places each ball in the less loaded of the bins at two distinct
/// uniform *sorted positions* `a < b`; process Y receives the double-hashing
/// position sequence `a, b, 2b−a, 3b−2a, … (mod n)` (stride `b − a`) and
/// places the ball in the least loaded of those `d` positions. Because
/// position vectors are sorted descending, "least loaded, ties deepest"
/// is simply the largest position index.
///
/// # Panics
///
/// Panics if `d < 2` or `n < 2`.
pub fn run_coupled_processes<R: Rng64>(n: usize, m: u64, d: usize, rng: &mut R) -> CouplingOutcome {
    assert!(d >= 2, "coupling needs d >= 2");
    assert!(n >= 2, "need at least two bins");
    let mut x = SortedLoads::new(n);
    let mut y = SortedLoads::new(n);
    let mut majorized = true;
    let mut probes = vec![0usize; d];
    for _ in 0..m {
        // Two distinct sorted positions a < b.
        let (a, b) = {
            let a = rng.gen_range(n as u64) as usize;
            let mut b = rng.gen_range(n as u64 - 1) as usize;
            if b >= a {
                b += 1;
            }
            (a.min(b), a.max(b))
        };
        // X: the deeper position b is the (weakly) less-loaded bin.
        x.increment(b);
        // Y: arithmetic progression of positions with stride b - a.
        let stride = b - a;
        let mut pos = a;
        for slot in probes.iter_mut() {
            *slot = pos;
            pos = (pos + stride) % n;
        }
        // Least loaded, ties to the deepest sorted position = max index.
        let deepest = *probes.iter().max().expect("d >= 2");
        y.increment(deepest);
        if !majorizes(x.loads(), y.loads()) {
            majorized = false;
        }
    }
    CouplingOutcome {
        majorized_throughout: majorized,
        max_load_two_choice: x.max(),
        max_load_double: y.max(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    #[test]
    fn majorizes_basic_cases() {
        assert!(majorizes(&[3, 1, 0], &[2, 1, 1]));
        assert!(majorizes(&[2, 1, 1], &[2, 1, 1]));
        assert!(!majorizes(&[2, 1, 1], &[3, 1, 0]));
        // Unequal sums never majorize.
        assert!(!majorizes(&[3, 1, 1], &[2, 1, 1]));
        assert!(!majorizes(&[2, 1], &[2, 2]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn majorizes_rejects_length_mismatch() {
        majorizes(&[1, 0], &[1, 0, 0]);
    }

    #[test]
    fn sorted_loads_increment_keeps_order() {
        let mut s = SortedLoads::new(5);
        for _ in 0..20 {
            s.increment(4);
            assert!(
                s.loads().windows(2).all(|w| w[0] >= w[1]),
                "{:?}",
                s.loads()
            );
        }
        assert_eq!(s.total(), 20);
    }

    #[test]
    fn sorted_loads_increment_targets_value_class_head() {
        let mut s = SortedLoads::new(4);
        // loads [0,0,0,0]: incrementing position 3 must bump position 0.
        assert_eq!(s.increment(3), 0);
        assert_eq!(s.loads(), &[1, 0, 0, 0]);
        // loads [1,0,0,0]: incrementing position 2 bumps position 1.
        assert_eq!(s.increment(2), 1);
        assert_eq!(s.loads(), &[1, 1, 0, 0]);
        // incrementing position 0 bumps position 0 itself.
        assert_eq!(s.increment(0), 0);
        assert_eq!(s.loads(), &[2, 1, 0, 0]);
    }

    #[test]
    fn coupling_maintains_majorization() {
        // Theorem 2, checked step-by-step across several sizes and d.
        for (n, d, seed) in [(64usize, 3usize, 1u64), (128, 4, 2), (256, 5, 3)] {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let out = run_coupled_processes(n, n as u64, d, &mut rng);
            assert!(
                out.majorized_throughout,
                "majorization violated for n={n}, d={d}"
            );
            // Corollary: the coupled Y max load never exceeds X's.
            assert!(out.max_load_double <= out.max_load_two_choice);
        }
    }

    #[test]
    fn coupling_heavy_load() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let out = run_coupled_processes(64, 64 * 8, 3, &mut rng);
        assert!(out.majorized_throughout);
        assert!(out.max_load_double <= out.max_load_two_choice);
        assert!(out.max_load_double >= 8, "mean load is 8");
    }

    #[test]
    fn ball_conservation_in_coupling() {
        let n = 32;
        let mut x = SortedLoads::new(n);
        let mut y = SortedLoads::new(n);
        // run_coupled_processes hides the internals; sanity check the
        // building block instead: equal increments conserve equal totals.
        for i in 0..100 {
            x.increment(i % n);
            y.increment((i * 7) % n);
        }
        assert_eq!(x.total(), y.total());
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn coupling_rejects_d1() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        run_coupled_processes(8, 8, 1, &mut rng);
    }
}
