//! Empirical validation of the paper's proof machinery.
//!
//! The theorems in "Balanced Allocations and Double Hashing" rest on four
//! mechanisms, each of which this crate makes directly observable:
//!
//! * [`majorization`] — the coupling of Theorem 2: a 2-random-choice
//!   process stochastically majorizes the d-choice double-hashing process.
//!   We run the *exact coupled pair* from the proof and check majorization
//!   holds at every step.
//! * [`ancestry`] — the ancestry lists of Lemmas 5–7: their size stays
//!   `O(log n)` and the lists of a ball's d choices are disjoint with
//!   probability `1 − O(d² log² n / n)`.
//! * [`branching`] — the dominating Galton–Watson process of Lemma 6,
//!   with `E[B_{Tn}] ≤ e^{T·d(d−1)}`.
//! * [`pairwise`] — the pairwise-uniformity property stated in the
//!   introduction (the only property of double hashing the fluid-limit
//!   argument needs), measured for any [`ba_hash::ChoiceScheme`].
//! * [`witness`] — the Section 2.2 observation: under adversarial load
//!   placement, the fraction of `(f, g)` pairs whose probes all land in
//!   loaded bins can far exceed the independent-choice value `α^d`.
//! * [`witness_tree`] — construction of the actual witness trees the
//!   Section 2.2 argument counts, from recorded histories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ancestry;
pub mod branching;
pub mod majorization;
pub mod pairwise;
pub mod witness;
pub mod witness_tree;
