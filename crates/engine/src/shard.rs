//! One shard: a bin table, its key index, and its choice source.

use crate::engine::{ChoiceMode, EngineConfig};
use crate::index::KeyIndex;
use crate::metrics::OpObservations;
use crate::op::{BatchSummary, Op};
use crate::rounds::{Proposal, Winner};
use ba_core::{Allocation, TieBreak};
use ba_hash::{ChoiceScheme, ChoiceSource};
use ba_rng::{AnyRng, SeedSequence};

/// Child index reserved for deriving a shard's keyed salt, domain-
/// separated from the shard's RNG stream (which uses the node itself).
const SALT_CHILD: u64 = 0x5A17;

/// Keys per `choices_for_batch` call on the batched keyed insert path:
/// large enough to amortize dispatch, small enough that the choice
/// matrix stays in L1.
const INSERT_RUN_CHUNK: usize = 128;

/// Runs shorter than this stay on the per-op insert path: gathering
/// keys, sizing the matrix, and dispatching the batch kernel cost more
/// than the kernel saves on a handful of keys. Lookup- or delete-heavy
/// streams break runs constantly, so without this floor batching would
/// tax exactly the workloads it cannot help.
const INSERT_RUN_MIN: usize = 16;

/// A single-threaded slice of the engine's keyspace.
///
/// The shard owns an [`Allocation`] over its scheme's bins, a
/// [`KeyIndex`] from key to the bins currently holding that key's balls,
/// and a deterministic RNG stream derived from
/// `SeedSequence::new(seed).child(shard_id)` in the configured
/// [`ba_rng::RngKind`].
///
/// Choice vectors come from the configured [`ChoiceMode`]:
///
/// * **Stream** — each insert draws fresh choices from the shard's RNG
///   stream (the paper's process model); only inserts consume randomness,
///   exactly like `ba_core::run_process`, so an insert-only shard is
///   bit-identical to a single-threaded `run_process` over the same
///   stream.
/// * **Keyed** — choices derive from `hash(key, shard_salt)` (the
///   hash-table model): deleting and re-inserting a key replays its exact
///   `f + k·g` probe sequence, and the RNG stream is consumed only by
///   random tie-breaks. Because keyed choices consume no stream
///   randomness, [`Shard::apply`] generates them in batches
///   ([`ChoiceScheme::choices_for_batch`]) across each run of consecutive
///   inserts — bit-identical to the per-op path, just faster.
///
/// Either way the determinism contract mirrors `ba_core::runner`: a
/// shard's final state is a pure function of `(config, shard_id, ordered
/// op sequence)` — never of which thread ran it or what other shards did.
#[derive(Debug, Clone)]
pub struct Shard<S> {
    id: usize,
    scheme: S,
    alloc: Allocation,
    tie: TieBreak,
    rng: AnyRng,
    mode: ChoiceMode,
    salt: u64,
    /// key -> stack of bins holding that key's balls (LIFO delete order).
    index: KeyIndex,
    choices: Vec<u64>,
    /// Scratch for the batched keyed insert path: the current run's keys.
    batch_keys: Vec<u64>,
    /// Scratch for the batched keyed insert path: the choice matrix
    /// (row i = choices for the run's i-th key).
    batch_choices: Vec<u64>,
    lifetime: BatchSummary,
    observed: OpObservations,
}

impl<S: ChoiceScheme> Shard<S> {
    /// Creates an empty shard with its own RNG stream and keyed salt,
    /// both derived from `config.seed` and `id`.
    pub fn new(id: usize, scheme: S, config: &EngineConfig) -> Self {
        let alloc = Allocation::new(scheme.n());
        let d = scheme.d();
        let node = SeedSequence::new(config.seed).child(id as u64);
        let salt = node.child(SALT_CHILD).derive_u64();
        Self {
            id,
            scheme,
            alloc,
            tie: config.tie,
            rng: node.any_rng(config.rng),
            mode: config.mode,
            salt,
            // Seeding the index's probe order from the salt keeps its
            // internals deterministic per shard; enumeration always goes
            // through the sorted surface regardless.
            index: KeyIndex::with_seed(salt),
            choices: vec![0u64; d],
            batch_keys: Vec::new(),
            batch_choices: Vec::new(),
            lifetime: BatchSummary::default(),
            observed: OpObservations::default(),
        }
    }

    /// This shard's position within the engine.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's bin table.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// The shard's choice scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The shard's choice mode.
    pub fn mode(&self) -> ChoiceMode {
        self.mode
    }

    /// The salt mixed into keyed choice derivation for this shard.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// The [`ChoiceSource`] this shard feeds to the allocation core.
    pub fn source(&self) -> ChoiceSource {
        match self.mode {
            ChoiceMode::Stream => ChoiceSource::Stream,
            ChoiceMode::Keyed => ChoiceSource::Keyed { salt: self.salt },
        }
    }

    /// The probe sequence `key` would use in keyed mode — a pure function
    /// of `(key, shard salt)`, independent of the shard's current state.
    pub fn probes_for(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.probes_into(key, &mut out);
        out
    }

    /// Like [`Shard::probes_for`], but writing into a caller-owned buffer
    /// (resized to `d`) so loops over many keys — cluster rebalance
    /// drains, placement annotation — reuse one allocation.
    pub fn probes_into(&self, key: u64, out: &mut Vec<u64>) {
        out.resize(self.scheme.d(), 0);
        self.scheme.choices_for(key, self.salt, out);
    }

    /// The bins currently holding balls for `key`, oldest first.
    pub fn bins_of(&self, key: u64) -> Option<&[u64]> {
        self.index.get(key)
    }

    /// Number of distinct keys with at least one live ball.
    pub fn live_keys(&self) -> usize {
        self.index.len()
    }

    /// Every key with at least one live ball, sorted ascending. The sort
    /// makes the enumeration deterministic (the index is a hash table),
    /// so callers that replay the result — cluster rebalance drains, the
    /// placement map — are reproducible run to run.
    pub fn live_key_ids(&self) -> Vec<u64> {
        self.index.sorted_keys()
    }

    /// Operation counters accumulated over the shard's lifetime.
    pub fn lifetime_summary(&self) -> &BatchSummary {
        &self.lifetime
    }

    /// Per-op-kind load/probe observations over the shard's lifetime.
    pub fn observations(&self) -> &OpObservations {
        &self.observed
    }

    /// Places an already-derived choice vector for `key`: tie-break,
    /// record observations, index the ball. Shared by the per-op and
    /// batched insert paths so both produce identical state and stats.
    #[inline]
    fn place_and_record(&mut self, key: u64, choices: &[u64]) -> u64 {
        // FirstOffered traffic skips the `dyn Rng64` argument entirely
        // (monomorphized fast path); the general path consumes the RNG
        // exactly as before for random tie-breaks.
        let (bin, probe) = match self.tie {
            TieBreak::FirstOffered => self.alloc.place_first_offered(choices),
            tie => self.alloc.place_indexed(choices, tie, &mut self.rng),
        };
        self.observed.insert_load.record(self.alloc.load(bin));
        self.observed.insert_probe.record(probe);
        self.index.push(key, bin);
        self.lifetime.inserts += 1;
        bin
    }

    /// Places one ball for `key`; returns the chosen bin.
    pub fn insert(&mut self, key: u64) -> u64 {
        let mut choices = std::mem::take(&mut self.choices);
        self.source()
            .fill(&self.scheme, key, &mut self.rng, &mut choices);
        let bin = self.place_and_record(key, &choices);
        self.choices = choices;
        bin
    }

    /// Places a run of consecutive keyed inserts through the batched
    /// choice kernel: one [`ChoiceScheme::choices_for_batch`] dispatch
    /// per [`INSERT_RUN_CHUNK`] keys, falling back to per-op inserts
    /// for runs under [`INSERT_RUN_MIN`]. Sound only in keyed mode,
    /// where choice derivation consumes no RNG — placements, tie-break
    /// draws, and observation order are bit-identical to per-op inserts.
    fn insert_run_keyed(&mut self, from: &[Op]) -> usize {
        let run = from
            .iter()
            .take_while(|op| matches!(op, Op::Insert(_)))
            .count();
        if run < INSERT_RUN_MIN {
            for op in &from[..run] {
                if let Op::Insert(key) = *op {
                    self.insert(key);
                }
            }
            return run;
        }
        let mut keys = std::mem::take(&mut self.batch_keys);
        keys.clear();
        keys.extend(from[..run].iter().map(|op| match *op {
            Op::Insert(key) => key,
            _ => unreachable!("counted as part of the insert run above"),
        }));
        let d = self.scheme.d();
        let mut matrix = std::mem::take(&mut self.batch_choices);
        for chunk in keys.chunks(INSERT_RUN_CHUNK) {
            matrix.resize(chunk.len() * d, 0);
            self.scheme.choices_for_batch(chunk, self.salt, &mut matrix);
            for (i, &key) in chunk.iter().enumerate() {
                self.place_and_record(key, &matrix[i * d..(i + 1) * d]);
            }
        }
        let run = keys.len();
        self.batch_keys = keys;
        self.batch_choices = matrix;
        run
    }

    /// Removes the most recent ball for `key`; returns its bin if present.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        match self.index.pop(key) {
            Some(bin) => {
                self.observed.delete_load.record(self.alloc.load(bin));
                self.alloc.remove(bin);
                self.lifetime.deletes += 1;
                Some(bin)
            }
            None => {
                self.lifetime.missed_deletes += 1;
                None
            }
        }
    }

    /// Whether any ball for `key` is live.
    pub fn lookup(&mut self, key: u64) -> bool {
        self.lifetime.lookups += 1;
        let depth = self.index.depth(key);
        self.observed.lookup_depth.record(depth as u32);
        let hit = depth > 0;
        if hit {
            self.lifetime.hits += 1;
        }
        hit
    }

    /// Resolves one synchronized round over this shard's bins (rounds
    /// ingestion, see [`crate::rounds`]): proposals sort by
    /// `(bin, tie, ball)` — never arrival order — and each bin accepts
    /// while its load sits below `threshold`. Acceptance consumes no
    /// RNG, so the shard's stream stays untouched. Winners are placed
    /// immediately and reported back shard-locally; the caller owns the
    /// global key index.
    pub(crate) fn rounds_resolve(
        &mut self,
        mut proposals: Vec<Proposal>,
        threshold: u32,
    ) -> Vec<Winner> {
        proposals.sort_unstable_by_key(|p| (p.bin, p.tie, p.ball));
        let mut winners = Vec::new();
        for p in &proposals {
            if self.alloc.load(p.bin) < threshold {
                self.rounds_insert(p.bin, p.probe);
                winners.push(Winner {
                    ball: p.ball,
                    bin: p.bin,
                });
            }
        }
        winners
    }

    /// Places one round-resolved ball into `bin`, recording the same
    /// insert observations sequential ingestion would. A single offered
    /// choice placed first-offered consumes no randomness.
    /// The shard's key index is deliberately not touched — rounds mode
    /// keeps a global index (bins are global there, not shard-local).
    fn rounds_insert(&mut self, bin: u64, probe: u8) {
        self.alloc.place_first_offered(&[bin]);
        self.observed.insert_load.record(self.alloc.load(bin));
        self.observed.insert_probe.record(u32::from(probe));
        self.lifetime.inserts += 1;
    }

    /// Removes one round-tracked ball from `bin` (rounds ingestion; the
    /// caller resolved the key's global index to this shard-local bin).
    pub(crate) fn rounds_delete(&mut self, bin: u64) {
        self.observed.delete_load.record(self.alloc.load(bin));
        self.alloc.remove(bin);
        self.lifetime.deletes += 1;
    }

    /// Counts a delete that found no live ball (rounds ingestion).
    pub(crate) fn rounds_missed_delete(&mut self) {
        self.lifetime.missed_deletes += 1;
    }

    /// Records one lookup observing `depth` live balls (rounds
    /// ingestion; the caller resolved depth against the global index).
    pub(crate) fn rounds_lookup(&mut self, depth: u32) {
        self.lifetime.lookups += 1;
        self.observed.lookup_depth.record(depth);
        if depth > 0 {
            self.lifetime.hits += 1;
        }
    }

    /// Applies an ordered op sequence, returning this batch's summary.
    ///
    /// In keyed mode, runs of consecutive inserts route through the
    /// batched choice kernel (`Shard::insert_run_keyed`); stream mode
    /// keeps the strict per-op path, because pre-generating a run's
    /// stream choices would reorder RNG draws relative to interleaved
    /// random tie-breaks and change placements.
    pub fn apply(&mut self, ops: &[Op]) -> BatchSummary {
        let before = self.lifetime;
        if self.mode == ChoiceMode::Keyed {
            let mut i = 0;
            while i < ops.len() {
                match ops[i] {
                    Op::Insert(_) => i += self.insert_run_keyed(&ops[i..]),
                    Op::Delete(k) => {
                        self.delete(k);
                        i += 1;
                    }
                    Op::Lookup(k) => {
                        self.lookup(k);
                        i += 1;
                    }
                }
            }
        } else {
            for &op in ops {
                match op {
                    Op::Insert(k) => {
                        self.insert(k);
                    }
                    Op::Delete(k) => {
                        self.delete(k);
                    }
                    Op::Lookup(k) => {
                        self.lookup(k);
                    }
                }
            }
        }
        self.lifetime.diff(&before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ba_core::{run_process, run_process_keys};
    use ba_hash::DoubleHashing;
    use ba_rng::RngKind;

    fn config(seed: u64) -> EngineConfig {
        EngineConfig::new(1, 64, 3).seed(seed)
    }

    fn shard(seed: u64) -> Shard<DoubleHashing> {
        Shard::new(0, DoubleHashing::new(64, 3), &config(seed))
    }

    fn keyed_shard(seed: u64) -> Shard<DoubleHashing> {
        Shard::new(0, DoubleHashing::new(64, 3), &config(seed).keyed())
    }

    #[test]
    fn insert_then_delete_roundtrips() {
        let mut s = shard(1);
        let bin = s.insert(42);
        assert!(s.lookup(42));
        assert_eq!(s.allocation().balls(), 1);
        assert_eq!(s.delete(42), Some(bin));
        assert!(!s.lookup(42));
        assert_eq!(s.allocation().balls(), 0);
        assert_eq!(s.live_keys(), 0);
    }

    #[test]
    fn duplicate_inserts_stack_and_pop_lifo() {
        let mut s = shard(2);
        let b1 = s.insert(7);
        let b2 = s.insert(7);
        assert_eq!(s.allocation().balls(), 2);
        assert_eq!(s.live_keys(), 1);
        assert_eq!(s.delete(7), Some(b2));
        assert!(s.lookup(7), "one ball should remain");
        assert_eq!(s.delete(7), Some(b1));
        assert_eq!(s.delete(7), None);
    }

    #[test]
    fn missed_delete_counted_not_fatal() {
        let mut s = shard(3);
        assert_eq!(s.delete(999), None);
        assert_eq!(s.lifetime_summary().missed_deletes, 1);
        assert_eq!(s.allocation().balls(), 0);
    }

    #[test]
    fn insert_only_shard_matches_run_process() {
        // The determinism contract: a shard fed only inserts reproduces
        // ba_core::run_process bit-for-bit on the same derived stream.
        let seed = 99u64;
        let scheme = DoubleHashing::new(128, 3);
        let cfg = EngineConfig::new(8, 128, 3).seed(seed);
        let mut s = Shard::new(5, scheme.clone(), &cfg);
        for key in 0..200u64 {
            s.insert(key);
        }
        let mut rng = SeedSequence::new(seed).child(5).xoshiro();
        let reference = run_process(&scheme, 200, TieBreak::Random, &mut rng);
        assert_eq!(s.allocation().loads(), reference.loads());
        assert_eq!(s.allocation().max_load(), reference.max_load());
    }

    #[test]
    fn keyed_shard_matches_run_process_keys() {
        // The keyed twin of the contract: insert-only keyed traffic equals
        // run_process_keys over the same keys, salt, and tie-break stream.
        let seed = 17u64;
        let scheme = DoubleHashing::new(128, 3);
        let cfg = EngineConfig::new(8, 128, 3).seed(seed).keyed();
        let mut s = Shard::new(2, scheme.clone(), &cfg);
        let keys: Vec<u64> = (0..200u64).map(|k| k * 3 + 1).collect();
        for &key in &keys {
            s.insert(key);
        }
        let mut rng = SeedSequence::new(seed).child(2).xoshiro();
        let reference = run_process_keys(
            &scheme,
            ChoiceSource::Keyed { salt: s.salt() },
            keys.iter().copied(),
            TieBreak::Random,
            &mut rng,
        );
        assert_eq!(s.allocation().loads(), reference.loads());
    }

    #[test]
    fn keyed_reinsert_replays_probe_sequence() {
        let mut s = keyed_shard(4);
        for key in 0..40u64 {
            s.insert(key);
        }
        let key = 11u64;
        let probes = s.probes_for(key);
        for _ in 0..30 {
            s.delete(key).expect("key live");
            let bin = s.insert(key);
            assert!(
                probes.contains(&bin),
                "keyed re-insert left the probe set: bin {bin} not in {probes:?}"
            );
        }
    }

    #[test]
    fn stream_reinsert_draws_fresh_bins() {
        // The contrast that motivates keyed mode: under the process model
        // re-inserts wander over the whole table.
        let mut s = shard(4);
        for key in 0..40u64 {
            s.insert(key);
        }
        let key = 11u64;
        let probes = s.probes_for(key);
        let mut escaped = false;
        for _ in 0..30 {
            s.delete(key).expect("key live");
            escaped |= !probes.contains(&s.insert(key));
        }
        assert!(escaped, "stream mode never left the keyed probe set");
    }

    #[test]
    fn probes_into_reuses_buffer_and_matches_probes_for() {
        let s = keyed_shard(12);
        let mut buf = vec![999u64; 17];
        for key in 0..64u64 {
            s.probes_into(key, &mut buf);
            assert_eq!(buf, s.probes_for(key), "key {key}");
            assert_eq!(buf.len(), 3);
        }
    }

    #[test]
    fn rng_kind_selects_the_stream() {
        let scheme = DoubleHashing::new(64, 3);
        let xo = Shard::new(0, scheme.clone(), &config(9));
        let mut pcg_cfg = config(9);
        pcg_cfg.rng = RngKind::Pcg64;
        let mut pcg = Shard::new(0, scheme.clone(), &pcg_cfg);
        let mut xo2 = Shard::new(0, scheme, &config(9));
        let mut same = true;
        for key in 0..64u64 {
            same &= pcg.insert(key) == xo2.insert(key);
        }
        assert!(!same, "pcg64 produced xoshiro's placements");
        assert_eq!(xo.mode(), ChoiceMode::Stream);
    }

    #[test]
    fn apply_returns_batch_delta_only() {
        let mut s = shard(4);
        s.apply(&[Op::Insert(1), Op::Insert(2)]);
        let delta = s.apply(&[Op::Delete(1), Op::Delete(5), Op::Lookup(2), Op::Lookup(9)]);
        assert_eq!(delta.inserts, 0);
        assert_eq!(delta.deletes, 1);
        assert_eq!(delta.missed_deletes, 1);
        assert_eq!(delta.lookups, 2);
        assert_eq!(delta.hits, 1);
        assert_eq!(s.lifetime_summary().inserts, 2);
    }

    #[test]
    fn deletes_and_lookups_consume_no_randomness() {
        let mut a = shard(6);
        let mut b = shard(6);
        a.apply(&[Op::Insert(1), Op::Insert(2), Op::Insert(3)]);
        // Same inserts with lookups and missed deletes interleaved: the
        // no-rng ops must not shift the shard's random stream.
        b.apply(&[
            Op::Lookup(1),
            Op::Insert(1),
            Op::Delete(9),
            Op::Insert(2),
            Op::Lookup(2),
            Op::Insert(3),
            Op::Lookup(7),
        ]);
        assert_eq!(a.allocation().loads(), b.allocation().loads());
    }

    #[test]
    fn keyed_apply_batches_bit_identically() {
        // The batched keyed insert path (runs > INSERT_RUN_CHUNK, runs
        // broken by deletes/lookups, short tails) must match per-op
        // inserts exactly: placements, index, counters, observations.
        let mut batched = keyed_shard(21);
        let mut reference = keyed_shard(21);
        let mut ops = Vec::new();
        for key in 0..300u64 {
            ops.push(Op::Insert(key));
        }
        ops.push(Op::Lookup(5));
        ops.push(Op::Delete(7));
        for key in 300..305u64 {
            ops.push(Op::Insert(key));
        }
        ops.push(Op::Delete(11));
        ops.push(Op::Insert(7));
        let summary = batched.apply(&ops);
        for &op in &ops {
            match op {
                Op::Insert(k) => {
                    reference.insert(k);
                }
                Op::Delete(k) => {
                    reference.delete(k);
                }
                Op::Lookup(k) => {
                    reference.lookup(k);
                }
            }
        }
        assert_eq!(summary, *reference.lifetime_summary());
        assert_eq!(batched.allocation().loads(), reference.allocation().loads());
        assert_eq!(batched.live_key_ids(), reference.live_key_ids());
        let (b, r) = (batched.observations(), reference.observations());
        assert_eq!(b.insert_load.count(), r.insert_load.count());
        assert_eq!(b.insert_probe.count(), r.insert_probe.count());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(b.insert_load.percentile(q), r.insert_load.percentile(q));
            assert_eq!(b.insert_probe.percentile(q), r.insert_probe.percentile(q));
        }
        // And the O(1) tracker still agrees with a full scan after the
        // batched churn.
        assert_eq!(
            batched.allocation().max_load(),
            batched.allocation().scanned_max_load()
        );
    }

    #[test]
    fn observations_track_each_op_kind() {
        let mut s = shard(8);
        s.apply(&[
            Op::Insert(1),
            Op::Insert(1),
            Op::Insert(2),
            Op::Lookup(1),
            Op::Lookup(99),
            Op::Delete(1),
        ]);
        let obs = s.observations();
        assert_eq!(obs.insert_load.count(), 3);
        assert_eq!(obs.insert_probe.count(), 3);
        assert!(obs.insert_probe.max() < 3, "probe index must be < d");
        assert_eq!(obs.delete_load.count(), 1);
        assert_eq!(obs.lookup_depth.count(), 2);
        // Lookup of key 1 saw 2 balls, lookup of 99 saw 0.
        assert_eq!(obs.lookup_depth.max(), 2);
        assert_eq!(obs.lookup_depth.percentile(1.0), 0);
        // Insert landing loads are ≥ 1 by definition.
        assert!(obs.insert_load.percentile(0.0) >= 1);
    }

    #[test]
    fn bins_of_reflects_live_balls() {
        let mut s = shard(10);
        assert_eq!(s.bins_of(5), None);
        let b1 = s.insert(5);
        let b2 = s.insert(5);
        assert_eq!(s.bins_of(5), Some(&[b1, b2][..]));
        s.delete(5);
        assert_eq!(s.bins_of(5), Some(&[b1][..]));
    }
}
