//! One shard: a bin table, its key index, and its choice source.

use crate::engine::{ChoiceMode, EngineConfig};
use crate::metrics::OpObservations;
use crate::op::{BatchSummary, Op};
use crate::rounds::{Proposal, Winner};
use ba_core::{Allocation, TieBreak};
use ba_hash::{ChoiceScheme, ChoiceSource};
use ba_rng::{AnyRng, SeedSequence};
use std::collections::HashMap;

/// Child index reserved for deriving a shard's keyed salt, domain-
/// separated from the shard's RNG stream (which uses the node itself).
const SALT_CHILD: u64 = 0x5A17;

/// A single-threaded slice of the engine's keyspace.
///
/// The shard owns an [`Allocation`] over its scheme's bins, an index from
/// key to the bins currently holding that key's balls, and a deterministic
/// RNG stream derived from `SeedSequence::new(seed).child(shard_id)` in
/// the configured [`ba_rng::RngKind`].
///
/// Choice vectors come from the configured [`ChoiceMode`]:
///
/// * **Stream** — each insert draws fresh choices from the shard's RNG
///   stream (the paper's process model); only inserts consume randomness,
///   exactly like `ba_core::run_process`, so an insert-only shard is
///   bit-identical to a single-threaded `run_process` over the same
///   stream.
/// * **Keyed** — choices derive from `hash(key, shard_salt)` (the
///   hash-table model): deleting and re-inserting a key replays its exact
///   `f + k·g` probe sequence, and the RNG stream is consumed only by
///   random tie-breaks.
///
/// Either way the determinism contract mirrors `ba_core::runner`: a
/// shard's final state is a pure function of `(config, shard_id, ordered
/// op sequence)` — never of which thread ran it or what other shards did.
#[derive(Debug, Clone)]
pub struct Shard<S> {
    id: usize,
    scheme: S,
    alloc: Allocation,
    tie: TieBreak,
    rng: AnyRng,
    mode: ChoiceMode,
    salt: u64,
    /// key -> stack of bins holding that key's balls (LIFO delete order).
    index: HashMap<u64, Vec<u64>>,
    choices: Vec<u64>,
    lifetime: BatchSummary,
    observed: OpObservations,
}

impl<S: ChoiceScheme> Shard<S> {
    /// Creates an empty shard with its own RNG stream and keyed salt,
    /// both derived from `config.seed` and `id`.
    pub fn new(id: usize, scheme: S, config: &EngineConfig) -> Self {
        let alloc = Allocation::new(scheme.n());
        let d = scheme.d();
        let node = SeedSequence::new(config.seed).child(id as u64);
        Self {
            id,
            scheme,
            alloc,
            tie: config.tie,
            rng: node.any_rng(config.rng),
            mode: config.mode,
            salt: node.child(SALT_CHILD).derive_u64(),
            index: HashMap::new(),
            choices: vec![0u64; d],
            lifetime: BatchSummary::default(),
            observed: OpObservations::default(),
        }
    }

    /// This shard's position within the engine.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's bin table.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// The shard's choice scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The shard's choice mode.
    pub fn mode(&self) -> ChoiceMode {
        self.mode
    }

    /// The salt mixed into keyed choice derivation for this shard.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// The [`ChoiceSource`] this shard feeds to the allocation core.
    pub fn source(&self) -> ChoiceSource {
        match self.mode {
            ChoiceMode::Stream => ChoiceSource::Stream,
            ChoiceMode::Keyed => ChoiceSource::Keyed { salt: self.salt },
        }
    }

    /// The probe sequence `key` would use in keyed mode — a pure function
    /// of `(key, shard salt)`, independent of the shard's current state.
    pub fn probes_for(&self, key: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.scheme.d()];
        self.scheme.choices_for(key, self.salt, &mut out);
        out
    }

    /// The bins currently holding balls for `key`, oldest first.
    pub fn bins_of(&self, key: u64) -> Option<&[u64]> {
        self.index.get(&key).map(Vec::as_slice)
    }

    /// Number of distinct keys with at least one live ball.
    pub fn live_keys(&self) -> usize {
        self.index.len()
    }

    /// Every key with at least one live ball, sorted ascending. The sort
    /// makes the enumeration deterministic (the index is a `HashMap`), so
    /// callers that replay the result — cluster rebalance drains, the
    /// placement map — are reproducible run to run.
    pub fn live_key_ids(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Operation counters accumulated over the shard's lifetime.
    pub fn lifetime_summary(&self) -> &BatchSummary {
        &self.lifetime
    }

    /// Per-op-kind load/probe observations over the shard's lifetime.
    pub fn observations(&self) -> &OpObservations {
        &self.observed
    }

    /// Places one ball for `key`; returns the chosen bin.
    pub fn insert(&mut self, key: u64) -> u64 {
        self.source()
            .fill(&self.scheme, key, &mut self.rng, &mut self.choices);
        let bin = self.alloc.place(&self.choices, self.tie, &mut self.rng);
        let probe = self
            .choices
            .iter()
            .position(|&c| c == bin)
            .expect("place returns one of the offered choices");
        self.observed.insert_load.record(self.alloc.load(bin));
        self.observed.insert_probe.record(probe as u32);
        self.index.entry(key).or_default().push(bin);
        self.lifetime.inserts += 1;
        bin
    }

    /// Removes the most recent ball for `key`; returns its bin if present.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        match self.index.get_mut(&key) {
            Some(bins) => {
                let bin = bins.pop().expect("index never holds empty stacks");
                if bins.is_empty() {
                    self.index.remove(&key);
                }
                self.observed.delete_load.record(self.alloc.load(bin));
                self.alloc.remove(bin);
                self.lifetime.deletes += 1;
                Some(bin)
            }
            None => {
                self.lifetime.missed_deletes += 1;
                None
            }
        }
    }

    /// Whether any ball for `key` is live.
    pub fn lookup(&mut self, key: u64) -> bool {
        self.lifetime.lookups += 1;
        let depth = self.index.get(&key).map_or(0, Vec::len);
        self.observed.lookup_depth.record(depth as u32);
        let hit = depth > 0;
        if hit {
            self.lifetime.hits += 1;
        }
        hit
    }

    /// Resolves one synchronized round over this shard's bins (rounds
    /// ingestion, see [`crate::rounds`]): proposals sort by
    /// `(bin, tie, ball)` — never arrival order — and each bin accepts
    /// while its load sits below `threshold`. Acceptance consumes no
    /// RNG, so the shard's stream stays untouched. Winners are placed
    /// immediately and reported back shard-locally; the caller owns the
    /// global key index.
    pub(crate) fn rounds_resolve(
        &mut self,
        mut proposals: Vec<Proposal>,
        threshold: u32,
    ) -> Vec<Winner> {
        proposals.sort_unstable_by_key(|p| (p.bin, p.tie, p.ball));
        let mut winners = Vec::new();
        for p in &proposals {
            if self.alloc.load(p.bin) < threshold {
                self.rounds_insert(p.bin, p.probe);
                winners.push(Winner {
                    ball: p.ball,
                    bin: p.bin,
                });
            }
        }
        winners
    }

    /// Places one round-resolved ball into `bin`, recording the same
    /// insert observations sequential ingestion would. A single offered
    /// choice under [`TieBreak::FirstOffered`] consumes no randomness.
    /// The shard's key index is deliberately not touched — rounds mode
    /// keeps a global index (bins are global there, not shard-local).
    fn rounds_insert(&mut self, bin: u64, probe: u8) {
        self.alloc
            .place(&[bin], TieBreak::FirstOffered, &mut self.rng);
        self.observed.insert_load.record(self.alloc.load(bin));
        self.observed.insert_probe.record(u32::from(probe));
        self.lifetime.inserts += 1;
    }

    /// Removes one round-tracked ball from `bin` (rounds ingestion; the
    /// caller resolved the key's global index to this shard-local bin).
    pub(crate) fn rounds_delete(&mut self, bin: u64) {
        self.observed.delete_load.record(self.alloc.load(bin));
        self.alloc.remove(bin);
        self.lifetime.deletes += 1;
    }

    /// Counts a delete that found no live ball (rounds ingestion).
    pub(crate) fn rounds_missed_delete(&mut self) {
        self.lifetime.missed_deletes += 1;
    }

    /// Records one lookup observing `depth` live balls (rounds
    /// ingestion; the caller resolved depth against the global index).
    pub(crate) fn rounds_lookup(&mut self, depth: u32) {
        self.lifetime.lookups += 1;
        self.observed.lookup_depth.record(depth);
        if depth > 0 {
            self.lifetime.hits += 1;
        }
    }

    /// Applies an ordered op sequence, returning this batch's summary.
    pub fn apply(&mut self, ops: &[Op]) -> BatchSummary {
        let before = self.lifetime;
        for &op in ops {
            match op {
                Op::Insert(k) => {
                    self.insert(k);
                }
                Op::Delete(k) => {
                    self.delete(k);
                }
                Op::Lookup(k) => {
                    self.lookup(k);
                }
            }
        }
        self.lifetime.diff(&before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ba_core::{run_process, run_process_keys};
    use ba_hash::DoubleHashing;
    use ba_rng::RngKind;

    fn config(seed: u64) -> EngineConfig {
        EngineConfig::new(1, 64, 3).seed(seed)
    }

    fn shard(seed: u64) -> Shard<DoubleHashing> {
        Shard::new(0, DoubleHashing::new(64, 3), &config(seed))
    }

    fn keyed_shard(seed: u64) -> Shard<DoubleHashing> {
        Shard::new(0, DoubleHashing::new(64, 3), &config(seed).keyed())
    }

    #[test]
    fn insert_then_delete_roundtrips() {
        let mut s = shard(1);
        let bin = s.insert(42);
        assert!(s.lookup(42));
        assert_eq!(s.allocation().balls(), 1);
        assert_eq!(s.delete(42), Some(bin));
        assert!(!s.lookup(42));
        assert_eq!(s.allocation().balls(), 0);
        assert_eq!(s.live_keys(), 0);
    }

    #[test]
    fn duplicate_inserts_stack_and_pop_lifo() {
        let mut s = shard(2);
        let b1 = s.insert(7);
        let b2 = s.insert(7);
        assert_eq!(s.allocation().balls(), 2);
        assert_eq!(s.live_keys(), 1);
        assert_eq!(s.delete(7), Some(b2));
        assert!(s.lookup(7), "one ball should remain");
        assert_eq!(s.delete(7), Some(b1));
        assert_eq!(s.delete(7), None);
    }

    #[test]
    fn missed_delete_counted_not_fatal() {
        let mut s = shard(3);
        assert_eq!(s.delete(999), None);
        assert_eq!(s.lifetime_summary().missed_deletes, 1);
        assert_eq!(s.allocation().balls(), 0);
    }

    #[test]
    fn insert_only_shard_matches_run_process() {
        // The determinism contract: a shard fed only inserts reproduces
        // ba_core::run_process bit-for-bit on the same derived stream.
        let seed = 99u64;
        let scheme = DoubleHashing::new(128, 3);
        let cfg = EngineConfig::new(8, 128, 3).seed(seed);
        let mut s = Shard::new(5, scheme.clone(), &cfg);
        for key in 0..200u64 {
            s.insert(key);
        }
        let mut rng = SeedSequence::new(seed).child(5).xoshiro();
        let reference = run_process(&scheme, 200, TieBreak::Random, &mut rng);
        assert_eq!(s.allocation().loads(), reference.loads());
        assert_eq!(s.allocation().max_load(), reference.max_load());
    }

    #[test]
    fn keyed_shard_matches_run_process_keys() {
        // The keyed twin of the contract: insert-only keyed traffic equals
        // run_process_keys over the same keys, salt, and tie-break stream.
        let seed = 17u64;
        let scheme = DoubleHashing::new(128, 3);
        let cfg = EngineConfig::new(8, 128, 3).seed(seed).keyed();
        let mut s = Shard::new(2, scheme.clone(), &cfg);
        let keys: Vec<u64> = (0..200u64).map(|k| k * 3 + 1).collect();
        for &key in &keys {
            s.insert(key);
        }
        let mut rng = SeedSequence::new(seed).child(2).xoshiro();
        let reference = run_process_keys(
            &scheme,
            ChoiceSource::Keyed { salt: s.salt() },
            keys.iter().copied(),
            TieBreak::Random,
            &mut rng,
        );
        assert_eq!(s.allocation().loads(), reference.loads());
    }

    #[test]
    fn keyed_reinsert_replays_probe_sequence() {
        let mut s = keyed_shard(4);
        for key in 0..40u64 {
            s.insert(key);
        }
        let key = 11u64;
        let probes = s.probes_for(key);
        for _ in 0..30 {
            s.delete(key).expect("key live");
            let bin = s.insert(key);
            assert!(
                probes.contains(&bin),
                "keyed re-insert left the probe set: bin {bin} not in {probes:?}"
            );
        }
    }

    #[test]
    fn stream_reinsert_draws_fresh_bins() {
        // The contrast that motivates keyed mode: under the process model
        // re-inserts wander over the whole table.
        let mut s = shard(4);
        for key in 0..40u64 {
            s.insert(key);
        }
        let key = 11u64;
        let probes = s.probes_for(key);
        let mut escaped = false;
        for _ in 0..30 {
            s.delete(key).expect("key live");
            escaped |= !probes.contains(&s.insert(key));
        }
        assert!(escaped, "stream mode never left the keyed probe set");
    }

    #[test]
    fn rng_kind_selects_the_stream() {
        let scheme = DoubleHashing::new(64, 3);
        let xo = Shard::new(0, scheme.clone(), &config(9));
        let mut pcg_cfg = config(9);
        pcg_cfg.rng = RngKind::Pcg64;
        let mut pcg = Shard::new(0, scheme.clone(), &pcg_cfg);
        let mut xo2 = Shard::new(0, scheme, &config(9));
        let mut same = true;
        for key in 0..64u64 {
            same &= pcg.insert(key) == xo2.insert(key);
        }
        assert!(!same, "pcg64 produced xoshiro's placements");
        assert_eq!(xo.mode(), ChoiceMode::Stream);
    }

    #[test]
    fn apply_returns_batch_delta_only() {
        let mut s = shard(4);
        s.apply(&[Op::Insert(1), Op::Insert(2)]);
        let delta = s.apply(&[Op::Delete(1), Op::Delete(5), Op::Lookup(2), Op::Lookup(9)]);
        assert_eq!(delta.inserts, 0);
        assert_eq!(delta.deletes, 1);
        assert_eq!(delta.missed_deletes, 1);
        assert_eq!(delta.lookups, 2);
        assert_eq!(delta.hits, 1);
        assert_eq!(s.lifetime_summary().inserts, 2);
    }

    #[test]
    fn deletes_and_lookups_consume_no_randomness() {
        let mut a = shard(6);
        let mut b = shard(6);
        a.apply(&[Op::Insert(1), Op::Insert(2), Op::Insert(3)]);
        // Same inserts with lookups and missed deletes interleaved: the
        // no-rng ops must not shift the shard's random stream.
        b.apply(&[
            Op::Lookup(1),
            Op::Insert(1),
            Op::Delete(9),
            Op::Insert(2),
            Op::Lookup(2),
            Op::Insert(3),
            Op::Lookup(7),
        ]);
        assert_eq!(a.allocation().loads(), b.allocation().loads());
    }

    #[test]
    fn observations_track_each_op_kind() {
        let mut s = shard(8);
        s.apply(&[
            Op::Insert(1),
            Op::Insert(1),
            Op::Insert(2),
            Op::Lookup(1),
            Op::Lookup(99),
            Op::Delete(1),
        ]);
        let obs = s.observations();
        assert_eq!(obs.insert_load.count(), 3);
        assert_eq!(obs.insert_probe.count(), 3);
        assert!(obs.insert_probe.max() < 3, "probe index must be < d");
        assert_eq!(obs.delete_load.count(), 1);
        assert_eq!(obs.lookup_depth.count(), 2);
        // Lookup of key 1 saw 2 balls, lookup of 99 saw 0.
        assert_eq!(obs.lookup_depth.max(), 2);
        assert_eq!(obs.lookup_depth.percentile(1.0), 0);
        // Insert landing loads are ≥ 1 by definition.
        assert!(obs.insert_load.percentile(0.0) >= 1);
    }

    #[test]
    fn bins_of_reflects_live_balls() {
        let mut s = shard(10);
        assert_eq!(s.bins_of(5), None);
        let b1 = s.insert(5);
        let b2 = s.insert(5);
        assert_eq!(s.bins_of(5), Some(&[b1, b2][..]));
        s.delete(5);
        assert_eq!(s.bins_of(5), Some(&[b1][..]));
    }
}
