//! One shard: a bin table, its key index, and its private RNG stream.

use crate::op::{BatchSummary, Op};
use ba_core::{Allocation, TieBreak};
use ba_hash::ChoiceScheme;
use ba_rng::{SeedSequence, Xoshiro256StarStar};
use std::collections::HashMap;

/// A single-threaded slice of the engine's keyspace.
///
/// The shard owns an [`Allocation`] over its scheme's bins, an index from
/// key to the bins currently holding that key's balls, and a deterministic
/// RNG stream derived from `SeedSequence::new(seed).child(shard_id)`.
///
/// The determinism contract mirrors `ba_core::runner`: a shard's final
/// state is a pure function of `(seed, shard_id, scheme, tie,
/// ordered op sequence)` — never of which thread ran it or what the other
/// shards did. Only inserts consume randomness (choice generation and
/// random tie-breaks), exactly like `ba_core::run_process`, so an
/// insert-only shard is bit-identical to a single-threaded `run_process`
/// over the same keys' stream.
#[derive(Debug, Clone)]
pub struct Shard<S> {
    id: usize,
    scheme: S,
    alloc: Allocation,
    tie: TieBreak,
    rng: Xoshiro256StarStar,
    /// key -> stack of bins holding that key's balls (LIFO delete order).
    index: HashMap<u64, Vec<u64>>,
    choices: Vec<u64>,
    lifetime: BatchSummary,
}

impl<S: ChoiceScheme> Shard<S> {
    /// Creates an empty shard with its own RNG stream.
    pub fn new(id: usize, scheme: S, tie: TieBreak, seed: u64) -> Self {
        let alloc = Allocation::new(scheme.n());
        let d = scheme.d();
        Self {
            id,
            scheme,
            alloc,
            tie,
            rng: SeedSequence::new(seed).child(id as u64).xoshiro(),
            index: HashMap::new(),
            choices: vec![0u64; d],
            lifetime: BatchSummary::default(),
        }
    }

    /// This shard's position within the engine.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's bin table.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// The shard's choice scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Number of distinct keys with at least one live ball.
    pub fn live_keys(&self) -> usize {
        self.index.len()
    }

    /// Operation counters accumulated over the shard's lifetime.
    pub fn lifetime_summary(&self) -> &BatchSummary {
        &self.lifetime
    }

    /// Places one ball for `key`; returns the chosen bin.
    pub fn insert(&mut self, key: u64) -> u64 {
        self.scheme.fill_choices(&mut self.rng, &mut self.choices);
        let bin = self.alloc.place(&self.choices, self.tie, &mut self.rng);
        self.index.entry(key).or_default().push(bin);
        self.lifetime.inserts += 1;
        bin
    }

    /// Removes the most recent ball for `key`; returns its bin if present.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        match self.index.get_mut(&key) {
            Some(bins) => {
                let bin = bins.pop().expect("index never holds empty stacks");
                if bins.is_empty() {
                    self.index.remove(&key);
                }
                self.alloc.remove(bin);
                self.lifetime.deletes += 1;
                Some(bin)
            }
            None => {
                self.lifetime.missed_deletes += 1;
                None
            }
        }
    }

    /// Whether any ball for `key` is live.
    pub fn lookup(&mut self, key: u64) -> bool {
        self.lifetime.lookups += 1;
        let hit = self.index.contains_key(&key);
        if hit {
            self.lifetime.hits += 1;
        }
        hit
    }

    /// Applies an ordered op sequence, returning this batch's summary.
    pub fn apply(&mut self, ops: &[Op]) -> BatchSummary {
        let before = self.lifetime;
        for &op in ops {
            match op {
                Op::Insert(k) => {
                    self.insert(k);
                }
                Op::Delete(k) => {
                    self.delete(k);
                }
                Op::Lookup(k) => {
                    self.lookup(k);
                }
            }
        }
        self.lifetime.diff(&before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::run_process;
    use ba_hash::DoubleHashing;

    fn shard(seed: u64) -> Shard<DoubleHashing> {
        Shard::new(0, DoubleHashing::new(64, 3), TieBreak::Random, seed)
    }

    #[test]
    fn insert_then_delete_roundtrips() {
        let mut s = shard(1);
        let bin = s.insert(42);
        assert!(s.lookup(42));
        assert_eq!(s.allocation().balls(), 1);
        assert_eq!(s.delete(42), Some(bin));
        assert!(!s.lookup(42));
        assert_eq!(s.allocation().balls(), 0);
        assert_eq!(s.live_keys(), 0);
    }

    #[test]
    fn duplicate_inserts_stack_and_pop_lifo() {
        let mut s = shard(2);
        let b1 = s.insert(7);
        let b2 = s.insert(7);
        assert_eq!(s.allocation().balls(), 2);
        assert_eq!(s.live_keys(), 1);
        assert_eq!(s.delete(7), Some(b2));
        assert!(s.lookup(7), "one ball should remain");
        assert_eq!(s.delete(7), Some(b1));
        assert_eq!(s.delete(7), None);
    }

    #[test]
    fn missed_delete_counted_not_fatal() {
        let mut s = shard(3);
        assert_eq!(s.delete(999), None);
        assert_eq!(s.lifetime_summary().missed_deletes, 1);
        assert_eq!(s.allocation().balls(), 0);
    }

    #[test]
    fn insert_only_shard_matches_run_process() {
        // The determinism contract: a shard fed only inserts reproduces
        // ba_core::run_process bit-for-bit on the same derived stream.
        let seed = 99u64;
        let scheme = DoubleHashing::new(128, 3);
        let mut s = Shard::new(5, scheme.clone(), TieBreak::Random, seed);
        for key in 0..200u64 {
            s.insert(key);
        }
        let mut rng = SeedSequence::new(seed).child(5).xoshiro();
        let reference = run_process(&scheme, 200, TieBreak::Random, &mut rng);
        assert_eq!(s.allocation().loads(), reference.loads());
        assert_eq!(s.allocation().max_load(), reference.max_load());
    }

    #[test]
    fn apply_returns_batch_delta_only() {
        let mut s = shard(4);
        s.apply(&[Op::Insert(1), Op::Insert(2)]);
        let delta = s.apply(&[Op::Delete(1), Op::Delete(5), Op::Lookup(2), Op::Lookup(9)]);
        assert_eq!(delta.inserts, 0);
        assert_eq!(delta.deletes, 1);
        assert_eq!(delta.missed_deletes, 1);
        assert_eq!(delta.lookups, 2);
        assert_eq!(delta.hits, 1);
        assert_eq!(s.lifetime_summary().inserts, 2);
    }

    #[test]
    fn deletes_and_lookups_consume_no_randomness() {
        let mut a = shard(6);
        let mut b = shard(6);
        a.apply(&[Op::Insert(1), Op::Insert(2), Op::Insert(3)]);
        // Same inserts with lookups and missed deletes interleaved: the
        // no-rng ops must not shift the shard's random stream.
        b.apply(&[
            Op::Lookup(1),
            Op::Insert(1),
            Op::Delete(9),
            Op::Insert(2),
            Op::Lookup(2),
            Op::Insert(3),
            Op::Lookup(7),
        ]);
        assert_eq!(a.allocation().loads(), b.allocation().loads());
    }
}
