//! Round-based bulk-parallel allocation (`IngestMode::Rounds`).
//!
//! The paper's d-choice placement is inherently sequential per ball:
//! every insert observes the loads left by the previous one. The MPC
//! sparsification line (Ghaffari–Uitto; Czumaj–Davies–Parter) shows the
//! same load guarantees survive a *bulk* formulation, which this module
//! adopts as a genuinely different ingestion semantics: a whole batch of
//! inserts resolves in O(log log n)-style synchronized rounds —
//!
//! 1. **Propose** — every pending ball offers its next probe from a
//!    keyed choice vector derived from `(key, rounds salt)` over the
//!    *global* bin space (`shards × bins_per_shard` bins). Probe
//!    derivation is embarrassingly parallel across producer threads.
//! 2. **Resolve** — each bin accepts proposals while its load sits
//!    below the round's threshold, taking them in salted-key-hash tie
//!    order (never arrival order). Bins partition cleanly across the
//!    shard workers, so resolution is embarrassingly parallel too.
//! 3. **Re-propose** — losers advance to their next probe (wrapping).
//!    After `d` consecutive rounds with no placement every pending ball
//!    has offered all `d` probes at the current threshold, so the
//!    threshold rises by one — which guarantees termination.
//!
//! Deletes and lookups apply at batch barriers against pre-batch state:
//! lookups first (they observe the placements the batch started with),
//! then deletes in ascending key order (LIFO within a key's stack).
//! A delete therefore never sees an insert from its own batch — a
//! documented semantic difference from sequential ingestion.
//!
//! **Determinism contract.** The final [`Allocation`](ba_core::Allocation)
//! — and the engine's [`BatchSummary`](crate::BatchSummary) — is a pure
//! function of *(batch contents as a multiset, seed)*: independent of op
//! order within the batch, worker mode, producer count, and even shard
//! count (the global bin vector is invariant; only its partitioning into
//! shards changes). The rounds salt derives from
//! `SeedSequence::new(seed).child(ROUNDS_SALT_CHILD)` with no shard
//! index mixed in, tie hashes are pure in `(key, salt, duplicate
//! index)`, and accepting a proposal consumes no shard RNG. This is a
//! strictly stronger contract than the pipelined path's bit-identity to
//! sequential serving, which still depends on stream order.
//!
//! **Limitations.** Rounds mode keeps its own global key index; the
//! per-shard key indexes ([`Shard::bins_of`](crate::Shard::bins_of),
//! `live_key_ids`) stay empty, so cluster `Drain` rebalancing and
//! placement maps see no live keys under this mode. `ChoiceMode` and
//! `TieBreak` are ignored: choices are always keyed off the rounds salt
//! and ties always break by key hash.

use crate::index::KeyIndex;
use ba_hash::ChoiceScheme;
use ba_rng::{SeedSequence, SplitMix64};

/// Child index reserved for deriving the engine-wide rounds salt.
/// Deliberately *not* a function of any shard id: the salt (and with it
/// every probe vector) must be identical across shard counts.
pub(crate) const ROUNDS_SALT_CHILD: u64 = 0x526E_6453; // "RndS"

/// What the round resolver did with a batch stream so far: drained via
/// [`Engine::take_round_report`](crate::Engine::take_round_report).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Batches resolved (including insert-free ones).
    pub batches: u64,
    /// Balls placed through the round resolver.
    pub balls: u64,
    /// Total synchronized rounds across all batches.
    pub rounds: u64,
    /// The largest round count any single batch needed.
    pub max_rounds_per_batch: u64,
    /// Re-proposals per round index, summed over batches:
    /// `reproposals[r]` counts the balls still pending after round
    /// `r + 1` of their batch. A fast-decaying head is the O(log log n)
    /// signature.
    pub reproposals: Vec<u64>,
    /// The maximum bin load observed after any resolved batch.
    pub max_load: u32,
}

/// One pending ball's offer to one bin, addressed shard-locally.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Proposal {
    /// Index of the ball within the batch's sorted insert list.
    pub(crate) ball: u32,
    /// The proposed bin, local to the shard owning it.
    pub(crate) bin: u64,
    /// Salted key hash breaking same-bin collisions — never arrival order.
    pub(crate) tie: u64,
    /// Which probe of the ball's choice vector this is (0-based).
    pub(crate) probe: u8,
}

/// An accepted proposal a shard reports back after resolving a round.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Winner {
    /// Index of the placed ball within the batch's sorted insert list.
    pub(crate) ball: u32,
    /// The bin that accepted it, local to the reporting shard.
    pub(crate) bin: u64,
}

/// Collision tie-break hash: pure in `(key, salt, instance)`, where
/// `instance` distinguishes duplicate inserts of the same key within a
/// batch so they do not tie identically forever.
pub(crate) fn tie_hash(key: u64, salt: u64, instance: u64) -> u64 {
    SplitMix64::mix(SplitMix64::mix(key ^ salt).wrapping_add(instance))
}

/// The engine's rounds-mode companion state: the global choice scheme,
/// the shard-count-independent salt, the global key index, and the
/// accumulated [`RoundReport`]. Owned by the engine only under
/// [`IngestMode::Rounds`](crate::IngestMode::Rounds).
#[derive(Debug)]
pub(crate) struct RoundsState<S> {
    /// One scheme over the *global* bin space (`shards × bins_per_shard`
    /// bins), so probe vectors never depend on the shard layout.
    pub(crate) scheme: S,
    /// The engine-wide rounds salt (see [`ROUNDS_SALT_CHILD`]).
    pub(crate) salt: u64,
    /// key -> stack of *global* bins holding that key's balls (LIFO).
    pub(crate) index: KeyIndex,
    /// Everything resolved so far.
    pub(crate) report: RoundReport,
}

impl<S: ChoiceScheme> RoundsState<S> {
    /// Builds the rounds state for an engine of `shards × bins_per_shard`
    /// global bins.
    ///
    /// # Panics
    ///
    /// Panics if `scheme` does not span the global bin space — a factory
    /// that ignored the synthetic global config it was handed.
    pub(crate) fn new(scheme: S, seed: u64, shards: usize, bins_per_shard: u64) -> Self {
        assert_eq!(
            scheme.n(),
            shards as u64 * bins_per_shard,
            "rounds scheme must span the global bin space"
        );
        let salt = SeedSequence::new(seed)
            .child(ROUNDS_SALT_CHILD)
            .derive_u64();
        Self {
            scheme,
            salt,
            // Salt-seeded like the shard indexes: deterministic probe
            // order, sorted enumeration on every observable surface.
            index: KeyIndex::with_seed(salt),
            report: RoundReport::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_hash::DoubleHashing;

    #[test]
    fn tie_hash_is_pure_and_instance_sensitive() {
        assert_eq!(tie_hash(7, 9, 0), tie_hash(7, 9, 0));
        assert_ne!(tie_hash(7, 9, 0), tie_hash(7, 9, 1));
        assert_ne!(tie_hash(7, 9, 0), tie_hash(8, 9, 0));
        assert_ne!(tie_hash(7, 9, 0), tie_hash(7, 10, 0));
    }

    #[test]
    fn salt_is_shard_count_independent() {
        let a = RoundsState::new(DoubleHashing::new(1024, 3), 42, 1, 1024);
        let b = RoundsState::new(DoubleHashing::new(1024, 3), 42, 8, 128);
        assert_eq!(a.salt, b.salt);
    }

    #[test]
    #[should_panic(expected = "global bin space")]
    fn mismatched_scheme_span_is_rejected() {
        RoundsState::new(DoubleHashing::new(512, 3), 42, 4, 256);
    }
}
