//! Single-producer/single-consumer ring buffers for the pipelined hot
//! path.
//!
//! The engine's internal Mutex+Condvar channel is the right tool for
//! the control plane (job dispatch, results, buffer recycling — a few
//! messages per stream), but on the pipelined *data* path every shipped
//! batch paid for a shared lock, a `VecDeque`, and a condvar signal.
//! This module replaces that hot path with a bounded SPSC ring:
//!
//! * **Power-of-two capacity**, so slot indexing is a mask, not a
//!   modulo, and the monotonically increasing head/tail counters wrap
//!   for free.
//! * **Cache-line-padded head/tail indices.** The producer writes only
//!   `tail`, the consumer writes only `head`; padding keeps the two
//!   counters on separate cache lines so neither side's stores
//!   invalidate the other's hot line.
//! * **Acquire/Release ordering** on the fast path: the producer's
//!   `tail` store (Release) publishes the slot it just filled; the
//!   consumer's `tail` load (Acquire) makes that write visible before
//!   the slot is read, and symmetrically for `head` when a slot is
//!   freed for reuse.
//! * **Park/unpark only on empty/full edges.** The uncontended case is
//!   a slot write plus one atomic index store plus one flag load. Only
//!   when the ring is actually full (producer) or empty (consumer) does
//!   a side take the parking mutex and wait on its condvar; the peer
//!   locks that mutex only when the `*_parked` flag says someone is
//!   actually waiting. The edge handshake (parked-flag store, then
//!   index re-check vs. index store, then parked-flag load) runs under
//!   `SeqCst` so the two orders can't both miss each other — the
//!   classic lost-wakeup race is structurally excluded.
//!
//! The crate is `#![forbid(unsafe_code)]`, so each slot is a
//! `Mutex<Option<T>>` rather than an `UnsafeCell`. That mutex is
//! *provably uncontended*: the producer touches slot `i` only while
//! `tail - head < capacity` with `i = tail & mask`, the consumer only
//! while `head < tail` with `i = head & mask`, and those windows can
//! only collide if `tail - head ≡ 0 (mod capacity)` while also
//! `0 < tail - head < capacity` — impossible. Every `lock()` therefore
//! succeeds without waiting; the mutex is a safe-Rust cell, not a lock
//! anyone can block on, and the ring's blocking behaviour lives
//! entirely in the explicit edge parking.
//!
//! Disconnect semantics mirror the engine's internal channel, because its
//! panic-propagation paths rely on them:
//!
//! * dropping the [`RingProducer`] wakes a blocked [`RingConsumer::recv`]
//!   with [`RecvError`] — after everything already in the ring has
//!   drained;
//! * dropping the [`RingConsumer`] wakes a blocked [`RingProducer::send`]
//!   and hands the unsent value back in [`SendError`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The error returned by [`RingProducer::send`] when the consumer is
/// gone; carries the unsent value back to the caller.
pub struct SendError<T>(pub T);

/// The error returned by [`RingConsumer::recv`] once the ring is empty
/// and the producer has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Pads (and aligns) a value to a cache line so the producer's `tail`
/// and the consumer's `head` never share one — the false-sharing guard
/// every SPSC ring needs.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// `capacity` slots; each holds at most one in-flight value. See the
    /// module docs for why the per-slot mutex is provably uncontended.
    slots: Box<[Mutex<Option<T>>]>,
    /// `capacity - 1`; capacity is a power of two so `index & mask`
    /// replaces `index % capacity`.
    mask: usize,
    /// Next slot the producer will write (monotonic, wraps via `mask`).
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer will read (monotonic, wraps via `mask`).
    head: CachePadded<AtomicUsize>,
    /// Cleared by the producer's drop; checked by an empty consumer.
    producer_alive: AtomicBool,
    /// Cleared by the consumer's drop; checked by a full producer.
    consumer_alive: AtomicBool,
    /// True while the producer is parked waiting for space — the
    /// consumer locks `park` to wake it only when this is set.
    producer_parked: AtomicBool,
    /// True while the consumer is parked waiting for data.
    consumer_parked: AtomicBool,
    /// The edge-only parking mutex. Never taken on the fast path.
    park: Mutex<()>,
    /// Producer waits here while the ring is full.
    space: Condvar,
    /// Consumer waits here while the ring is empty.
    available: Condvar,
}

/// The sending half of an SPSC ring. Exactly one per ring (not `Clone`;
/// single-producer is the whole point).
pub struct RingProducer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an SPSC ring. Exactly one per ring.
pub struct RingConsumer<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded SPSC ring holding at most `capacity` in-flight
/// values.
///
/// # Panics
///
/// Panics unless `capacity` is a nonzero power of two — the ring's
/// index arithmetic is mask-based, and silently rounding a requested
/// depth would change the caller's backpressure bound behind its back
/// (callers that want rounding do it explicitly, as the `engine_serve`
/// example does).
pub fn ring<T>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    assert!(
        capacity > 0 && capacity.is_power_of_two(),
        "ring capacity must be a nonzero power of two, got {capacity}"
    );
    let shared = Arc::new(Shared {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        mask: capacity - 1,
        tail: CachePadded(AtomicUsize::new(0)),
        head: CachePadded(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        producer_parked: AtomicBool::new(false),
        consumer_parked: AtomicBool::new(false),
        park: Mutex::new(()),
        space: Condvar::new(),
        available: Condvar::new(),
    });
    (
        RingProducer {
            shared: Arc::clone(&shared),
        },
        RingConsumer { shared },
    )
}

impl<T> Shared<T> {
    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

impl<T> RingProducer<T> {
    /// Enqueues `value`, blocking while the ring is full. Returns the
    /// value in [`SendError`] if the consumer has been dropped —
    /// including when the drop happens while this send is blocked
    /// waiting for space.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.send_tracked(value).map(|_stall| ())
    }

    /// [`RingProducer::send`], reporting how long this call spent
    /// blocked on a full ring: `Duration::ZERO` when a slot was free
    /// immediately, the measured wait otherwise — the same
    /// backpressure-stall primitive the Mutex channel's `send_tracked`
    /// provides, so the engine's stall telemetry is ingest-path
    /// agnostic.
    pub fn send_tracked(&self, value: T) -> Result<Duration, SendError<T>> {
        let s = &*self.shared;
        // Only this producer writes `tail`, so a relaxed self-read is
        // exact.
        let tail = s.tail.0.load(Ordering::Relaxed);
        let mut stall = Duration::ZERO;
        if tail.wrapping_sub(s.head.0.load(Ordering::Acquire)) == s.capacity() {
            // Full edge: park until the consumer frees a slot or dies.
            let blocked_at = Instant::now();
            let mut guard = s.park.lock().expect("ring park lock poisoned");
            s.producer_parked.store(true, Ordering::SeqCst);
            loop {
                if !s.consumer_alive.load(Ordering::SeqCst) {
                    s.producer_parked.store(false, Ordering::SeqCst);
                    return Err(SendError(value));
                }
                // SeqCst re-check pairs with the consumer's SeqCst
                // `head` store + `producer_parked` load: either this
                // load sees the freed slot, or the consumer's flag load
                // sees the park and notifies.
                if tail.wrapping_sub(s.head.0.load(Ordering::SeqCst)) < s.capacity() {
                    break;
                }
                guard = s.space.wait(guard).expect("ring park lock poisoned");
            }
            s.producer_parked.store(false, Ordering::SeqCst);
            drop(guard);
            stall = blocked_at.elapsed();
        } else if !s.consumer_alive.load(Ordering::SeqCst) {
            return Err(SendError(value));
        }
        // The slot at `tail` is ours (see module docs): this lock never
        // waits.
        *s.slots[tail & s.mask].lock().expect("ring slot poisoned") = Some(value);
        // SeqCst publish (Release would cover data visibility alone) so
        // the consumer's empty-edge handshake can't miss it.
        s.tail.0.store(tail.wrapping_add(1), Ordering::SeqCst);
        if s.consumer_parked.load(Ordering::SeqCst) {
            // Empty-edge wake: take the parking mutex so the notify
            // can't slip between the consumer's re-check and its wait.
            let _guard = s.park.lock().expect("ring park lock poisoned");
            s.available.notify_one();
        }
        Ok(stall)
    }

    /// How many values sit in the ring right now — a point-in-time
    /// occupancy sample (racy by nature: the consumer may drain
    /// concurrently). The pipelined producer samples this after each
    /// shipped batch for queue-occupancy telemetry.
    pub fn queued(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(s.head.0.load(Ordering::Acquire))
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        let s = &*self.shared;
        s.producer_alive.store(false, Ordering::SeqCst);
        // Lock-then-notify so a consumer between its empty re-check and
        // its wait cannot miss the disconnect.
        let _guard = s.park.lock().expect("ring park lock poisoned");
        s.available.notify_all();
    }
}

impl<T> RingConsumer<T> {
    /// Blocks until a value is available or the producer is gone.
    /// Values enqueued before the producer dropped still drain first;
    /// only an *empty* disconnected ring reports [`RecvError`].
    pub fn recv(&self) -> Result<T, RecvError> {
        let s = &*self.shared;
        // Only this consumer writes `head`, so a relaxed self-read is
        // exact.
        let head = s.head.0.load(Ordering::Relaxed);
        if s.tail.0.load(Ordering::Acquire) == head {
            // Empty edge: park until the producer publishes or dies.
            let mut guard = s.park.lock().expect("ring park lock poisoned");
            s.consumer_parked.store(true, Ordering::SeqCst);
            loop {
                if s.tail.0.load(Ordering::SeqCst) != head {
                    break;
                }
                if !s.producer_alive.load(Ordering::SeqCst) {
                    // The producer's last `tail` store precedes its
                    // alive-flag clear (program order, both SeqCst), so
                    // an empty re-check here is conclusive.
                    s.consumer_parked.store(false, Ordering::SeqCst);
                    return Err(RecvError);
                }
                guard = s.available.wait(guard).expect("ring park lock poisoned");
            }
            s.consumer_parked.store(false, Ordering::SeqCst);
        }
        let value = s.slots[head & s.mask]
            .lock()
            .expect("ring slot poisoned")
            .take()
            .expect("published ring slot holds a value");
        // SeqCst so the producer's full-edge handshake can't miss the
        // freed slot (Release would cover slot-reuse visibility alone).
        s.head.0.store(head.wrapping_add(1), Ordering::SeqCst);
        if s.producer_parked.load(Ordering::SeqCst) {
            let _guard = s.park.lock().expect("ring park lock poisoned");
            s.space.notify_one();
        }
        Ok(value)
    }

    /// Takes a value if one is already in the ring; never blocks.
    /// `None` does not distinguish "empty" from "disconnected" —
    /// callers that care use [`RingConsumer::recv`].
    pub fn try_recv(&self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed);
        if s.tail.0.load(Ordering::Acquire) == head {
            return None;
        }
        let value = s.slots[head & s.mask]
            .lock()
            .expect("ring slot poisoned")
            .take()
            .expect("published ring slot holds a value");
        s.head.0.store(head.wrapping_add(1), Ordering::SeqCst);
        if s.producer_parked.load(Ordering::SeqCst) {
            let _guard = s.park.lock().expect("ring park lock poisoned");
            s.space.notify_one();
        }
        Some(value)
    }
}

impl<T> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        let s = &*self.shared;
        s.consumer_alive.store(false, Ordering::SeqCst);
        let _guard = s.park.lock().expect("ring park lock poisoned");
        s.space.notify_all();
    }
}

impl<T> std::fmt::Debug for RingProducer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingProducer")
            .field("capacity", &self.shared.capacity())
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for RingConsumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingConsumer")
            .field("capacity", &self.shared.capacity())
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = ring::<u64>(8);
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn wraparound_reuses_slots_in_order() {
        // Far more values than slots: indices wrap through the mask many
        // times and FIFO order must survive every lap.
        let (tx, rx) = ring::<u64>(2);
        for i in 0..1_000u64 {
            tx.send(i).unwrap();
            if i % 2 == 1 {
                assert_eq!(rx.recv(), Ok(i - 1));
                assert_eq!(rx.recv(), Ok(i));
            }
        }
    }

    #[test]
    fn recv_errors_after_producer_drops_but_drains_first() {
        let (tx, rx) = ring::<u64>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        // And the error is sticky.
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_returns_value_after_consumer_drops() {
        let (tx, rx) = ring::<String>(2);
        drop(rx);
        let err = tx.send("lost".to_string()).unwrap_err();
        assert_eq!(err.0, "lost");
        // Still failing, still lossless, on every retry.
        assert_eq!(tx.send("again".to_string()).unwrap_err().0, "again");
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = ring::<u64>(2);
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn blocking_recv_wakes_on_producer_drop() {
        let (tx, rx) = ring::<u64>(2);
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn full_ring_blocks_send_until_recv_frees_a_slot() {
        use std::sync::atomic::AtomicUsize;
        let cap = 4usize;
        let (tx, rx) = ring::<usize>(cap);
        let sent = Arc::new(AtomicUsize::new(0));
        let sent_clone = Arc::clone(&sent);
        let producer = std::thread::spawn(move || {
            for i in 0..cap + 3 {
                tx.send(i).unwrap();
                sent_clone.fetch_add(1, Ordering::SeqCst);
            }
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while sent.load(Ordering::SeqCst) < cap && Instant::now() < deadline {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            sent.load(Ordering::SeqCst),
            cap,
            "producer ran past a full ring"
        );
        for i in 0..cap + 3 {
            assert_eq!(rx.recv(), Ok(i), "FIFO order must survive blocking");
        }
        producer.join().unwrap();
        assert_eq!(sent.load(Ordering::SeqCst), cap + 3);
    }

    #[test]
    fn producer_drop_while_full_drains_cleanly() {
        // The producer-drop-while-full edge: everything in the full ring
        // still reaches the consumer, then the disconnect is observed.
        let cap = 8usize;
        let (tx, rx) = ring::<usize>(cap);
        for i in 0..cap {
            tx.send(i).unwrap();
        }
        drop(tx);
        for i in 0..cap {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn producer_panic_surfaces_as_disconnect_not_deadlock() {
        // A producer thread dying mid-stream drops its RingProducer
        // during unwinding; a blocked consumer must wake with RecvError
        // after draining what was sent.
        let (tx, rx) = ring::<u64>(4);
        let producer = std::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            panic!("producer dies mid-stream");
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert!(producer.join().is_err(), "panic must propagate to join");
    }

    #[test]
    fn consumer_drop_wakes_blocked_producer_with_its_value() {
        // The pipelined teardown path: a producer blocked on a full ring
        // whose consumer dies must wake with SendError carrying the
        // exact value, never block forever.
        let (tx, rx) = ring::<String>(1);
        tx.send("queued".into()).unwrap();
        let producer = std::thread::spawn(move || tx.send("blocked".to_string()));
        std::thread::sleep(Duration::from_millis(30));
        drop(rx);
        let err = producer.join().unwrap().unwrap_err();
        assert_eq!(err.0, "blocked");
    }

    #[test]
    fn send_tracked_reports_zero_without_contention() {
        let (tx, rx) = ring::<u32>(4);
        for i in 0..4 {
            assert_eq!(tx.send_tracked(i).unwrap(), Duration::ZERO);
        }
        assert_eq!(tx.queued(), 4);
        drop(rx);
    }

    #[test]
    fn send_tracked_measures_the_blocked_wait() {
        let (tx, rx) = ring::<u32>(1);
        tx.send(0).unwrap();
        let producer = std::thread::spawn(move || tx.send_tracked(1).unwrap());
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(rx.recv(), Ok(0));
        let stall = producer.join().unwrap();
        assert!(
            stall >= Duration::from_millis(20),
            "stall {stall:?} did not cover the blocked window"
        );
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn queued_tracks_sends_and_recvs() {
        let (tx, rx) = ring::<u32>(4);
        assert_eq!(tx.queued(), 0);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.queued(), 2);
        rx.recv().unwrap();
        assert_eq!(tx.queued(), 1);
    }

    #[test]
    fn try_recv_never_blocks_and_frees_slots() {
        let (tx, rx) = ring::<u32>(1);
        assert_eq!(rx.try_recv(), None, "empty ring yields None");
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Some(7));
        tx.send(8).unwrap();
        assert_eq!(rx.recv(), Ok(8));
    }

    #[test]
    fn cross_thread_throughput_preserves_every_value() {
        let (tx, rx) = ring::<u64>(16);
        let n = 100_000u64;
        let consumer = std::thread::spawn(move || {
            let mut next = 0u64;
            while let Ok(v) = rx.recv() {
                assert_eq!(v, next, "ring reordered or dropped a value");
                next += 1;
            }
            next
        });
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), n);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn zero_capacity_rejected() {
        let _ = ring::<u8>(0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_rejected() {
        let _ = ring::<u8>(6);
    }
}
