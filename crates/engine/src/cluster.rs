//! The cluster tier: consistent-hash routing over many engines, live
//! rebalance, and cluster-wide mergeable stats.
//!
//! A [`Cluster`] spreads the keyspace over a fixed number of
//! **partitions** — each an independent [`Engine`] with its own seed
//! stream — and assigns partitions to **nodes** through a consistent-hash
//! ring of [`NODE_VNODES`] SplitMix64-mixed virtual nodes per node
//! (Dynamo/Riak-style fixed-partition placement). The split matters:
//!
//! * **Keys route to partitions** by the same SplitMix64 + multiply-shift
//!   reduction as [`route`] ([`partition_of`]). The
//!   partition count never changes over a cluster's lifetime, so the
//!   multiply-shift divisor is safe here — unlike using it across node
//!   counts, which remaps nearly every key when the divisor changes.
//! * **Partitions map to nodes** via the ring ([`HashRing`]): a node
//!   add/remove only reassigns the partitions whose successor vnode
//!   changed — ~1/N of the keyspace — and touches no other partition.
//!
//! Because the unit of state is the partition and never the node, a
//! 1-node and an N-node cluster serving the same op stream are
//! **bit-identical**: same per-key placement, same merged
//! [`EngineStats`]. Node topology decides only *ownership* (which node
//! answers for a partition), which is what [`Cluster::node_for`] reports
//! and what [`Cluster::add_node`]/[`Cluster::remove_node`] rebalance —
//! either by transferring partitions wholesale
//! ([`RebalanceMode::Transfer`], placement-preserving by construction)
//! or by draining them key by key through keyed delete→re-insert
//! ([`RebalanceMode::Drain`]), replaying each key's exact `f + k·g`
//! probe sequence on the destination and logging any bin movement as an
//! explainable divergence.

use crate::engine::{route, ChoiceMode, Engine, EngineConfig};
use crate::metrics::EngineStats;
use crate::op::{BatchSummary, Op};
use ba_hash::{AnyScheme, ChoiceScheme};
use ba_rng::{SeedSequence, SplitMix64};
use std::collections::BTreeMap;
use std::fmt;

/// Virtual nodes per physical node on the consistent-hash ring. More
/// vnodes smooth each node's share of the partition space (the standard
/// consistent-hashing variance reduction); 64 keeps per-node ownership
/// within a few percent of fair at single-digit node counts.
pub const NODE_VNODES: usize = 64;

/// Salt separating key→partition routing from the engine's key→shard
/// [`route`] and from every other SplitMix64 use in the workspace.
const KEY_PARTITION_SALT: u64 = 0xC1A5_7E12_9B4D_66A7;

/// Salt for a partition's fixed position on the ring.
const PARTITION_POINT_SALT: u64 = 0x7AB6_0F3C_D571_E845;

/// Salt for a node's vnode positions on the ring.
const VNODE_SALT: u64 = 0x4D79_C3E1_5A28_B9F3;

/// Seed-tree child index under which per-partition engine seeds are
/// derived, domain-separated from the engine's own shard children.
const PARTITION_SEED_CHILD: u64 = 0xC157;

/// Maps a key to its partition: SplitMix64 finalizer over the
/// partition-routing salt, then a multiply-shift range reduction. A pure
/// function of `(key, partitions)` — usable for replay without a cluster
/// in hand. The partition count is fixed for a cluster's lifetime, so
/// the multiply-shift divisor never changes (node topology changes are
/// absorbed by the ring instead).
#[inline]
pub fn partition_of(key: u64, partitions: usize) -> usize {
    let mixed = SplitMix64::mix(key ^ KEY_PARTITION_SALT);
    ((mixed as u128 * partitions as u128) >> 64) as usize
}

/// A partition's fixed position on the ring — pure in the partition id.
#[inline]
pub fn ring_position(partition: usize) -> u64 {
    SplitMix64::mix(partition as u64 ^ PARTITION_POINT_SALT)
}

/// A consistent-hash ring: each node contributes `vnodes` SplitMix64-
/// derived points, and a lookup position is owned by its successor point
/// (wrapping). Adding or removing a node only changes ownership of the
/// positions whose successor was one of that node's points — ~1/N of the
/// space — which is the whole reason this exists instead of a
/// multiply-shift over the node count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    vnodes: usize,
    /// Sorted `(point, node)` pairs; ties break toward the smaller node
    /// id, deterministically.
    points: Vec<(u64, u64)>,
    /// Member node ids, sorted.
    nodes: Vec<u64>,
}

impl HashRing {
    /// An empty ring whose future members get `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero.
    pub fn new(vnodes: usize) -> Self {
        assert!(vnodes >= 1, "need at least one virtual node per node");
        Self {
            vnodes,
            points: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// The vnode point for `(node, replica)` — pure, so ring contents are
    /// a function of membership alone.
    fn vnode_point(node: u64, replica: usize) -> u64 {
        SplitMix64::mix(SplitMix64::mix(node ^ VNODE_SALT) ^ replica as u64)
    }

    /// Adds a node's vnodes to the ring. Returns `false` (ring
    /// unchanged) if the node is already a member.
    pub fn add_node(&mut self, node: u64) -> bool {
        if self.nodes.contains(&node) {
            return false;
        }
        self.nodes.push(node);
        self.nodes.sort_unstable();
        for replica in 0..self.vnodes {
            self.points.push((Self::vnode_point(node, replica), node));
        }
        self.points.sort_unstable();
        true
    }

    /// Removes a node and its vnodes. Returns `false` if it was not a
    /// member.
    pub fn remove_node(&mut self, node: u64) -> bool {
        if !self.nodes.contains(&node) {
            return false;
        }
        self.nodes.retain(|&n| n != node);
        self.points.retain(|&(_, n)| n != node);
        true
    }

    /// Member node ids, sorted ascending.
    pub fn nodes(&self) -> &[u64] {
        &self.nodes
    }

    /// Virtual nodes each member contributes.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The node owning `position`: the successor vnode point, wrapping
    /// past the top of the ring.
    ///
    /// # Panics
    ///
    /// Panics if the ring has no members.
    pub fn owner(&self, position: u64) -> u64 {
        assert!(!self.nodes.is_empty(), "ring has no nodes");
        let idx = self.points.partition_point(|&(p, _)| p < position);
        self.points[idx % self.points.len()].1
    }
}

/// Configuration for a [`Cluster`]: the per-partition engine template
/// plus the cluster's routing shape.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Template for every partition's engine. `engine.seed` acts as the
    /// cluster's master seed; partition `p` runs at the derived seed
    /// `SeedSequence::new(seed).child(PARTITION_SEED_CHILD).child(p)`, so
    /// per-partition salts and RNG streams are independent but fully
    /// reproducible — a drained partition's replacement engine derives
    /// the identical salts.
    pub engine: EngineConfig,
    /// Fixed number of partitions. Never changes over the cluster's
    /// lifetime; choose comfortably above the largest node count you
    /// expect so ownership can spread (32 by default).
    pub partitions: usize,
    /// Virtual nodes per physical node on the ring
    /// ([`NODE_VNODES`] by default).
    pub vnodes: usize,
}

impl ClusterConfig {
    /// A config with 32 partitions and [`NODE_VNODES`] vnodes per node.
    pub fn new(engine: EngineConfig) -> Self {
        Self {
            engine,
            partitions: 32,
            vnodes: NODE_VNODES,
        }
    }

    /// Sets the fixed partition count.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Sets the vnodes-per-node count.
    pub fn vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes;
        self
    }

    /// Checks the cluster's structural invariants, including the engine
    /// template's (see [`EngineConfig::validate`]). [`Cluster`]
    /// constructors call this and panic with the error's message, so a
    /// bad pipeline depth in the template fails when the cluster is
    /// built, naming the offending builder call.
    pub fn validate(&self) -> Result<(), crate::engine::ConfigError> {
        if self.partitions == 0 {
            return Err(crate::engine::ConfigError::ZeroPartitions);
        }
        if self.vnodes == 0 {
            return Err(crate::engine::ConfigError::ZeroVnodes);
        }
        self.engine.validate()
    }

    /// The engine config partition `p` runs: the template with its seed
    /// replaced by the partition's derived seed.
    pub fn partition_config(&self, partition: usize) -> EngineConfig {
        let mut config = self.engine.clone();
        config.seed = SeedSequence::new(self.engine.seed)
            .child(PARTITION_SEED_CHILD)
            .child(partition as u64)
            .derive_u64();
        config
    }
}

/// How [`Cluster::add_node`]/[`Cluster::remove_node`] move the
/// partitions whose ring ownership changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceMode {
    /// Reassign ownership wholesale: the partition's engine moves to the
    /// new owner untouched. Placement and stats are bit-identical before
    /// and after by construction — the model for handing a live
    /// partition's state over a transport.
    Transfer,
    /// Migrate key by key: every live key in an affected partition is
    /// deleted from the source engine and re-inserted into a freshly
    /// built destination engine (same derived partition seed, so the
    /// same shard salts). Under [`ChoiceMode::Keyed`] the re-insert
    /// replays the key's exact `f + k·g` probe sequence; any ball that
    /// lands in a different bin of its probe set (least-loaded decisions
    /// see different loads mid-drain) is logged as an explainable
    /// divergence in the [`RebalanceReport`]. Lifetime traffic counters
    /// of drained partitions restart with the migration — placements
    /// carry over, history does not.
    Drain,
}

/// One partition whose ownership changed during a rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMove {
    /// The partition that changed hands.
    pub partition: usize,
    /// Its owner before the membership change.
    pub from: u64,
    /// Its owner after.
    pub to: u64,
}

/// What a [`Cluster::add_node`]/[`Cluster::remove_node`] call did.
#[derive(Debug, Clone)]
pub struct RebalanceReport {
    /// The node added or removed.
    pub node: u64,
    /// `true` for an add, `false` for a removal.
    pub added: bool,
    /// How affected partitions moved.
    pub mode: RebalanceMode,
    /// Every partition whose owner changed, ascending by partition id.
    pub moved: Vec<PartitionMove>,
    /// Live keys in the moved partitions (drained individually under
    /// [`RebalanceMode::Drain`]; transferred in place under
    /// [`RebalanceMode::Transfer`]).
    pub keys_moved: u64,
    /// Live balls behind those keys.
    pub balls_moved: u64,
    /// The divergence log: one line per ball whose bin changed across a
    /// drain, each naming the key, the old and new bins, and — in keyed
    /// mode — their probe indices within the key's replayed probe set.
    /// Empty for transfers and for keyed drains whose least-loaded
    /// decisions all resolved identically.
    pub divergences: Vec<String>,
}

impl RebalanceReport {
    /// Renders the report for operator eyes.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} node {}: {} partition(s) moved ({:?}), {} key(s) / {} ball(s), {} divergence(s)\n",
            if self.added { "added" } else { "removed" },
            self.node,
            self.moved.len(),
            self.mode,
            self.keys_moved,
            self.balls_moved,
            self.divergences.len()
        );
        for mv in &self.moved {
            out.push_str(&format!(
                "  partition {:>3}: node {} -> node {}\n",
                mv.partition, mv.from, mv.to
            ));
        }
        for line in &self.divergences {
            out.push_str(&format!("  divergence: {line}\n"));
        }
        out
    }
}

/// Where one key's balls live: its partition, the shard within that
/// partition's engine, and the bins holding its balls, oldest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The partition owning the key.
    pub partition: usize,
    /// The shard within the partition's engine.
    pub shard: usize,
    /// Bins holding the key's live balls, oldest first.
    pub bins: Vec<u64>,
}

/// N engines behind a consistent-hash ring. See the [module
/// docs](self) for the partition/node split and its bit-identity
/// contract.
pub struct Cluster<S> {
    config: ClusterConfig,
    ring: HashRing,
    /// One engine per partition, indexed by partition id.
    engines: Vec<Engine<S>>,
    /// Builds a partition's scheme — kept so [`RebalanceMode::Drain`]
    /// can construct fresh destination engines.
    factory: Box<dyn Fn(&EngineConfig) -> S>,
    /// Per-partition batch buffers for [`Cluster::serve_replay`]; reused
    /// across flushes so steady-state fan-out allocates nothing.
    filling: Vec<Vec<Op>>,
    /// Warnings rescued from partition engines that were *replaced*
    /// (Drain rebalance swaps in a fresh engine) before a cluster-level
    /// [`Cluster::take_warnings`] drained them. `(partition, warning)`
    /// in emission order.
    pending_warnings: Vec<(usize, String)>,
}

impl<S: fmt::Debug> fmt::Debug for Cluster<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("config", &self.config)
            .field("ring", &self.ring)
            .field("engines", &self.engines.len())
            .finish_non_exhaustive()
    }
}

impl Cluster<AnyScheme> {
    /// Builds a cluster whose partition engines run the named scheme
    /// (see [`AnyScheme::by_name`]). Returns `None` for an unknown name.
    ///
    /// # Panics
    ///
    /// As [`Cluster::with_scheme_factory`].
    pub fn by_name(name: &str, config: ClusterConfig, nodes: &[u64]) -> Option<Self> {
        // Probe once so an unknown name fails before any engine is built.
        AnyScheme::by_name(name, config.engine.bins_per_shard, config.engine.d)?;
        let name = name.to_string();
        Some(Self::with_scheme_factory(config, nodes, move |cfg| {
            AnyScheme::by_name(&name, cfg.bins_per_shard, cfg.d).expect("probed above")
        }))
    }
}

impl<S: ChoiceScheme + 'static> Cluster<S> {
    /// Builds a cluster over the given member nodes, constructing one
    /// engine per partition via `factory`.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`](crate::engine::ConfigError)'s
    /// message if the config fails [`ClusterConfig::validate`] (so a bad
    /// engine template is rejected here, naming the offending builder
    /// call), if `nodes` is empty, or if it repeats a node id.
    pub fn with_scheme_factory(
        config: ClusterConfig,
        nodes: &[u64],
        factory: impl Fn(&EngineConfig) -> S + 'static,
    ) -> Self {
        if let Err(err) = config.validate() {
            panic!("invalid ClusterConfig: {err}");
        }
        assert!(!nodes.is_empty(), "need at least one node");
        let mut ring = HashRing::new(config.vnodes);
        for &node in nodes {
            assert!(ring.add_node(node), "duplicate node id {node}");
        }
        let factory: Box<dyn Fn(&EngineConfig) -> S> = Box::new(factory);
        let engines = (0..config.partitions)
            .map(|p| Engine::with_scheme_factory(config.partition_config(p), &factory))
            .collect();
        let filling = (0..config.partitions).map(|_| Vec::new()).collect();
        Self {
            config,
            ring,
            engines,
            factory,
            filling,
            pending_warnings: Vec::new(),
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The ring mapping partitions to nodes.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Member node ids, sorted ascending.
    pub fn nodes(&self) -> &[u64] {
        self.ring.nodes()
    }

    /// The fixed partition count.
    pub fn partitions(&self) -> usize {
        self.config.partitions
    }

    /// The engine serving `partition`.
    pub fn engine(&self, partition: usize) -> &Engine<S> {
        &self.engines[partition]
    }

    /// The partition owning `key` — pure in `(key, partitions)`, see
    /// [`partition_of`].
    pub fn partition_for(&self, key: u64) -> usize {
        partition_of(key, self.config.partitions)
    }

    /// The node currently owning `partition` on the ring.
    pub fn partition_owner(&self, partition: usize) -> u64 {
        self.ring.owner(ring_position(partition))
    }

    /// The node currently answering for `key`: the ring owner of the
    /// key's partition. Pure in `(key, partitions, ring membership)` —
    /// replayable without serving a single op.
    pub fn node_for(&self, key: u64) -> u64 {
        self.partition_owner(self.partition_for(key))
    }

    /// Serves one op slice, fanning it out per partition. Equivalent to
    /// [`Cluster::serve_replay`] over the slice.
    pub fn serve(&mut self, ops: &[Op], batch_size: usize) -> BatchSummary {
        self.serve_replay(ops.iter().copied(), batch_size)
    }

    /// Serves an op *stream*, routing each op to its partition and
    /// flushing a partition's buffer into its engine whenever it fills
    /// to `batch_size` (partial buffers flush at end of stream, in
    /// partition order). Each partition engine ingests its routed
    /// subsequence through its own configured
    /// [`IngestMode`](crate::IngestMode) — phased and pipelined
    /// partitions can coexist behind one cluster.
    ///
    /// Flush boundaries depend only on the op stream and the partition
    /// count — never on node membership — which is what makes a 1-node
    /// and an N-node cluster bit-identical on the same stream.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn serve_replay(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
    ) -> BatchSummary {
        assert!(batch_size > 0, "batch size must be positive");
        let mut total = BatchSummary::default();
        for op in ops {
            let p = partition_of(op.key(), self.config.partitions);
            self.filling[p].push(op);
            if self.filling[p].len() == batch_size {
                let mut batch = std::mem::take(&mut self.filling[p]);
                total.absorb(&self.engines[p].serve(&batch, batch_size));
                batch.clear();
                self.filling[p] = batch;
            }
        }
        for (engine, buf) in self.engines.iter_mut().zip(self.filling.iter_mut()) {
            if buf.is_empty() {
                continue;
            }
            total.absorb(&engine.serve(buf, batch_size));
            buf.clear();
        }
        total
    }

    /// Cluster-wide stats: every partition's [`EngineStats`] merged in
    /// partition order via [`EngineStats::merge`]. Node-invariant — the
    /// same capture through any node count merges to the same snapshot.
    pub fn stats(&self) -> EngineStats {
        let mut merged = EngineStats::new(Vec::new());
        for engine in &self.engines {
            merged.merge(&engine.stats());
        }
        merged
    }

    /// The merged stats of the partitions `node` currently owns (empty
    /// if it owns none).
    pub fn node_stats(&self, node: u64) -> EngineStats {
        let mut merged = EngineStats::new(Vec::new());
        for (p, engine) in self.engines.iter().enumerate() {
            if self.partition_owner(p) == node {
                merged.merge(&engine.stats());
            }
        }
        merged
    }

    /// Live balls per node, `(node, balls)` ascending by node id — the
    /// load-spread view the `cluster` bench experiment records.
    pub fn per_node_balls(&self) -> Vec<(u64, u64)> {
        let mut loads: BTreeMap<u64, u64> = self.ring.nodes().iter().map(|&n| (n, 0)).collect();
        for (p, engine) in self.engines.iter().enumerate() {
            *loads
                .get_mut(&self.partition_owner(p))
                .expect("owner is a member") += engine.total_balls();
        }
        loads.into_iter().collect()
    }

    /// Total live balls across every partition.
    pub fn total_balls(&self) -> u64 {
        self.engines.iter().map(Engine::total_balls).sum()
    }

    /// The maximum bin load across every partition.
    pub fn max_load(&self) -> u32 {
        self.engines.iter().map(Engine::max_load).max().unwrap_or(0)
    }

    /// Drains the configuration warnings of every partition engine (see
    /// [`Engine::take_warnings`]), each prefixed with its partition id.
    ///
    /// Nothing is ever lost between two cluster-level drains: warnings a
    /// partition engine emitted before being replaced by a `Drain`
    /// rebalance are staged and surface here. Ordering is deterministic
    /// — ascending partition index, then emission order within the
    /// partition (staged warnings predate the current engine's).
    pub fn take_warnings(&mut self) -> Vec<String> {
        let mut staged = std::mem::take(&mut self.pending_warnings);
        for (p, engine) in self.engines.iter_mut().enumerate() {
            for warning in engine.take_warnings() {
                staged.push((p, warning));
            }
        }
        // Stable sort: within a partition, staged (older) warnings keep
        // their place ahead of the live engine's.
        staged.sort_by_key(|(p, _)| *p);
        staged
            .into_iter()
            .map(|(p, warning)| format!("partition {p}: {warning}"))
            .collect()
    }

    /// Every live key's [`Placement`], keyed by key — the differential
    /// unit `tests/cluster.rs` compares across cluster topologies.
    /// Deterministic: partitions ascend, shards ascend, keys ascend.
    pub fn placements(&self) -> BTreeMap<u64, Placement> {
        let mut map = BTreeMap::new();
        for (p, engine) in self.engines.iter().enumerate() {
            for shard in engine.shards() {
                for key in shard.live_key_ids() {
                    let bins = shard.bins_of(key).expect("live key has bins").to_vec();
                    let clash = map.insert(
                        key,
                        Placement {
                            partition: p,
                            shard: shard.id(),
                            bins,
                        },
                    );
                    debug_assert!(clash.is_none(), "key {key} live in two partitions");
                }
            }
        }
        map
    }

    /// Diffs two clusters' placements, returning one explainable line
    /// per differing key (empty means bit-identical placement). Lines
    /// are deterministic — ascending by key — and annotate keyed-mode
    /// differences with probe indices within the key's probe set, so a
    /// divergence is always attributable: same probe set, different
    /// least-loaded resolution.
    pub fn placement_divergences(&self, other: &Cluster<S>) -> Vec<String> {
        let ours = self.placements();
        let theirs = other.placements();
        let mut lines = Vec::new();
        // Reused across every annotated mismatch in the diff.
        let mut probes = Vec::new();
        for (key, placement) in &ours {
            match theirs.get(key) {
                None => lines.push(format!(
                    "key {key}: live only on left (partition {}, bins {:?})",
                    placement.partition, placement.bins
                )),
                Some(them) if them == placement => {}
                Some(them) => {
                    if placement.partition != them.partition || placement.shard != them.shard {
                        lines.push(format!(
                            "key {key}: routed to partition {}/shard {} vs {}/{} — \
                             differing partition counts or engine configs",
                            placement.partition, placement.shard, them.partition, them.shard
                        ));
                    } else {
                        lines.push(format!(
                            "key {key} (partition {} shard {}): bins {:?} vs {:?}{}",
                            placement.partition,
                            placement.shard,
                            placement.bins,
                            them.bins,
                            self.probe_annotation(*key, placement, them, &mut probes)
                        ));
                    }
                }
            }
        }
        for (key, them) in &theirs {
            if !ours.contains_key(key) {
                lines.push(format!(
                    "key {key}: live only on right (partition {}, bins {:?})",
                    them.partition, them.bins
                ));
            }
        }
        lines
    }

    /// The keyed-mode annotation for a bin mismatch: each side's bins as
    /// probe indices within the key's (shared) probe set. `probes` is a
    /// caller-owned scratch buffer, reused across a diff's mismatches.
    fn probe_annotation(
        &self,
        key: u64,
        ours: &Placement,
        theirs: &Placement,
        probes: &mut Vec<u64>,
    ) -> String {
        if self.config.engine.mode != ChoiceMode::Keyed {
            return " (stream mode: bins are draw-order dependent)".to_string();
        }
        self.engines[ours.partition]
            .shard(ours.shard)
            .probes_into(key, probes);
        let probes = &*probes;
        let indices = |bins: &[u64]| -> Vec<Option<usize>> {
            bins.iter()
                .map(|bin| probes.iter().position(|p| p == bin))
                .collect()
        };
        format!(
            " (probe indices {:?} vs {:?} within probe set {probes:?})",
            indices(&ours.bins),
            indices(&theirs.bins)
        )
    }

    /// Adds `node` to the ring and rebalances the partitions whose
    /// ownership it claimed. Returns the report of what moved.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already a member.
    pub fn add_node(&mut self, node: u64, mode: RebalanceMode) -> RebalanceReport {
        let before = self.owners();
        assert!(self.ring.add_node(node), "node {node} already in the ring");
        self.rebalance(node, true, mode, &before)
    }

    /// Removes `node` from the ring and rebalances the partitions it
    /// owned onto the survivors. Returns the report of what moved.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a member, or if it is the last one.
    pub fn remove_node(&mut self, node: u64, mode: RebalanceMode) -> RebalanceReport {
        assert!(
            self.ring.nodes().len() > 1,
            "cannot remove the last node ({node})"
        );
        let before = self.owners();
        assert!(self.ring.remove_node(node), "node {node} not in the ring");
        self.rebalance(node, false, mode, &before)
    }

    /// Current owner of every partition, indexed by partition id.
    fn owners(&self) -> Vec<u64> {
        (0..self.config.partitions)
            .map(|p| self.partition_owner(p))
            .collect()
    }

    /// Shared tail of add/remove: diff ownership against `before` and
    /// move what changed.
    fn rebalance(
        &mut self,
        node: u64,
        added: bool,
        mode: RebalanceMode,
        before: &[u64],
    ) -> RebalanceReport {
        let mut report = RebalanceReport {
            node,
            added,
            mode,
            moved: Vec::new(),
            keys_moved: 0,
            balls_moved: 0,
            divergences: Vec::new(),
        };
        for (partition, &from) in before.iter().enumerate() {
            let to = self.partition_owner(partition);
            if to == from {
                continue;
            }
            report.moved.push(PartitionMove {
                partition,
                from,
                to,
            });
            match mode {
                RebalanceMode::Transfer => {
                    // Ownership moves, state does not: count what changed
                    // hands, touch nothing.
                    let engine = &self.engines[partition];
                    report.keys_moved += engine
                        .shards()
                        .iter()
                        .map(|s| s.live_keys() as u64)
                        .sum::<u64>();
                    report.balls_moved += engine.total_balls();
                }
                RebalanceMode::Drain => self.drain_partition(partition, &mut report),
            }
        }
        report
    }

    /// Key-level migration of one partition: enumerate live keys (sorted
    /// — deterministic), delete each from the source, re-insert into a
    /// freshly built engine at the same derived partition seed, log any
    /// ball whose bin changed, then install the destination engine.
    fn drain_partition(&mut self, partition: usize, report: &mut RebalanceReport) {
        let mut destination =
            Engine::with_scheme_factory(self.config.partition_config(partition), &self.factory);
        let keyed = self.config.engine.mode == ChoiceMode::Keyed;
        // (key, old bins) pairs, ascending by key across all shards.
        let mut moves: Vec<(u64, Vec<u64>)> = self.engines[partition]
            .shards()
            .iter()
            .flat_map(|shard| {
                shard
                    .live_key_ids()
                    .into_iter()
                    .map(|key| (key, shard.bins_of(key).expect("live key has bins").to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect();
        moves.sort_unstable_by_key(|(key, _)| *key);
        let source = &mut self.engines[partition];
        // One probe buffer for the whole drain: the annotation path
        // derives every moved key's probes without reallocating.
        let mut probes = Vec::new();
        for (key, old_bins) in moves {
            let balls = old_bins.len();
            // Keyed delete from the source (drains its accounting), then
            // re-insert into the destination: in keyed mode the insert
            // replays the key's exact f + k·g probe sequence.
            source.apply_batch(&vec![Op::Delete(key); balls]);
            destination.apply_batch(&vec![Op::Insert(key); balls]);
            let shard_id = route(key, destination.config().shards);
            let new_bins = destination
                .shard(shard_id)
                .bins_of(key)
                .expect("just inserted")
                .to_vec();
            report.keys_moved += 1;
            report.balls_moved += balls as u64;
            if new_bins != old_bins {
                let annotation = if keyed {
                    destination.shard(shard_id).probes_into(key, &mut probes);
                    let probes = &probes;
                    let indices = |bins: &[u64]| -> Vec<Option<usize>> {
                        bins.iter()
                            .map(|bin| probes.iter().position(|p| p == bin))
                            .collect()
                    };
                    format!(
                        " (probe indices {:?} -> {:?} within replayed probe set {probes:?})",
                        indices(&old_bins),
                        indices(&new_bins)
                    )
                } else {
                    " (stream mode: re-inserts draw fresh bins)".to_string()
                };
                report.divergences.push(format!(
                    "partition {partition} key {key}: bins {old_bins:?} -> {new_bins:?}{annotation}"
                ));
            }
        }
        debug_assert_eq!(self.engines[partition].total_balls(), 0, "drain left balls");
        // The outgoing engine may hold warnings no cluster-level drain
        // has collected yet; stage them so the swap loses nothing.
        let outgoing = self.engines[partition].take_warnings();
        self.pending_warnings
            .extend(outgoing.into_iter().map(|w| (partition, w)));
        self.engines[partition] = destination;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_hash::DoubleHashing;

    fn config(partitions: usize) -> ClusterConfig {
        ClusterConfig::new(EngineConfig::new(2, 128, 3).seed(2014).keyed()).partitions(partitions)
    }

    fn cluster(partitions: usize, nodes: &[u64]) -> Cluster<AnyScheme> {
        Cluster::by_name("double", config(partitions), nodes).unwrap()
    }

    fn insert_stream(count: u64) -> Vec<Op> {
        (0..count)
            .map(|k| Op::Insert(k.wrapping_mul(0x9E37) ^ 7))
            .collect()
    }

    #[test]
    fn ring_owner_is_successor_and_wraps() {
        let mut ring = HashRing::new(8);
        ring.add_node(1);
        ring.add_node(2);
        // Every position resolves to a member; u64::MAX wraps to the
        // ring's first point.
        for pos in [0u64, 1 << 32, u64::MAX] {
            assert!(ring.nodes().contains(&ring.owner(pos)));
        }
    }

    #[test]
    fn ring_add_remove_roundtrips_ownership() {
        let mut ring = HashRing::new(NODE_VNODES);
        for node in [10u64, 20, 30] {
            ring.add_node(node);
        }
        let before: Vec<u64> = (0..64).map(|p| ring.owner(ring_position(p))).collect();
        ring.add_node(40);
        let during: Vec<u64> = (0..64).map(|p| ring.owner(ring_position(p))).collect();
        // Adding a node only reroutes positions it claimed.
        for (b, d) in before.iter().zip(&during) {
            assert!(d == b || *d == 40, "{b} -> {d}");
        }
        assert!(
            during.contains(&40),
            "new node claimed nothing at 64 vnodes"
        );
        ring.remove_node(40);
        let after: Vec<u64> = (0..64).map(|p| ring.owner(ring_position(p))).collect();
        assert_eq!(before, after, "remove must restore prior ownership exactly");
    }

    #[test]
    fn duplicate_and_unknown_members_are_reported() {
        let mut ring = HashRing::new(4);
        assert!(ring.add_node(5));
        assert!(!ring.add_node(5));
        assert!(ring.remove_node(5));
        assert!(!ring.remove_node(5));
    }

    #[test]
    fn partition_of_covers_and_is_stable() {
        let mut seen = [false; 16];
        for key in 0..4096u64 {
            let p = partition_of(key, 16);
            assert!(p < 16);
            assert_eq!(p, partition_of(key, 16));
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "4096 keys missed a partition");
    }

    #[test]
    fn node_count_never_changes_placement_or_stats() {
        let ops = insert_stream(4096);
        let mut single = cluster(8, &[0]);
        let mut spread = cluster(8, &[0, 1, 2, 3]);
        let a = single.serve(&ops, 256);
        let b = spread.serve(&ops, 256);
        assert_eq!(a, b);
        assert!(single.stats().matches(&spread.stats()));
        assert!(single.placement_divergences(&spread).is_empty());
        assert_eq!(single.total_balls(), spread.total_balls());
    }

    #[test]
    fn serve_replay_matches_serve_and_flushes_partials() {
        let ops = insert_stream(1000); // not a batch multiple
        let mut a = cluster(4, &[0, 1]);
        let mut b = cluster(4, &[0, 1]);
        let via_slice = a.serve(&ops, 128);
        let via_stream = b.serve_replay(ops.iter().copied(), 128);
        assert_eq!(via_slice, via_stream);
        assert_eq!(via_slice.inserts, 1000);
        assert!(a.placement_divergences(&b).is_empty());
    }

    #[test]
    fn node_stats_partition_the_cluster_stats() {
        let ops = insert_stream(2048);
        let mut c = cluster(8, &[0, 1, 2]);
        c.serve(&ops, 256);
        let total: u64 = c
            .nodes()
            .to_vec()
            .into_iter()
            .map(|n| c.node_stats(n).total_balls())
            .sum();
        assert_eq!(total, c.total_balls());
        let spread = c.per_node_balls();
        assert_eq!(spread.len(), 3);
        assert_eq!(spread.iter().map(|&(_, b)| b).sum::<u64>(), 2048);
    }

    #[test]
    fn transfer_rebalance_preserves_placement_bit_for_bit() {
        let ops = insert_stream(2048);
        let mut c = cluster(8, &[0, 1]);
        c.serve(&ops, 256);
        let placements = c.placements();
        let stats = c.stats();
        let report = c.add_node(2, RebalanceMode::Transfer);
        assert!(!report.moved.is_empty(), "64 vnodes claimed no partition");
        assert!(report.moved.iter().all(|m| m.to == 2));
        assert!(report.divergences.is_empty());
        assert_eq!(c.placements(), placements);
        assert!(c.stats().matches(&stats));
        // node_for now reports the new owner for moved partitions.
        for m in &report.moved {
            assert_eq!(c.partition_owner(m.partition), 2);
        }
        let report = c.remove_node(2, RebalanceMode::Transfer);
        assert!(report.moved.iter().all(|m| m.from == 2));
        assert_eq!(c.placements(), placements);
    }

    #[test]
    fn drain_rebalance_conserves_balls_and_logs_probe_divergences() {
        let ops = insert_stream(4096);
        let mut c = cluster(8, &[0, 1]);
        c.serve(&ops, 256);
        let balls = c.total_balls();
        let report = c.add_node(9, RebalanceMode::Drain);
        assert!(report.keys_moved > 0, "nothing drained");
        assert_eq!(c.total_balls(), balls, "drain lost or duplicated balls");
        // Keyed mode: every re-inserted ball sits within its probe set.
        let mut probes = Vec::new();
        for m in &report.moved {
            let engine = c.engine(m.partition);
            for shard in engine.shards() {
                for key in shard.live_key_ids() {
                    shard.probes_into(key, &mut probes);
                    for bin in shard.bins_of(key).unwrap() {
                        assert!(probes.contains(bin), "ball escaped its probe set");
                    }
                }
            }
        }
        // Divergences, if any, are explainable: probe-indexed lines.
        for line in &report.divergences {
            assert!(line.contains("probe"), "unexplained divergence: {line}");
        }
        // Deterministic: an identical cluster drains identically.
        let mut twin = cluster(8, &[0, 1]);
        twin.serve(&ops, 256);
        twin.add_node(9, RebalanceMode::Drain);
        assert!(c.placement_divergences(&twin).is_empty());
        assert_eq!(c.total_balls(), twin.total_balls());
    }

    #[test]
    fn take_warnings_loses_nothing_across_interleaved_serves_and_drains() {
        // Pipelined partitions warn on every engine-level serve whose
        // batch_size sits below the shard count; the cluster must
        // surface all of them even when a Drain rebalance swaps fresh
        // engines in between two cluster-level drains.
        let engine = EngineConfig::new(2, 128, 3).seed(2014).keyed().pipelined(4);
        let cfg = ClusterConfig::new(engine).partitions(4);
        let mut c = Cluster::by_name("double", cfg, &[0, 1]).unwrap();
        let ops = insert_stream(8);
        c.serve(&ops, 1); // batch_size 1 < 2 shards: one warning per flush
        let first = c.take_warnings();
        assert_eq!(first.len(), ops.len(), "{first:?}");
        assert!(first.iter().all(|w| w.contains("batch_size 1 < 2 shards")));
        // Interleave: warn again, swap engines via Drain, warn once more
        // — all before the next cluster-level drain.
        c.serve(&ops, 1);
        let report = c.add_node(7, RebalanceMode::Drain);
        assert!(!report.moved.is_empty(), "64 vnodes claimed no partition");
        c.serve(&ops, 1);
        let second = c.take_warnings();
        assert_eq!(
            second.len(),
            2 * ops.len(),
            "engine swap dropped warnings: {second:?}"
        );
        // Deterministic ordering: ascending partition index.
        let partitions: Vec<usize> = second
            .iter()
            .map(|w| {
                w.strip_prefix("partition ")
                    .and_then(|rest| rest.split(':').next())
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_else(|| panic!("unprefixed warning: {w}"))
            })
            .collect();
        let mut sorted = partitions.clone();
        sorted.sort_unstable();
        assert_eq!(partitions, sorted, "warnings must ascend by partition");
        assert!(c.take_warnings().is_empty(), "drain must be exhaustive");
    }

    #[test]
    #[should_panic(expected = "EngineConfig::pipelined(3)")]
    fn cluster_rejects_invalid_engine_template_at_construction() {
        let bad = ClusterConfig::new(EngineConfig::new(2, 64, 3).pipelined(3));
        let _ = Cluster::by_name("double", bad, &[0]);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn cluster_rejects_zero_partitions() {
        let _ = cluster(0, &[0]);
    }

    #[test]
    #[should_panic(expected = "cannot remove the last node")]
    fn last_node_cannot_be_removed() {
        cluster(4, &[0]).remove_node(0, RebalanceMode::Transfer);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_ids_rejected() {
        let _ = cluster(4, &[0, 0]);
    }

    #[test]
    fn factory_clusters_work_without_by_name() {
        let cfg = ClusterConfig::new(EngineConfig::new(1, 64, 2).seed(5)).partitions(4);
        let mut c =
            Cluster::with_scheme_factory(cfg, &[3], |e| DoubleHashing::new(e.bins_per_shard, e.d));
        let summary = c.serve(&insert_stream(256), 64);
        assert_eq!(summary.inserts, 256);
        assert_eq!(c.node_for(1), 3);
    }
}
