//! Unit-of-work metrics: per-batch records, sinks, windowed aggregation,
//! and the JSON-lines exporter.
//!
//! The engine's [`EngineStats`](crate::EngineStats) snapshots answer
//! "what does the table look like now"; they say nothing about how
//! serving *felt* — batch latency, queue occupancy, backpressure stalls.
//! This module adds that axis as a metrique-style unit-of-work pipeline:
//!
//! * every applied batch emits one flat [`MetricRecord`] (batch size,
//!   ops by kind, apply latency, and — on the pipelined path — the
//!   bounded queue's occupancy and stall count/duration at ship time);
//! * records flow into a caller-supplied [`MetricsSink`] attached via
//!   [`Engine::set_sink`](crate::Engine::set_sink);
//! * [`WindowedAggregator`] rolls records into fixed-duration
//!   [`WindowSummary`]s whose latency/size/occupancy distributions are
//!   bounded-memory [`HistogramSketch`]es — mergeable across processes;
//! * [`JsonLinesExporter`] streams one EMF-style JSON line per closed
//!   window to any writer (stderr, a file), sharing `ba_stats::json`'s
//!   escaping/formatting path with the bench trajectory files.
//!
//! Sinks only *observe*: no sink ever consumes engine RNG or reorders
//! ops, so attaching one leaves allocation results bit-identical (a
//! tested contract).

use ba_stats::json::JsonObject;
use ba_stats::HistogramSketch;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One unit of work: everything the engine knows about a single applied
/// batch, flattened into a record.
///
/// `at` is the offset since the engine was built (a monotonic anchor,
/// not wall-clock time), so windowing is a pure function of the record
/// stream. Under phased ingestion records carry `shard: None` (one
/// record per engine-wide batch); under pipelined ingestion each
/// per-shard shipped batch becomes its own record with `shard:
/// Some(id)`, emitted when the stream drains (producer-side and
/// worker-side halves of the measurement live on different threads and
/// are joined at end of stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricRecord {
    /// Monotonic sequence number assigned by the emitting engine.
    pub seq: u64,
    /// Offset from the engine's construction instant.
    pub at: Duration,
    /// Which shard applied the batch (`None`: engine-wide phased batch).
    pub shard: Option<usize>,
    /// Which producer routed and shipped the batch. 0 covers phased
    /// batches and the single-producer pipelined path (routing on the
    /// calling thread); under multi-producer pipelined serving this is
    /// the producer thread's index.
    pub producer: u32,
    /// Ops in the batch.
    pub ops: u32,
    /// Insert ops in the batch (counted pre-apply).
    pub inserts: u32,
    /// Delete ops in the batch (counted pre-apply).
    pub deletes: u32,
    /// Lookup ops in the batch (counted pre-apply).
    pub lookups: u32,
    /// Time the shard(s) spent applying the batch.
    pub apply: Duration,
    /// Producer time spent routing this batch's ops into their per-shard
    /// buffer. Measured only where routing is a separable stage — the
    /// multi-producer pipelined path, attributed to each shipped batch
    /// proportionally to its share of the routed chunk; zero under
    /// phased ingestion and single-producer pipelining (there routing
    /// interleaves with stream generation op by op).
    pub routed: Duration,
    /// Bounded-queue occupancy sampled right after this batch shipped
    /// (pipelined only; 0 under phased ingestion).
    pub queue_occupancy: u32,
    /// Backpressure stalls shipping this batch: 1 if the bounded send
    /// blocked, else 0 (pipelined only).
    pub stalls: u32,
    /// Total time this batch's send spent blocked on a full queue.
    pub stalled: Duration,
}

/// A consumer of per-batch [`MetricRecord`]s.
///
/// Implementations must be cheap and must not panic: `record` runs on
/// the serving path (phased) or at stream drain (pipelined). The engine
/// holds the sink as `Box<dyn MetricsSink + Send>` so engines stay
/// movable across threads.
pub trait MetricsSink {
    /// Consumes one record.
    fn record(&mut self, record: &MetricRecord);

    /// Flushes any buffered state (e.g. a partially filled window).
    /// Called by [`Engine::take_sink`](crate::Engine::take_sink) and on
    /// engine drop; default is a no-op.
    fn finish(&mut self) {}
}

/// A sink that appends every record to a shared vector — the read-back
/// handle for tests and benches. Clones share one store: attach one
/// clone to the engine, keep the other to inspect.
///
/// # Example
///
/// ```
/// use ba_engine::{Engine, EngineConfig, Op, SharedSink};
///
/// let sink = SharedSink::new();
/// let handle = sink.clone();
/// let mut engine = Engine::by_name("double", EngineConfig::new(2, 64, 2)).unwrap();
/// engine.set_sink(Box::new(sink));
/// engine.serve(&(0..128u64).map(Op::Insert).collect::<Vec<_>>(), 32);
/// let records = handle.records();
/// assert_eq!(records.iter().map(|r| u64::from(r.ops)).sum::<u64>(), 128);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedSink {
    store: Arc<Mutex<Vec<MetricRecord>>>,
}

impl SharedSink {
    /// Creates an empty shared sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every record collected so far.
    pub fn records(&self) -> Vec<MetricRecord> {
        self.store.lock().expect("sink lock poisoned").clone()
    }
}

impl MetricsSink for SharedSink {
    fn record(&mut self, record: &MetricRecord) {
        self.store.lock().expect("sink lock poisoned").push(*record);
    }
}

/// Aggregated telemetry for one fixed-duration window of records.
///
/// Totals (`batches`, `ops`, op mix, stalls) are exact sums; the
/// per-batch distributions — apply latency in microseconds, batch size,
/// queue occupancy — are bounded-memory [`HistogramSketch`]es, so a
/// window summary's size is independent of how many batches landed in
/// it and summaries merge across engines via [`HistogramSketch::merge`].
#[derive(Debug, Clone)]
pub struct WindowSummary {
    /// Window index: `at / window` for every record inside.
    pub index: u64,
    /// Window start offset (index × window length).
    pub start: Duration,
    /// Window end offset (exclusive).
    pub end: Duration,
    /// Batches recorded in the window.
    pub batches: u64,
    /// Total ops across those batches.
    pub ops: u64,
    /// Total inserts.
    pub inserts: u64,
    /// Total deletes.
    pub deletes: u64,
    /// Total lookups.
    pub lookups: u64,
    /// Total backpressure stalls.
    pub stalls: u64,
    /// Total time spent stalled on full queues.
    pub stalled: Duration,
    /// Total producer routing time (multi-producer pipelined batches;
    /// see [`MetricRecord::routed`]).
    pub routed: Duration,
    /// Per-batch apply latency in microseconds (log2 bins: relative
    /// error ≤ one octave).
    pub apply_us: HistogramSketch,
    /// Per-batch op counts (log2 bins).
    pub batch_ops: HistogramSketch,
    /// Queue occupancy samples (unit bins: exact up to the edge).
    pub occupancy: HistogramSketch,
}

impl WindowSummary {
    fn empty(index: u64, window: Duration) -> Self {
        let nanos = window.as_nanos() as u64;
        Self {
            index,
            start: Duration::from_nanos(nanos.saturating_mul(index)),
            end: Duration::from_nanos(nanos.saturating_mul(index + 1)),
            batches: 0,
            ops: 0,
            inserts: 0,
            deletes: 0,
            lookups: 0,
            stalls: 0,
            stalled: Duration::ZERO,
            routed: Duration::ZERO,
            // ~1µs .. ~1s in octaves.
            apply_us: HistogramSketch::log2_bins(20),
            // 1 .. 2^20 ops per batch in octaves.
            batch_ops: HistogramSketch::log2_bins(20),
            // Queue depths beyond 64 land in the overflow bin (exact max
            // still reported).
            occupancy: HistogramSketch::unit_bins(64),
        }
    }

    fn absorb(&mut self, r: &MetricRecord) {
        self.batches += 1;
        self.ops += u64::from(r.ops);
        self.inserts += u64::from(r.inserts);
        self.deletes += u64::from(r.deletes);
        self.lookups += u64::from(r.lookups);
        self.stalls += u64::from(r.stalls);
        self.stalled += r.stalled;
        self.routed += r.routed;
        self.apply_us.record(r.apply.as_secs_f64() * 1e6);
        self.batch_ops.record(f64::from(r.ops));
        self.occupancy.record(f64::from(r.queue_occupancy));
    }

    /// Renders this window as one EMF-style JSON line (no trailing
    /// newline) — the exporter's wire format. Sketch distributions
    /// nest as `{"count", "mean", "p50", "p99", "max"}` objects; a
    /// sketch with no observations exports as `null`, never as a
    /// degenerate all-zero distribution (an all-empty merged window
    /// would otherwise read as a real `p99 = 0` measurement).
    pub fn to_json_line(&self) -> String {
        let sketch = |s: &HistogramSketch| {
            if s.is_empty() {
                return "null".to_string();
            }
            JsonObject::new()
                .field_u64("count", s.count())
                .field_f64("mean", s.mean())
                .field_f64("p50", s.percentile(50.0))
                .field_f64("p99", s.percentile(99.0))
                .field_f64("max", s.max())
                .finish()
        };
        JsonObject::new()
            .field_u64("window", self.index)
            .field_u64("start_us", self.start.as_micros() as u64)
            .field_u64("end_us", self.end.as_micros() as u64)
            .field_u64("batches", self.batches)
            .field_u64("ops", self.ops)
            .field_u64("inserts", self.inserts)
            .field_u64("deletes", self.deletes)
            .field_u64("lookups", self.lookups)
            .field_u64("stalls", self.stalls)
            .field_u64("stall_us", self.stalled.as_micros() as u64)
            .field_u64("route_us", self.routed.as_micros() as u64)
            .field_raw("apply_us", &sketch(&self.apply_us))
            .field_raw("batch_ops", &sketch(&self.batch_ops))
            .field_raw("occupancy", &sketch(&self.occupancy))
            .finish()
    }

    /// Merges another window's summary into this one (totals add,
    /// sketches merge) — cross-engine aggregation of the *same* window
    /// index. The window identity (`index`, `start`, `end`) must match.
    ///
    /// # Panics
    ///
    /// Panics if the two summaries describe different windows.
    pub fn merge(&mut self, other: &WindowSummary) {
        assert!(
            self.index == other.index && self.start == other.start && self.end == other.end,
            "window summary merge requires the same window"
        );
        self.batches += other.batches;
        self.ops += other.ops;
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.lookups += other.lookups;
        self.stalls += other.stalls;
        self.stalled += other.stalled;
        self.routed += other.routed;
        self.apply_us.merge(&other.apply_us);
        self.batch_ops.merge(&other.batch_ops);
        self.occupancy.merge(&other.occupancy);
    }
}

/// A [`MetricsSink`] that rolls records into fixed-duration
/// [`WindowSummary`]s.
///
/// Window membership is `record.at / window` — a pure function of the
/// record's engine-relative timestamp, not of when the aggregator sees
/// it, so hand-built record streams aggregate deterministically in
/// tests. Records are assumed near-monotonic (the engine emits them so);
/// a straggler older than the current window folds into the current
/// window rather than reopening a closed one.
#[derive(Debug)]
pub struct WindowedAggregator {
    window: Duration,
    current: Option<WindowSummary>,
    completed: Vec<WindowSummary>,
}

impl WindowedAggregator {
    /// Creates an aggregator with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "window length must be positive");
        Self {
            window,
            current: None,
            completed: Vec::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Takes every *closed* window summary accumulated so far (the
    /// still-open current window stays).
    pub fn drain_completed(&mut self) -> Vec<WindowSummary> {
        std::mem::take(&mut self.completed)
    }

    /// Closes the current window and returns every remaining summary —
    /// closed windows first, then the final partial one.
    pub fn finish_all(&mut self) -> Vec<WindowSummary> {
        let mut out = std::mem::take(&mut self.completed);
        out.extend(self.current.take());
        out
    }
}

impl MetricsSink for WindowedAggregator {
    fn record(&mut self, record: &MetricRecord) {
        let index = (record.at.as_nanos() / self.window.as_nanos()) as u64;
        match &self.current {
            Some(cur) if index > cur.index => {
                let closed = self.current.take().expect("current window present");
                self.completed.push(closed);
                self.current = Some(WindowSummary::empty(index, self.window));
            }
            None => self.current = Some(WindowSummary::empty(index, self.window)),
            _ => {} // same window, or a straggler folded into current
        }
        self.current
            .as_mut()
            .expect("current window present")
            .absorb(record);
    }
}

/// A [`MetricsSink`] that streams windowed metrics as JSON lines: one
/// line per closed window (see [`WindowSummary::to_json_line`]),
/// flushed as soon as the window closes, with the final partial window
/// emitted by [`MetricsSink::finish`] (called automatically when the
/// owning engine drops or releases the sink).
///
/// Write errors are swallowed — telemetry must never take down the
/// serving path.
pub struct JsonLinesExporter<W: Write + Send> {
    aggregator: WindowedAggregator,
    out: W,
}

impl<W: Write + Send> JsonLinesExporter<W> {
    /// Creates an exporter writing one JSON line per `window` to `out`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(out: W, window: Duration) -> Self {
        Self {
            aggregator: WindowedAggregator::new(window),
            out,
        }
    }

    fn emit_closed(&mut self) {
        for summary in self.aggregator.drain_completed() {
            let _ = writeln!(self.out, "{}", summary.to_json_line());
        }
    }
}

impl JsonLinesExporter<std::io::Stderr> {
    /// An exporter streaming to stderr — the "watch it live" default for
    /// examples and operators.
    pub fn stderr(window: Duration) -> Self {
        Self::new(std::io::stderr(), window)
    }
}

impl<W: Write + Send> MetricsSink for JsonLinesExporter<W> {
    fn record(&mut self, record: &MetricRecord) {
        self.aggregator.record(record);
        self.emit_closed();
    }

    fn finish(&mut self) {
        for summary in self.aggregator.finish_all() {
            let _ = writeln!(self.out, "{}", summary.to_json_line());
        }
        let _ = self.out.flush();
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonLinesExporter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesExporter")
            .field("window", &self.aggregator.window())
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> Drop for JsonLinesExporter<W> {
    fn drop(&mut self) {
        // Best-effort: a sink released via take_sink already finished
        // (finish_all left nothing), so this only fires for sinks still
        // attached when the engine drops.
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at_ms: u64, ops: u32, stalls: u32) -> MetricRecord {
        MetricRecord {
            seq: 0,
            at: Duration::from_millis(at_ms),
            shard: None,
            producer: 0,
            ops,
            inserts: ops,
            deletes: 0,
            lookups: 0,
            apply: Duration::from_micros(u64::from(ops) * 2),
            routed: Duration::from_micros(u64::from(ops)),
            queue_occupancy: 1,
            stalls,
            stalled: Duration::from_micros(u64::from(stalls) * 50),
        }
    }

    #[test]
    fn shared_sink_collects_records() {
        let sink = SharedSink::new();
        let mut attached = sink.clone();
        attached.record(&record(1, 10, 0));
        attached.record(&record(2, 20, 1));
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].ops, 20);
    }

    #[test]
    fn aggregator_windows_by_record_timestamp() {
        let mut agg = WindowedAggregator::new(Duration::from_millis(10));
        for at in [1u64, 5, 9] {
            agg.record(&record(at, 100, 0));
        }
        agg.record(&record(12, 50, 1)); // closes window 0
        agg.record(&record(31, 25, 0)); // closes window 1 (window 2 empty, skipped)
        let closed = agg.drain_completed();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].index, 0);
        assert_eq!(closed[0].batches, 3);
        assert_eq!(closed[0].ops, 300);
        assert_eq!(closed[1].index, 1);
        assert_eq!(closed[1].stalls, 1);
        let rest = agg.finish_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].index, 3);
        assert_eq!(rest[0].ops, 25);
        assert!(agg.finish_all().is_empty(), "finish must drain");
    }

    #[test]
    fn straggler_records_fold_into_the_current_window() {
        let mut agg = WindowedAggregator::new(Duration::from_millis(10));
        agg.record(&record(15, 10, 0));
        agg.record(&record(3, 10, 0)); // older than the open window
        let all = agg.finish_all();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].batches, 2);
    }

    #[test]
    fn window_summary_merge_adds_everything() {
        let mut agg_a = WindowedAggregator::new(Duration::from_millis(10));
        let mut agg_b = WindowedAggregator::new(Duration::from_millis(10));
        let mut whole = WindowedAggregator::new(Duration::from_millis(10));
        for at in 0..8u64 {
            let r = record(at, 10 + at as u32, (at % 2) as u32);
            whole.record(&r);
            if at % 2 == 0 {
                agg_a.record(&r);
            } else {
                agg_b.record(&r);
            }
        }
        let mut a = agg_a.finish_all().remove(0);
        let b = agg_b.finish_all().remove(0);
        let expected = whole.finish_all().remove(0);
        a.merge(&b);
        assert_eq!(a.batches, expected.batches);
        assert_eq!(a.ops, expected.ops);
        assert_eq!(a.stalls, expected.stalls);
        assert_eq!(a.routed, expected.routed);
        assert_eq!(a.apply_us, expected.apply_us);
        assert_eq!(a.occupancy, expected.occupancy);
    }

    #[test]
    #[should_panic(expected = "same window")]
    fn window_merge_rejects_different_windows() {
        let window = Duration::from_millis(10);
        let mut a = WindowSummary::empty(0, window);
        let b = WindowSummary::empty(1, window);
        a.merge(&b);
    }

    #[test]
    fn empty_window_sketches_export_as_null_not_zero_percentiles() {
        let window = Duration::from_millis(10);
        let mut a = WindowSummary::empty(3, window);
        let b = WindowSummary::empty(3, window);
        // Merging all-empty windows (cross-engine aggregation of idle
        // engines) must not fabricate a zeroed distribution.
        a.merge(&b);
        let line = a.to_json_line();
        for key in ["apply_us", "batch_ops", "occupancy"] {
            assert!(line.contains(&format!("\"{key}\": null")), "{line}");
        }
        assert!(
            !line.contains("\"p99\""),
            "degenerate percentiles leaked: {line}"
        );
    }

    #[test]
    fn exporter_emits_one_line_per_closed_window_plus_finish() {
        let mut exporter = JsonLinesExporter::new(Vec::new(), Duration::from_millis(10));
        exporter.record(&record(1, 10, 0));
        exporter.record(&record(11, 20, 1)); // closes window 0
        exporter.record(&record(25, 30, 0)); // closes window 1
        exporter.finish();
        let text = String::from_utf8(std::mem::take(&mut exporter.out)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            for key in [
                "\"window\"",
                "\"batches\"",
                "\"ops\"",
                "\"stalls\"",
                "\"stall_us\"",
                "\"route_us\"",
                "\"apply_us\"",
                "\"occupancy\"",
            ] {
                assert!(line.contains(key), "missing {key}: {line}");
            }
        }
        assert!(lines[1].contains("\"stalls\": 1"), "{text}");
        // finish drained everything: dropping must not re-emit.
        drop(exporter);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_window_rejected() {
        let _ = WindowedAggregator::new(Duration::ZERO);
    }
}
