//! The sharded engine: routing, batched ingestion, parallel application.

use crate::channel;
use crate::metrics::{EngineStats, ShardStats};
use crate::op::{BatchSummary, Op};
use crate::rounds::{tie_hash, Proposal, RoundReport, RoundsState, Winner};
use crate::shard::Shard;
use crate::sink::{MetricRecord, MetricsSink};
use crate::spsc;
use ba_core::TieBreak;
use ba_hash::{AnyScheme, ChoiceScheme};
use ba_rng::RngKind;
use std::fmt;
use std::time::{Duration, Instant};

/// How shards obtain each ball's choice vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChoiceMode {
    /// Fresh choices from the shard's RNG stream per insert — the paper's
    /// process model. Re-inserting a deleted key draws new bins.
    #[default]
    Stream,
    /// Choices derived from `hash(key, shard_salt)` — the hash-table
    /// model. Re-inserting a key replays its exact `f + k·g` probe
    /// sequence; the RNG stream is consumed only by random tie-breaks.
    Keyed,
}

/// How op streams flow from the producer into the shard workers.
///
/// Either mode yields bit-identical shard states, summaries, and
/// [`EngineStats`](crate::EngineStats) percentiles for the same op
/// stream — each shard still applies exactly its routed subsequence in
/// order — so the axis trades only latency/throughput, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestMode {
    /// Strictly alternate generate/apply phases: buffer one batch, apply
    /// it across all shards, wait for every shard, repeat. Simple and
    /// allocation-light, but producers idle while workers run and vice
    /// versa.
    #[default]
    Phased,
    /// Overlap production with application: one or more producer stages
    /// partition the op stream and ship per-shard batches into bounded
    /// lock-free SPSC rings (see [`crate::spsc`]) while the persistent
    /// workers apply earlier batches. `queue_depth` caps how many
    /// batches may sit queued per (producer, shard) ring; a full ring
    /// blocks that producer (backpressure) rather than buffering without
    /// limit. With `producers > 1`, chunks of the stream are routed by
    /// producer threads in deterministic round-robin and every shard
    /// worker merges its per-producer rings in (producer, seq) order, so
    /// results stay bit-identical to sequential serving regardless of
    /// producer count or timing.
    Pipelined {
        /// Maximum batches queued per (producer, shard) ring before the
        /// producer blocks. Must be a power of two (ring granularity).
        /// Depth 1 is a strict double-buffer (worker applies batch `k`
        /// while the producer fills `k+1`); larger depths absorb
        /// burstier routing at the cost of memory.
        queue_depth: usize,
        /// Number of producer threads routing the op stream. 1 routes on
        /// the calling thread (no fan-out stage); `N > 1` spawns N
        /// routing threads fed round-robin with stream chunks.
        producers: usize,
    },
    /// Resolve each batch's inserts in synchronized bulk-parallel
    /// rounds over the *global* bin space (see [`crate::rounds`]):
    /// every pending ball proposes its next keyed probe, bins accept
    /// proposals below the round's load threshold in salted-key-hash
    /// tie order, and losers re-propose next round. Deletes and lookups
    /// apply at batch barriers against pre-batch state. Placement is a
    /// pure function of *(batch contents as a multiset, seed)* —
    /// independent of op order within the batch, worker mode, producer
    /// count, and shard count — a strictly stronger determinism
    /// contract than the other modes' bit-identity to sequential
    /// serving. [`ChoiceMode`] and [`ba_core::TieBreak`] are ignored:
    /// probes are always keyed off the rounds salt and ties always
    /// break by key hash.
    Rounds {
        /// Number of threads deriving probe vectors in the propose
        /// step. 1 proposes on the calling thread; `N > 1` splits the
        /// batch's balls into N contiguous chunks, one scoped thread
        /// each. Results never depend on this value.
        producers: usize,
    },
}

/// How batches are applied across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkerMode {
    /// Apply shard by shard on the calling thread.
    Sequential,
    /// Spawn scoped threads per batch — the pre-worker-pool baseline,
    /// kept so `engine_throughput` can benchmark the pool against it.
    Scoped,
    /// Long-lived channel-fed worker threads, one per shard, spawned on
    /// the first parallel batch and joined when the engine drops.
    #[default]
    Persistent,
}

/// Configuration for a sharded engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of independent shards.
    pub shards: usize,
    /// Bins per shard table.
    pub bins_per_shard: u64,
    /// Choices per ball within a shard.
    pub d: usize,
    /// Tie-breaking rule used by every shard.
    pub tie: TieBreak,
    /// Master seed; shard `i` uses stream `SeedSequence::new(seed).child(i)`.
    pub seed: u64,
    /// Where choice vectors come from (stream or keyed derivation).
    pub mode: ChoiceMode,
    /// Which generator family drives each shard's stream (the paper's
    /// PRNG ablation, at the engine layer).
    pub rng: RngKind,
    /// How batches are applied across shards. Results are bit-identical
    /// for every mode; only throughput differs.
    pub workers: WorkerMode,
    /// How op streams are ingested: strict generate/apply phases or the
    /// pipelined producer/worker overlap. Results are bit-identical for
    /// either mode; only throughput and memory bounds differ.
    pub ingest: IngestMode,
}

/// A structurally invalid [`EngineConfig`], caught at engine
/// construction — before any ops flow — instead of deep inside a
/// serving call mid-stream. Every variant's message names the builder
/// call that produced the bad value, so the fix is one grep away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `EngineConfig::new` was given zero shards.
    ZeroShards,
    /// Pipelined ingestion was configured with a zero ring depth.
    ZeroQueueDepth,
    /// Pipelined ingestion was configured with a ring depth that is not
    /// a power of two (the SPSC ring's granularity).
    QueueDepthNotPowerOfTwo(usize),
    /// Pipelined ingestion was configured with zero producer threads.
    ZeroProducers,
    /// Rounds ingestion was configured with zero propose threads.
    ZeroRoundsProducers,
    /// A cluster was configured with zero partitions.
    ZeroPartitions,
    /// A cluster ring was configured with zero virtual nodes per node.
    ZeroVnodes,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::ZeroShards => {
                write!(f, "EngineConfig::new(0, ..): need at least one shard")
            }
            ConfigError::ZeroQueueDepth => write!(
                f,
                "EngineConfig::pipelined(0) / pipelined_producers(0, ..): \
                 queue depth must be positive"
            ),
            ConfigError::QueueDepthNotPowerOfTwo(depth) => write!(
                f,
                "EngineConfig::pipelined({depth}): queue depth must be a \
                 power of two (SPSC ring granularity)"
            ),
            ConfigError::ZeroProducers => write!(
                f,
                "EngineConfig::pipelined_producers(.., 0): need at least one producer"
            ),
            ConfigError::ZeroRoundsProducers => write!(
                f,
                "EngineConfig::rounds_producers(0): need at least one propose thread"
            ),
            ConfigError::ZeroPartitions => write!(
                f,
                "ClusterConfig::partitions(0): need at least one partition"
            ),
            ConfigError::ZeroVnodes => write!(
                f,
                "ClusterConfig::vnodes(0): need at least one virtual node per node"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl EngineConfig {
    /// A config with random ties, seed 1, stream choices, the xoshiro
    /// generator, and persistent parallel application.
    pub fn new(shards: usize, bins_per_shard: u64, d: usize) -> Self {
        Self {
            shards,
            bins_per_shard,
            d,
            tie: TieBreak::Random,
            seed: 1,
            mode: ChoiceMode::default(),
            rng: RngKind::default(),
            workers: WorkerMode::default(),
            ingest: IngestMode::default(),
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the tie-breaking rule.
    pub fn tie(mut self, tie: TieBreak) -> Self {
        self.tie = tie;
        self
    }

    /// Sets the choice mode.
    pub fn mode(mut self, mode: ChoiceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects keyed choice derivation (`hash(key, shard_salt)`).
    pub fn keyed(self) -> Self {
        self.mode(ChoiceMode::Keyed)
    }

    /// Sets the generator family for every shard's stream.
    pub fn rng(mut self, rng: RngKind) -> Self {
        self.rng = rng;
        self
    }

    /// Sets the worker mode for batch application.
    pub fn workers(mut self, workers: WorkerMode) -> Self {
        self.workers = workers;
        self
    }

    /// Chooses sequential (deterministic-by-construction) application.
    pub fn sequential(self) -> Self {
        self.workers(WorkerMode::Sequential)
    }

    /// Sets the ingestion mode for [`Engine::serve`]/[`Engine::serve_replay`].
    pub fn ingest(mut self, ingest: IngestMode) -> Self {
        self.ingest = ingest;
        self
    }

    /// Selects pipelined ingestion with the given per-worker queue depth
    /// and a single producer routing on the calling thread
    /// (see [`IngestMode::Pipelined`]).
    pub fn pipelined(self, queue_depth: usize) -> Self {
        self.pipelined_producers(queue_depth, 1)
    }

    /// Selects pipelined ingestion with `producers` routing threads and
    /// the given per-(producer, shard) ring depth
    /// (see [`IngestMode::Pipelined`]).
    pub fn pipelined_producers(self, queue_depth: usize, producers: usize) -> Self {
        self.ingest(IngestMode::Pipelined {
            queue_depth,
            producers,
        })
    }

    /// Selects round-based bulk-parallel ingestion with probe
    /// derivation on the calling thread (see [`IngestMode::Rounds`]).
    pub fn rounds(self) -> Self {
        self.rounds_producers(1)
    }

    /// Selects round-based bulk-parallel ingestion with `producers`
    /// propose threads (see [`IngestMode::Rounds`]). Results never
    /// depend on the thread count.
    pub fn rounds_producers(self, producers: usize) -> Self {
        self.ingest(IngestMode::Rounds { producers })
    }

    /// Checks the config's structural invariants, returning the first
    /// violation. Engine constructors
    /// ([`Engine::with_scheme_factory`]/[`Engine::by_name`]) call this and
    /// panic with the error's message, so an `EngineConfig::pipelined(3)`
    /// fails when the engine is built — naming the offending builder call
    /// — rather than deep inside `serve_pipelined_producers` mid-run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if let IngestMode::Pipelined {
            queue_depth,
            producers,
        } = self.ingest
        {
            if queue_depth == 0 {
                return Err(ConfigError::ZeroQueueDepth);
            }
            if !queue_depth.is_power_of_two() {
                return Err(ConfigError::QueueDepthNotPowerOfTwo(queue_depth));
            }
            if producers == 0 {
                return Err(ConfigError::ZeroProducers);
            }
        }
        if let IngestMode::Rounds { producers } = self.ingest {
            if producers == 0 {
                return Err(ConfigError::ZeroRoundsProducers);
            }
        }
        Ok(())
    }
}

/// Routes a key to a shard: SplitMix64 finalizer, then a multiply-shift
/// range reduction. Stable across runs — the route is part of the engine's
/// deterministic contract.
#[inline]
pub fn route(key: u64, shards: usize) -> usize {
    let mixed = ba_rng::SplitMix64::mix(key ^ 0x9E6C_63D0_876A_3F6B);
    ((mixed as u128 * shards as u128) >> 64) as usize
}

/// One shipped unit on the pipelined hot path: the ops a producer routed
/// to one shard from one stream chunk, stamped with the sequence number
/// the worker's deterministic merge orders by. With a single producer,
/// `seq` is the per-shard ship index; with N producers it is the global
/// chunk index (chunk `k` is routed by producer `k % N`, so the worker's
/// round-robin receive replays chunks in stream order).
struct Batch {
    seq: u64,
    ops: Vec<Op>,
}

/// One unit of work for a persistent shard worker. The shard travels
/// *by value* through the channel — a shallow move of the struct, not a
/// deep copy of its bin table and key index — so between jobs the engine
/// keeps full ownership (and `&`-access) to every shard.
enum Job<S> {
    /// Phased mode: apply one pre-partitioned batch and report back. The
    /// op buffer rides home with the result so the engine reuses it for
    /// the next batch instead of reallocating.
    Batch {
        /// The worker's shard, shipped for the duration of the batch.
        shard: Shard<S>,
        /// This shard's slice of the batch, in arrival order.
        ops: Vec<Op>,
    },
    /// Pipelined mode: own the shard for a whole ingestion stream,
    /// applying batches as the producers ship them into this shard's
    /// SPSC rings, until every producer disconnects. Drained op buffers
    /// return through `recycle` so producers refill them instead of
    /// allocating fresh ones.
    Stream {
        /// The worker's shard, shipped for the duration of the stream.
        shard: Shard<S>,
        /// One bounded SPSC ring per producer; the worker merges them in
        /// deterministic (producer, seq) round-robin order. Disconnect of
        /// the ring whose turn it is ends the stream.
        batches: Vec<spsc::RingConsumer<Batch>>,
        /// Return paths for drained op buffers, indexed like `batches`
        /// (each buffer goes home to the producer that filled it).
        recycle: Vec<channel::Sender<Vec<Op>>>,
        /// Whether to time each batch apply for metrics (set only when a
        /// sink is attached, so untracked streams pay nothing).
        track: bool,
    },
    /// Rounds mode: resolve one synchronized round's proposals against
    /// this shard's bins (see [`crate::rounds`]) and report the winners.
    Resolve {
        /// The worker's shard, shipped for the duration of the round.
        shard: Shard<S>,
        /// This shard's slice of the round's proposals (bins are
        /// shard-local).
        proposals: Vec<Proposal>,
        /// The round's load threshold: bins accept while below it.
        threshold: u32,
    },
}

/// What a worker reports after finishing a job: the shard (returned to
/// its slot), the summary of everything applied, the drained op buffer
/// for reuse (batch jobs; stream jobs recycle buffers through their own
/// channel and return an empty placeholder), and — for tracked stream
/// jobs — the per-batch apply latencies, in batch arrival order, that
/// the engine joins with its producer-side ship records.
struct JobDone<S> {
    shard: Shard<S>,
    summary: BatchSummary,
    buffer: Vec<Op>,
    applies: Vec<Duration>,
    /// Accepted proposals of a [`Job::Resolve`] round; empty for
    /// batch/stream jobs.
    winners: Vec<Winner>,
}

/// The persistent worker pool: one long-lived thread per shard, fed
/// through a per-worker job channel and reporting through a per-worker
/// results channel. Per-worker result channels (rather than one shared
/// queue) make worker death observable: a panicking worker drops its
/// sender, so the engine's `recv` on that worker's channel errors out
/// instead of blocking forever. Dropping the pool closes the job channels
/// (each worker's `recv` then errors out and the thread exits) and joins
/// every handle — graceful shutdown without flags or timeouts.
struct WorkerPool<S> {
    jobs: Vec<channel::Sender<Job<S>>>,
    results: Vec<channel::Receiver<JobDone<S>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<S: ChoiceScheme + 'static> WorkerPool<S> {
    fn spawn(shards: usize) -> Self {
        let mut jobs = Vec::with_capacity(shards);
        let mut results = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for id in 0..shards {
            let (tx, rx) = channel::channel::<Job<S>>();
            let (results_tx, results_rx) = channel::channel();
            let handle = std::thread::Builder::new()
                .name(format!("ba-shard-{id}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let result = match job {
                            Job::Batch { mut shard, ops } => {
                                let summary = shard.apply(&ops);
                                JobDone {
                                    shard,
                                    summary,
                                    buffer: ops,
                                    applies: Vec::new(),
                                    winners: Vec::new(),
                                }
                            }
                            Job::Resolve {
                                mut shard,
                                proposals,
                                threshold,
                            } => {
                                let winners = shard.rounds_resolve(proposals, threshold);
                                JobDone {
                                    shard,
                                    summary: BatchSummary::default(),
                                    buffer: Vec::new(),
                                    applies: Vec::new(),
                                    winners,
                                }
                            }
                            Job::Stream {
                                mut shard,
                                batches,
                                recycle,
                                track,
                            } => {
                                let mut summary = BatchSummary::default();
                                let mut applies = Vec::new();
                                let producers = batches.len();
                                // Deterministic cross-producer merge: chunk
                                // `k` of the stream was routed by producer
                                // `k % producers` and shipped with `seq = k`
                                // (producers ship one batch per chunk per
                                // shard, empty ones included), so receiving
                                // in strict round-robin replays this shard's
                                // ops in stream order. A disconnect at the
                                // ring whose turn it is proves no later
                                // chunk exists anywhere — producers ship
                                // their chunks in order before exiting — so
                                // the whole stream has drained.
                                let mut chunk = 0usize;
                                loop {
                                    let p = chunk % producers;
                                    let Ok(Batch { seq, mut ops }) = batches[p].recv() else {
                                        break;
                                    };
                                    debug_assert_eq!(
                                        seq as usize, chunk,
                                        "cross-producer merge out of order"
                                    );
                                    if track {
                                        let t0 = Instant::now();
                                        summary.absorb(&shard.apply(&ops));
                                        applies.push(t0.elapsed());
                                    } else {
                                        summary.absorb(&shard.apply(&ops));
                                    }
                                    ops.clear();
                                    // A recycle error means the producer is
                                    // gone (it panicked); keep draining so
                                    // the stream still ends cleanly.
                                    let _ = recycle[p].send(ops);
                                    chunk += 1;
                                }
                                JobDone {
                                    shard,
                                    summary,
                                    buffer: Vec::new(),
                                    applies,
                                    winners: Vec::new(),
                                }
                            }
                        };
                        // A send error means the engine is gone mid-job
                        // (it panicked); nothing left to report to.
                        if results_tx.send(result).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker thread");
            jobs.push(tx);
            results.push(results_rx);
            handles.push(handle);
        }
        Self {
            jobs,
            results,
            handles,
        }
    }
}

impl<S> fmt::Debug for WorkerPool<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl<S> Drop for WorkerPool<S> {
    fn drop(&mut self) {
        // Disconnect every job channel; workers drain and exit.
        self.jobs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A sharded, concurrently-served balanced-allocation engine.
///
/// Every shard runs the paper's "least loaded of d choices" placement over
/// its own bin table, with choices produced by its own copy of a
/// [`ChoiceScheme`] — drawn from the shard's private RNG stream
/// ([`ChoiceMode::Stream`]) or derived from each key
/// ([`ChoiceMode::Keyed`]). Batches of [`Op`]s are partitioned by
/// [`route`] and applied to all shards — by persistent channel-fed worker
/// threads under [`WorkerMode::Persistent`] — and each shard's outcome
/// depends only on its own ordered op subsequence, so the engine's final
/// state is bit-identical between sequential and parallel application and
/// across any number of worker threads.
pub struct Engine<S> {
    config: EngineConfig,
    /// `None` only transiently while a shard is out with a worker during
    /// a persistent parallel batch; always `Some` between public calls.
    shards: Vec<Option<Shard<S>>>,
    pool: Option<WorkerPool<S>>,
    /// Per-shard partition buffers, reused across batches so the hot path
    /// never allocates a fresh `Vec<Vec<Op>>`. Under persistent workers
    /// the buffers travel to the workers with each batch job and ride
    /// home with the results — double-buffered in the sense that the
    /// engine and the workers alternate ownership without either side
    /// ever reallocating.
    scratch: Vec<Vec<Op>>,
    /// Reusable chunking buffer for [`Engine::serve_replay`], kept across
    /// calls so repeated serving allocates nothing after warm-up.
    replay_buf: Vec<Op>,
    /// Drained pipeline batch buffers reclaimed at the end of each
    /// [`Engine::serve_pipelined`] call, so repeated short streams reuse
    /// their buffers across calls just like phased serving reuses
    /// `scratch`.
    spare_buffers: Vec<Vec<Op>>,
    /// Optional per-batch metrics consumer (see [`Engine::set_sink`]).
    /// Sinks observe, never steer: no sink call can change what the
    /// engine allocates, so results stay bit-identical with or without
    /// one attached.
    sink: Option<Box<dyn MetricsSink + Send>>,
    /// Construction instant — the monotonic anchor every
    /// [`MetricRecord::at`] offset is measured from.
    started: Instant,
    /// Records emitted so far; the next record's sequence number.
    emitted: u64,
    /// Non-fatal configuration hazards noticed while serving (e.g. a
    /// pipelined `batch_size` smaller than the shard count, which clamps
    /// every per-shard batch to one op). Results stay correct; drain via
    /// [`Engine::take_warnings`].
    warnings: Vec<String>,
    /// Rounds-mode companion state (global scheme, salt, key index,
    /// report). `Some` exactly when the config's ingest mode is
    /// [`IngestMode::Rounds`].
    rounds: Option<RoundsState<S>>,
}

impl<S: fmt::Debug> fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("shards", &self.shards)
            .field("pool", &self.pool)
            .field("sink", &self.sink.is_some())
            .field("emitted", &self.emitted)
            .finish_non_exhaustive()
    }
}

/// Counts the op kinds in a batch — the record's pre-apply op mix.
fn op_mix(ops: &[Op]) -> (u32, u32, u32) {
    let (mut inserts, mut deletes, mut lookups) = (0u32, 0u32, 0u32);
    for op in ops {
        match op {
            Op::Insert(_) => inserts += 1,
            Op::Delete(_) => deletes += 1,
            Op::Lookup(_) => lookups += 1,
        }
    }
    (inserts, deletes, lookups)
}

/// Producer-side half of a pipelined batch measurement: everything known
/// at ship time, joined with the worker-side apply latency at stream end.
/// `(shard, chunk)` addresses the matching apply sample — `chunk` is the
/// per-shard ship index under a single producer and the global chunk
/// index under N producers; either way it equals the worker's receive
/// index for that shard.
struct PendingShip {
    at: Duration,
    shard: usize,
    chunk: u64,
    producer: u32,
    routed: Duration,
    ops: u32,
    inserts: u32,
    deletes: u32,
    lookups: u32,
    stalls: u32,
    stalled: Duration,
    occupancy: u32,
}

/// What one producer thread hands back after its slice of the stream is
/// routed and shipped: its ship-side metric halves, its recycle receiver
/// (drained into the engine's spare pool after the workers finish), its
/// leftover buffers, and — if a ring send failed — the shard whose
/// worker died, so the engine can surface that worker's panic.
struct ProducerReport {
    pending: Vec<PendingShip>,
    recycle: channel::Receiver<Vec<Op>>,
    spare: Vec<Vec<Op>>,
    dead_shard: Option<usize>,
}

/// Grabs a cleared op buffer: recycled from a worker if one is waiting,
/// a retained spare otherwise, a fresh allocation only during warm-up.
fn grab_buffer(
    spare: &mut Vec<Vec<Op>>,
    recycle: &channel::Receiver<Vec<Op>>,
    batch_size: usize,
) -> Vec<Op> {
    let mut buf = recycle
        .try_recv()
        .or_else(|| spare.pop())
        .unwrap_or_default();
    buf.clear();
    buf.reserve(batch_size);
    buf
}

/// The routing stage one producer thread runs under
/// [`Engine::serve_pipelined_producers`] with `producers > 1`: receive
/// `(chunk_index, ops)` chunks from the calling thread, route each chunk
/// into per-shard buffers, and ship one [`Batch`] per shard per chunk —
/// empty ones included, so every worker's (producer, seq) round-robin
/// merge stays aligned with the chunk index.
#[allow(clippy::too_many_arguments)]
fn producer_stage(
    producer: u32,
    rings: Vec<spsc::RingProducer<Batch>>,
    recycle: channel::Receiver<Vec<Op>>,
    chunks: channel::Receiver<(u64, Vec<Op>)>,
    chunks_back: channel::Sender<Vec<Op>>,
    batch_size: usize,
    started: Instant,
    track: bool,
) -> ProducerReport {
    let shards = rings.len();
    let mut pending = Vec::new();
    let mut spare: Vec<Vec<Op>> = Vec::new();
    let mut filling: Vec<Vec<Op>> = (0..shards)
        .map(|_| grab_buffer(&mut spare, &recycle, batch_size))
        .collect();
    while let Ok((chunk, mut buf)) = chunks.recv() {
        let route_t0 = track.then(Instant::now);
        let chunk_ops = buf.len();
        for &op in &buf {
            filling[route(op.key(), shards)].push(op);
        }
        // Routing cost for the whole chunk; attributed to shipped
        // batches below, proportionally to their share of the chunk.
        let routed_chunk = route_t0.map(|t| t.elapsed()).unwrap_or_default();
        buf.clear();
        let _ = chunks_back.send(buf);
        for (s, ring) in rings.iter().enumerate() {
            let full = std::mem::replace(
                &mut filling[s],
                grab_buffer(&mut spare, &recycle, batch_size),
            );
            let batch_ops = full.len();
            if !track {
                if ring
                    .send(Batch {
                        seq: chunk,
                        ops: full,
                    })
                    .is_err()
                {
                    return ProducerReport {
                        pending,
                        recycle,
                        spare,
                        dead_shard: Some(s),
                    };
                }
                continue;
            }
            let (inserts, deletes, lookups) = op_mix(&full);
            let Ok(stalled) = ring.send_tracked(Batch {
                seq: chunk,
                ops: full,
            }) else {
                return ProducerReport {
                    pending,
                    recycle,
                    spare,
                    dead_shard: Some(s),
                };
            };
            let routed = if chunk_ops > 0 {
                routed_chunk.mul_f64(batch_ops as f64 / chunk_ops as f64)
            } else {
                Duration::ZERO
            };
            pending.push(PendingShip {
                at: started.elapsed(),
                shard: s,
                chunk,
                producer,
                routed,
                ops: batch_ops as u32,
                inserts,
                deletes,
                lookups,
                stalls: u32::from(stalled > Duration::ZERO),
                stalled,
                occupancy: ring.queued() as u32,
            });
        }
    }
    // Chunk distribution disconnected: the stream is over. Every chunk
    // shipped in full, so the filling buffers are all empty — keep their
    // capacity. Dropping `rings` (by returning) disconnects the workers.
    spare.extend(filling);
    ProducerReport {
        pending,
        recycle,
        spare,
        dead_shard: None,
    }
}

impl Engine<AnyScheme> {
    /// Builds an engine whose shards run the named scheme
    /// (see [`AnyScheme::by_name`]). Returns `None` for an unknown name.
    pub fn by_name(name: &str, config: EngineConfig) -> Option<Self> {
        // Probe once so an unknown name fails before any shard is built.
        AnyScheme::by_name(name, config.bins_per_shard, config.d)?;
        Some(Self::with_scheme_factory(config, |cfg| {
            AnyScheme::by_name(name, cfg.bins_per_shard, cfg.d).expect("probed above")
        }))
    }
}

impl<S: ChoiceScheme + 'static> Engine<S> {
    /// Builds an engine, constructing one scheme per shard via `factory`.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`]'s message — which names the
    /// offending builder call — if the config fails
    /// [`EngineConfig::validate`], so a bad pipeline depth or producer
    /// count is rejected here rather than mid-serve.
    pub fn with_scheme_factory(config: EngineConfig, factory: impl Fn(&EngineConfig) -> S) -> Self {
        if let Err(err) = config.validate() {
            panic!("invalid EngineConfig: {err}");
        }
        let shards = (0..config.shards)
            .map(|id| Some(Shard::new(id, factory(&config), &config)))
            .collect();
        // Rounds mode places over the global bin space: build one extra
        // scheme spanning every shard's bins by handing the factory a
        // synthetic single-shard config of the global size.
        let rounds = matches!(config.ingest, IngestMode::Rounds { .. }).then(|| {
            let mut global = config.clone();
            global.bins_per_shard = config.shards as u64 * config.bins_per_shard;
            global.shards = 1;
            RoundsState::new(
                factory(&global),
                config.seed,
                config.shards,
                config.bins_per_shard,
            )
        });
        Self {
            config,
            shards,
            pool: None,
            scratch: Vec::new(),
            replay_buf: Vec::new(),
            spare_buffers: Vec::new(),
            sink: None,
            started: Instant::now(),
            emitted: 0,
            warnings: Vec::new(),
            rounds,
        }
    }

    /// Attaches a metrics sink: every subsequently applied batch emits
    /// one [`MetricRecord`] into it (phased batches as they apply;
    /// pipelined batches when their stream drains — the two halves of a
    /// pipelined measurement live on different threads and join at end
    /// of stream). Replaces — after flushing — any sink already
    /// attached. Sinks only observe, so attaching one never changes
    /// allocation results.
    pub fn set_sink(&mut self, sink: Box<dyn MetricsSink + Send>) {
        if let Some(mut old) = self.sink.replace(sink) {
            old.finish();
        }
    }

    /// Detaches the sink, flushing it first (so e.g. a
    /// [`JsonLinesExporter`](crate::JsonLinesExporter) writes its final
    /// partial window). Returns `None` if no sink was attached.
    pub fn take_sink(&mut self) -> Option<Box<dyn MetricsSink + Send>> {
        let mut sink = self.sink.take()?;
        sink.finish();
        Some(sink)
    }

    /// Whether a metrics sink is currently attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Drains the non-fatal configuration warnings recorded while
    /// serving, oldest first. Warnings flag hazards that degrade
    /// throughput but never correctness — today the one producer is
    /// [`Engine::serve_replay`] clamping a pipelined `batch_size` smaller
    /// than the shard count (see its docs). Each hazard is recorded once
    /// per serving call, so callers polling between calls see every
    /// occurrence.
    pub fn take_warnings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.warnings)
    }

    /// The shard at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= config.shards`.
    pub fn shard(&self, id: usize) -> &Shard<S> {
        self.shards[id]
            .as_ref()
            .expect("shard present between batches")
    }

    /// Read access to the shards (metrics, tests), indexed by shard id.
    pub fn shards(&self) -> Vec<&Shard<S>> {
        self.iter_shards().collect()
    }

    /// Mutable access to one shard between batches (internal).
    fn shard_slot(&mut self, id: usize) -> &mut Shard<S> {
        self.shards[id]
            .as_mut()
            .expect("shard present between batches")
    }

    /// Allocation-free shard iteration for internal aggregates.
    fn iter_shards(&self) -> impl Iterator<Item = &Shard<S>> {
        self.shards
            .iter()
            .map(|slot| slot.as_ref().expect("shard present between batches"))
    }

    /// Total balls currently placed across all shards.
    pub fn total_balls(&self) -> u64 {
        self.iter_shards().map(|s| s.allocation().balls()).sum()
    }

    /// The maximum bin load across all shards.
    pub fn max_load(&self) -> u32 {
        self.iter_shards()
            .map(|s| s.allocation().max_load())
            .max()
            .unwrap_or(0)
    }

    /// Partitions `ops` by shard into the reusable scratch buffers,
    /// preserving arrival order per shard. Buffers are sized once at
    /// `ops.len() / shards + 1` — the expected per-shard share — and
    /// reused (cleared, never shrunk) on every subsequent batch.
    fn partition_into_scratch(&mut self, ops: &[Op]) {
        let shards = self.shards.len();
        if self.scratch.len() != shards {
            let cap = ops.len() / shards + 1;
            self.scratch = (0..shards).map(|_| Vec::with_capacity(cap)).collect();
        } else {
            for buf in &mut self.scratch {
                buf.clear();
            }
        }
        for &op in ops {
            self.scratch[route(op.key(), shards)].push(op);
        }
    }

    /// Applies one batch of operations and returns its aggregate summary.
    ///
    /// Partitioning is stable: two ops on the same key always reach the
    /// same shard in their batch order, so insert-then-delete sequences
    /// behave as written even when shards run on different threads.
    ///
    /// With a sink attached (see [`Engine::set_sink`]) each call also
    /// emits one engine-wide [`MetricRecord`] (`shard: None`; queue
    /// fields zero — phased batches never touch the bounded queues).
    pub fn apply_batch(&mut self, ops: &[Op]) -> BatchSummary {
        // Take the sink out for the duration so the inner path borrows
        // `self` freely; restore it afterwards.
        let Some(mut sink) = self.sink.take() else {
            return self.apply_batch_inner(ops);
        };
        let at = self.started.elapsed();
        let t0 = Instant::now();
        let summary = self.apply_batch_inner(ops);
        let apply = t0.elapsed();
        let (inserts, deletes, lookups) = op_mix(ops);
        let record = MetricRecord {
            seq: self.emitted,
            at,
            shard: None,
            producer: 0,
            ops: ops.len() as u32,
            inserts,
            deletes,
            lookups,
            apply,
            routed: Duration::ZERO,
            queue_occupancy: 0,
            stalls: 0,
            stalled: Duration::ZERO,
        };
        self.emitted += 1;
        sink.record(&record);
        self.sink = Some(sink);
        summary
    }

    /// The sink-free batch application path shared by every worker mode.
    fn apply_batch_inner(&mut self, ops: &[Op]) -> BatchSummary {
        if let IngestMode::Rounds { producers } = self.config.ingest {
            return self.apply_batch_rounds(ops, producers);
        }
        let mut total = BatchSummary::default();
        if self.shards.len() == 1 {
            // One shard: everything routes to it — apply the batch slice
            // directly, no partition pass at all.
            let shard = self.shards[0]
                .as_mut()
                .expect("shard present between batches");
            return shard.apply(ops);
        }
        self.partition_into_scratch(ops);
        match self.config.workers {
            WorkerMode::Sequential => {
                for (slot, ops) in self.shards.iter_mut().zip(self.scratch.iter()) {
                    if ops.is_empty() {
                        continue;
                    }
                    let shard = slot.as_mut().expect("shard present between batches");
                    total.absorb(&shard.apply(ops));
                }
            }
            WorkerMode::Scoped => {
                let scratch = &self.scratch;
                let summaries = std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(scratch.iter())
                        .filter(|(_, ops)| !ops.is_empty())
                        .map(|(slot, ops)| {
                            let shard = slot.as_mut().expect("shard present between batches");
                            scope.spawn(move || shard.apply(ops))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect::<Vec<_>>()
                });
                for summary in &summaries {
                    total.absorb(summary);
                }
            }
            WorkerMode::Persistent => {
                let pool = self
                    .pool
                    .get_or_insert_with(|| WorkerPool::spawn(self.shards.len()));
                for id in 0..self.shards.len() {
                    if self.scratch[id].is_empty() {
                        continue;
                    }
                    let shard = self.shards[id]
                        .take()
                        .expect("shard present between batches");
                    let ops = std::mem::take(&mut self.scratch[id]);
                    if pool.jobs[id].send(Job::Batch { shard, ops }).is_err() {
                        panic!("shard worker {id} exited early");
                    }
                }
                for id in 0..self.shards.len() {
                    if self.shards[id].is_some() {
                        continue; // shard never left: empty slice this batch
                    }
                    // A recv error means the worker dropped its sender
                    // without replying — it panicked mid-apply.
                    let done = pool.results[id]
                        .recv()
                        .unwrap_or_else(|_| panic!("shard worker {id} panicked"));
                    self.shards[id] = Some(done.shard);
                    self.scratch[id] = done.buffer;
                    total.absorb(&done.summary);
                }
            }
        }
        total
    }

    /// Drains the accumulated [`RoundReport`] (rounds taken,
    /// re-proposals per round, max load) under [`IngestMode::Rounds`].
    /// Returns `None` when the engine is not in rounds mode; subsequent
    /// calls return a fresh report covering only batches resolved since
    /// this one.
    pub fn take_round_report(&mut self) -> Option<RoundReport> {
        self.rounds
            .as_mut()
            .map(|st| std::mem::take(&mut st.report))
    }

    /// The rounds-ingestion batch path (see [`crate::rounds`] for the
    /// algorithm and its determinism contract): lookups observe
    /// pre-batch state, deletes apply in ascending key order against
    /// pre-batch placements, then the batch's inserts resolve in
    /// synchronized propose/resolve rounds over the global bin space.
    fn apply_batch_rounds(&mut self, ops: &[Op], producers: usize) -> BatchSummary {
        let mut st = self
            .rounds
            .take()
            .expect("rounds state present under IngestMode::Rounds");
        let mut summary = BatchSummary::default();
        let shards = self.shards.len();
        let bins_per_shard = self.config.bins_per_shard;

        // Barrier 1: lookups, against the placements the batch started
        // with. Each lookup reads the global index independently, so
        // the recorded depths form a multiset pure in the batch's
        // lookup keys — op order never matters. Observations attribute
        // to the key's routed shard, matching the other ingest modes.
        for &op in ops {
            if let Op::Lookup(key) = op {
                let depth = st.index.depth(key) as u32;
                self.shard_slot(route(key, shards)).rounds_lookup(depth);
                summary.lookups += 1;
                summary.hits += u64::from(depth > 0);
            }
        }

        // Barrier 2: deletes, against pre-batch placements, resolved in
        // ascending key order (LIFO within a key's stack) so the
        // outcome is pure in the batch's delete multiset. Inserts from
        // this same batch are not yet placed and thus not deletable — a
        // documented semantic difference from sequential ingestion.
        let mut deletes: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Delete(k) => Some(*k),
                _ => None,
            })
            .collect();
        deletes.sort_unstable();
        for key in deletes {
            match st.index.pop(key) {
                Some(global) => {
                    let owner = (global / bins_per_shard) as usize;
                    self.shard_slot(owner)
                        .rounds_delete(global % bins_per_shard);
                    summary.deletes += 1;
                }
                None => {
                    self.shard_slot(route(key, shards)).rounds_missed_delete();
                    summary.missed_deletes += 1;
                }
            }
        }

        // The batch's balls, in canonical (key, duplicate-index) order:
        // every later step is indexed by position in this list, so the
        // whole resolution is pure in the insert multiset.
        let mut keys: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Insert(k) => Some(*k),
                _ => None,
            })
            .collect();
        keys.sort_unstable();
        let balls = keys.len();
        st.report.batches += 1;
        if balls == 0 {
            self.rounds = Some(st);
            return summary;
        }
        let d = self.config.d;

        // Propose prep: each ball's d global probes and its tie hash,
        // derived once. `instance` numbers duplicate inserts of a key so
        // their ties differ. The derivation is embarrassingly parallel:
        // `producers` scoped threads fill disjoint chunks of the arena.
        let mut instances = vec![0u64; balls];
        for i in 1..balls {
            if keys[i] == keys[i - 1] {
                instances[i] = instances[i - 1] + 1;
            }
        }
        let mut probes = vec![0u64; balls * d];
        let mut ties = vec![0u64; balls];
        {
            let scheme = &st.scheme;
            let salt = st.salt;
            let fill = |keys: &[u64], inst: &[u64], probes: &mut [u64], ties: &mut [u64]| {
                // One batched-kernel dispatch fills the whole chunk's
                // probe matrix (row i = ball i's d global probes),
                // bit-identical to per-ball choices_for by contract.
                scheme.choices_for_batch(keys, salt, probes);
                for (i, (&key, &instance)) in keys.iter().zip(inst).enumerate() {
                    ties[i] = tie_hash(key, salt, instance);
                }
            };
            if producers > 1 && balls >= producers {
                let chunk = balls.div_ceil(producers);
                std::thread::scope(|scope| {
                    for (((keys, inst), probes), ties) in keys
                        .chunks(chunk)
                        .zip(instances.chunks(chunk))
                        .zip(probes.chunks_mut(chunk * d))
                        .zip(ties.chunks_mut(chunk))
                    {
                        scope.spawn(move || fill(keys, inst, probes, ties));
                    }
                });
            } else {
                fill(&keys, &instances, &mut probes, &mut ties);
            }
        }

        // The round loop. The threshold starts one above the emptiest
        // bin and rises by one whenever d consecutive rounds place
        // nothing — by then every pending ball has offered all d of its
        // probes at the current threshold, so raising it is the only
        // way forward (and guarantees termination).
        let mut threshold = self
            .iter_shards()
            .flat_map(|s| s.allocation().loads().iter().copied())
            .min()
            .expect("at least one bin")
            + 1;
        let mut pending: Vec<u32> = (0..balls as u32).collect();
        let mut cursor = vec![0u8; balls];
        let mut placed = vec![false; balls];
        let mut placed_bins = vec![0u64; balls];
        let mut proposals: Vec<Vec<Proposal>> = (0..shards).map(|_| Vec::new()).collect();
        let mut zero_streak = 0usize;
        let mut rounds_this_batch = 0u64;
        while !pending.is_empty() {
            for buf in &mut proposals {
                buf.clear();
            }
            for &ball in &pending {
                let b = ball as usize;
                let global = probes[b * d + cursor[b] as usize];
                proposals[(global / bins_per_shard) as usize].push(Proposal {
                    ball,
                    bin: global % bins_per_shard,
                    tie: ties[b],
                    probe: cursor[b],
                });
            }
            let winners = self.resolve_round(&mut proposals, threshold);
            let mut placed_now = 0u64;
            for (shard_id, accepted) in winners.iter().enumerate() {
                for w in accepted {
                    placed[w.ball as usize] = true;
                    placed_bins[w.ball as usize] = shard_id as u64 * bins_per_shard + w.bin;
                    placed_now += 1;
                }
            }
            pending.retain(|&ball| !placed[ball as usize]);
            for &ball in &pending {
                let b = ball as usize;
                cursor[b] = if usize::from(cursor[b]) + 1 == d {
                    0
                } else {
                    cursor[b] + 1
                };
            }
            let round = rounds_this_batch as usize;
            rounds_this_batch += 1;
            if !pending.is_empty() {
                if st.report.reproposals.len() <= round {
                    st.report.reproposals.resize(round + 1, 0);
                }
                st.report.reproposals[round] += pending.len() as u64;
            }
            if placed_now == 0 {
                zero_streak += 1;
                if zero_streak == d {
                    threshold += 1;
                    zero_streak = 0;
                }
            } else {
                zero_streak = 0;
            }
        }

        // Commit placements to the global index in canonical ball
        // order, so a key's LIFO stack is also pure in the batch set.
        for b in 0..balls {
            st.index.push(keys[b], placed_bins[b]);
        }
        summary.inserts += balls as u64;
        st.report.balls += balls as u64;
        st.report.rounds += rounds_this_batch;
        st.report.max_rounds_per_batch = st.report.max_rounds_per_batch.max(rounds_this_batch);
        st.report.max_load = st.report.max_load.max(self.max_load());
        self.rounds = Some(st);
        summary
    }

    /// Resolves one synchronized round across the shards, dispatching on
    /// the configured [`WorkerMode`] exactly like phased batches:
    /// inline, scoped threads, or the persistent pool via
    /// [`Job::Resolve`]. Returns each shard's accepted proposals,
    /// indexed by shard id. The outcome is mode-independent: a bin's
    /// acceptances depend only on its own proposals and threshold.
    fn resolve_round(
        &mut self,
        proposals: &mut [Vec<Proposal>],
        threshold: u32,
    ) -> Vec<Vec<Winner>> {
        let shards = self.shards.len();
        match self.config.workers {
            WorkerMode::Sequential => self
                .shards
                .iter_mut()
                .zip(proposals.iter_mut())
                .map(|(slot, props)| {
                    if props.is_empty() {
                        return Vec::new();
                    }
                    let shard = slot.as_mut().expect("shard present between batches");
                    shard.rounds_resolve(std::mem::take(props), threshold)
                })
                .collect(),
            WorkerMode::Scoped => std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(proposals.iter_mut())
                    .map(|(slot, props)| {
                        if props.is_empty() {
                            return None;
                        }
                        let shard = slot.as_mut().expect("shard present between batches");
                        let props = std::mem::take(props);
                        Some(scope.spawn(move || shard.rounds_resolve(props, threshold)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| match handle {
                        Some(handle) => handle.join().expect("shard worker panicked"),
                        None => Vec::new(),
                    })
                    .collect()
            }),
            WorkerMode::Persistent => {
                let pool = self.pool.get_or_insert_with(|| WorkerPool::spawn(shards));
                for (id, props) in proposals.iter_mut().enumerate() {
                    if props.is_empty() {
                        continue;
                    }
                    let shard = self.shards[id]
                        .take()
                        .expect("shard present between batches");
                    let job = Job::Resolve {
                        shard,
                        proposals: std::mem::take(props),
                        threshold,
                    };
                    if pool.jobs[id].send(job).is_err() {
                        panic!("shard worker {id} exited early");
                    }
                }
                let mut winners: Vec<Vec<Winner>> = (0..shards).map(|_| Vec::new()).collect();
                for (id, slot) in winners.iter_mut().enumerate() {
                    if self.shards[id].is_some() {
                        continue; // no proposals reached this shard
                    }
                    let done = pool.results[id]
                        .recv()
                        .unwrap_or_else(|_| panic!("shard worker {id} panicked"));
                    self.shards[id] = Some(done.shard);
                    *slot = done.winners;
                }
                winners
            }
        }
    }

    /// Applies a long op stream in `batch_size` chunks; returns the overall
    /// summary. This is the engine's ingestion entry point for drivers that
    /// generate traffic faster than they want to synchronize. Delegates to
    /// [`Engine::serve_replay`] — slices and iterators share one chunking
    /// loop — and therefore honours [`EngineConfig::ingest`].
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn serve(&mut self, ops: &[Op], batch_size: usize) -> BatchSummary {
        self.serve_replay(ops.iter().copied(), batch_size)
    }

    /// Serves an op *stream* in `batch_size` chunks without materializing
    /// it: the streaming ingestion path. Captured workloads (see
    /// `ba-workload`'s replay module) can hold millions of ops; this
    /// buffers one batch at a time, so replaying a capture costs the same
    /// memory as serving live traffic. Equivalent to collecting the
    /// iterator and calling [`Engine::serve`]. Under
    /// [`IngestMode::Pipelined`] the stream flows through
    /// [`Engine::serve_pipelined`] instead of phased chunking — results
    /// are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    ///
    /// Under [`IngestMode::Pipelined`], `batch_size` keeps its phased
    /// meaning — ops per *engine-wide* batch — and each shard worker
    /// receives batches of `batch_size / shards` ops. A `batch_size`
    /// smaller than the shard count therefore clamps every per-shard
    /// batch to a single op, shipping one ring message per op: results
    /// stay bit-identical, but the rings churn. The clamp records a
    /// warning (see [`Engine::take_warnings`]) instead of silently
    /// re-interpreting the argument.
    pub fn serve_replay(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
    ) -> BatchSummary {
        assert!(batch_size > 0, "batch size must be positive");
        if let IngestMode::Pipelined {
            queue_depth,
            producers,
        } = self.config.ingest
        {
            // `batch_size` keeps its phased meaning — ops per engine-wide
            // batch — so the ingest axis never changes per-worker message
            // granularity: each shard sees ~batch_size/shards ops per
            // batch under either mode, and a phased-vs-pipelined
            // comparison at the same `batch_size` isolates the overlap.
            let shards = self.shards.len();
            if batch_size < shards {
                self.warnings.push(format!(
                    "serve_replay: batch_size {batch_size} < {shards} shards under \
                     IngestMode::Pipelined clamps every per-shard batch to 1 op \
                     (one ring message per op); raise batch_size to at least the \
                     shard count to amortize ring traffic"
                ));
            }
            let per_shard = (batch_size / self.shards.len()).max(1);
            return self.serve_pipelined_producers(ops, per_shard, queue_depth, producers);
        }
        let mut total = BatchSummary::default();
        let mut buf = std::mem::take(&mut self.replay_buf);
        buf.clear();
        buf.reserve(batch_size);
        for op in ops {
            buf.push(op);
            if buf.len() == batch_size {
                total.absorb(&self.apply_batch(&buf));
                buf.clear();
            }
        }
        if !buf.is_empty() {
            total.absorb(&self.apply_batch(&buf));
            buf.clear();
        }
        self.replay_buf = buf;
        total
    }

    /// Serves an op stream with production and application overlapped:
    /// the calling thread acts as the producer stage — routing each op
    /// into a per-shard buffer and shipping full buffers into that
    /// shard's bounded SPSC ring (see [`crate::spsc`]) — while every
    /// persistent worker applies previously shipped batches
    /// concurrently. A ring at `queue_depth` blocks the producer until
    /// its worker catches up (backpressure), so memory stays bounded by
    /// `shards × (queue_depth + 2) × batch_size` ops regardless of
    /// stream length.
    ///
    /// Each shard still applies exactly its routed subsequence in arrival
    /// order, so the outcome — shard loads, max load, batch summary, and
    /// every [`EngineStats`](crate::EngineStats) percentile — is
    /// bit-identical to phased serving in any [`WorkerMode`], including
    /// [`WorkerMode::Sequential`]. Only throughput differs: here the
    /// producer (op generation, routing) runs concurrently with shard
    /// application instead of alternating with it.
    ///
    /// `batch_size` here is the *per-shard* batch granularity: each
    /// worker receives batches of up to `batch_size` ops. (The config-
    /// driven entry points [`Engine::serve`]/[`Engine::serve_replay`]
    /// pass `batch_size / shards` so their `batch_size` argument keeps
    /// one meaning across ingest modes.) Drained batch buffers recycle
    /// back to the producer — and persist on the engine across calls —
    /// so steady-state ingestion performs no allocation. This path
    /// always uses the persistent worker pool (spawning it on first
    /// use) regardless of [`EngineConfig::workers`], which only governs
    /// phased [`Engine::apply_batch`] application.
    ///
    /// Equivalent to [`Engine::serve_pipelined_producers`] with a single
    /// producer (no fan-out stage; routing stays on the calling thread).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero, if `queue_depth` is zero or not a
    /// power of two (the ring's granularity), or if a shard worker
    /// panics mid-stream (the worker's panic is surfaced, never a
    /// deadlock).
    pub fn serve_pipelined(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
        queue_depth: usize,
    ) -> BatchSummary {
        self.serve_pipelined_producers(ops, batch_size, queue_depth, 1)
    }

    /// [`Engine::serve_pipelined`] with `producers` routing threads
    /// between the calling thread and the shard workers.
    ///
    /// With `producers == 1` this is exactly [`Engine::serve_pipelined`]:
    /// the calling thread routes and ships. With `N > 1` the calling
    /// thread slices the stream into chunks of
    /// `batch_size × shards` ops handed round-robin to N producer
    /// threads (chunk `k` to producer `k % N`); each producer routes its
    /// chunks into per-shard batches and ships them — stamped with the
    /// chunk index as the sequence number — into its own SPSC ring per
    /// shard. Every shard worker merges its N rings in deterministic
    /// (producer, seq) round-robin order, which replays that shard's
    /// routed subsequence exactly in stream order: placements, stats
    /// percentiles, and summaries are bit-identical to sequential
    /// serving regardless of producer count or thread timing.
    ///
    /// Memory stays bounded: `producers × shards × queue_depth` ring
    /// slots plus two distribution chunks per producer.
    ///
    /// # Panics
    ///
    /// As [`Engine::serve_pipelined`], plus if `producers` is zero.
    pub fn serve_pipelined_producers(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
        queue_depth: usize,
        producers: usize,
    ) -> BatchSummary {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(queue_depth > 0, "queue depth must be positive");
        assert!(
            queue_depth.is_power_of_two(),
            "queue depth must be a power of two (SPSC ring granularity), got {queue_depth}"
        );
        assert!(producers >= 1, "need at least one producer");
        if producers == 1 {
            self.pipeline_single(ops, batch_size, queue_depth)
        } else {
            self.pipeline_fanned(ops, batch_size, queue_depth, producers)
        }
    }

    /// The single-producer pipelined path: route and ship on the calling
    /// thread. See [`Engine::serve_pipelined`].
    fn pipeline_single(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
        queue_depth: usize,
    ) -> BatchSummary {
        let shards = self.shards.len();
        let track = self.sink.is_some();
        let pool = self.pool.get_or_insert_with(|| WorkerPool::spawn(shards));
        // Stage 0: ship every shard to its worker with a fresh SPSC
        // batch ring and a recycle channel for drained buffers.
        let mut batches = Vec::with_capacity(shards);
        let mut recycled = Vec::with_capacity(shards);
        for (id, slot) in self.shards.iter_mut().enumerate() {
            let (batch_tx, batch_rx) = spsc::ring::<Batch>(queue_depth);
            let (recycle_tx, recycle_rx) = channel::channel();
            let shard = slot.take().expect("shard present between batches");
            let job = Job::Stream {
                shard,
                batches: vec![batch_rx],
                recycle: vec![recycle_tx],
                track,
            };
            if pool.jobs[id].send(job).is_err() {
                panic!("shard worker {id} exited early");
            }
            batches.push(batch_tx);
            recycled.push(recycle_rx);
        }
        // Producer-side measurement: one PendingShip per shipped batch,
        // joined with its worker-side apply latency after the drain.
        let started = self.started;
        let mut pending: Vec<PendingShip> = Vec::new();
        let mut shipped = vec![0u64; shards];
        let mut ship = |id: usize, full: Vec<Op>, batches: &[spsc::RingProducer<Batch>]| {
            let seq = shipped[id];
            shipped[id] += 1;
            if !track {
                return batches[id].send(Batch { seq, ops: full }).is_ok();
            }
            let (inserts, deletes, lookups) = op_mix(&full);
            let ops = full.len() as u32;
            let Ok(stalled) = batches[id].send_tracked(Batch { seq, ops: full }) else {
                return false;
            };
            pending.push(PendingShip {
                at: started.elapsed(),
                shard: id,
                chunk: seq,
                producer: 0,
                // Routing is interleaved op-by-op with stream pull on
                // this path, not a separable stage; reported as zero
                // rather than a made-up split.
                routed: Duration::ZERO,
                ops,
                inserts,
                deletes,
                lookups,
                stalls: u32::from(stalled > Duration::ZERO),
                stalled,
                occupancy: batches[id].queued() as u32,
            });
            true
        };
        // Producer stage: route ops into per-shard filling buffers; a
        // full buffer ships into the bounded ring (blocking only when
        // the worker is queue_depth batches behind) and is replaced by a
        // recycled buffer the worker already drained, a spare from a
        // previous call, or — only while the pipeline warms up — a fresh
        // allocation. Past warm-up this loop allocates nothing, across
        // calls included.
        let mut spare = std::mem::take(&mut self.spare_buffers);
        let grab = |spare: &mut Vec<Vec<Op>>| {
            spare
                .pop()
                .map(|mut buf| {
                    buf.reserve(batch_size);
                    buf
                })
                .unwrap_or_else(|| Vec::with_capacity(batch_size))
        };
        let mut filling: Vec<Vec<Op>> = (0..shards).map(|_| grab(&mut spare)).collect();
        for op in ops {
            let id = route(op.key(), shards);
            filling[id].push(op);
            if filling[id].len() == batch_size {
                let full = std::mem::take(&mut filling[id]);
                if !ship(id, full, &batches) {
                    panic!("shard worker {id} panicked");
                }
                filling[id] = recycled[id].try_recv().unwrap_or_else(|| grab(&mut spare));
            }
        }
        for (id, buf) in filling.into_iter().enumerate() {
            if buf.is_empty() {
                spare.push(buf); // keep the capacity for the next call
            } else if !ship(id, buf, &batches) {
                panic!("shard worker {id} panicked");
            }
        }
        // `ship` borrowed `pending` mutably; past this point only the
        // closure-free join below touches it.
        #[allow(clippy::drop_non_drop)]
        drop(ship);
        // Disconnect the batch rings: each worker drains what is queued,
        // then reports its shard and stream summary.
        drop(batches);
        let mut total = BatchSummary::default();
        let mut applies: Vec<Vec<Duration>> = Vec::with_capacity(shards);
        for id in 0..shards {
            let done = pool.results[id]
                .recv()
                .unwrap_or_else(|_| panic!("shard worker {id} panicked"));
            self.shards[id] = Some(done.shard);
            total.absorb(&done.summary);
            applies.push(done.applies);
        }
        // Reclaim every buffer the workers drained after the producer
        // stopped picking them up; the next serve_pipelined call starts
        // from this pool instead of the allocator.
        for rx in &recycled {
            while let Some(buf) = rx.try_recv() {
                spare.push(buf);
            }
        }
        self.spare_buffers = spare;
        self.emit_stream_records(pending, &applies);
        total
    }

    /// The multi-producer pipelined path: fan chunks out to `producers`
    /// routing threads. See [`Engine::serve_pipelined_producers`].
    fn pipeline_fanned(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
        queue_depth: usize,
        producers: usize,
    ) -> BatchSummary {
        let shards = self.shards.len();
        let track = self.sink.is_some();
        let started = self.started;
        let pool = self.pool.get_or_insert_with(|| WorkerPool::spawn(shards));
        // Stage 0: a producers × shards matrix of SPSC rings. Producer p
        // owns row p of senders; shard worker s receives column s and
        // merges it in (producer, seq) round-robin order.
        let mut ring_txs: Vec<Vec<spsc::RingProducer<Batch>>> = Vec::with_capacity(producers);
        let mut ring_rxs: Vec<Vec<spsc::RingConsumer<Batch>>> =
            (0..shards).map(|_| Vec::with_capacity(producers)).collect();
        for _ in 0..producers {
            let mut row = Vec::with_capacity(shards);
            for col in ring_rxs.iter_mut() {
                let (tx, rx) = spsc::ring::<Batch>(queue_depth);
                row.push(tx);
                col.push(rx);
            }
            ring_txs.push(row);
        }
        // Per-producer recycle channels; every worker holds a clone of
        // each sender so drained buffers go home to the producer that
        // filled them (the recycle path is MPSC and cold — only the
        // batch rings are hot).
        let mut recycle_txs = Vec::with_capacity(producers);
        let mut recycle_rxs = Vec::with_capacity(producers);
        for _ in 0..producers {
            let (tx, rx) = channel::channel::<Vec<Op>>();
            recycle_txs.push(tx);
            recycle_rxs.push(rx);
        }
        for (id, slot) in self.shards.iter_mut().enumerate() {
            let shard = slot.take().expect("shard present between batches");
            let job = Job::Stream {
                shard,
                batches: std::mem::take(&mut ring_rxs[id]),
                recycle: recycle_txs.clone(),
                track,
            };
            if pool.jobs[id].send(job).is_err() {
                panic!("shard worker {id} exited early");
            }
        }
        drop(recycle_txs);
        // Spare buffers feed the distribution stage here; producers warm
        // up their own batch buffers in a chunk or two, and everything
        // flows back to this pool at the end of the stream.
        let mut spare = std::mem::take(&mut self.spare_buffers);
        // Distribution stage on the calling thread: slice the stream
        // into chunks of batch_size × shards ops, handing chunk k to
        // producer k % producers over a shallow bounded channel (depth 2
        // keeps each producer one chunk ahead without unbounded
        // buffering). Routed-out chunk buffers come back for reuse.
        let chunk_size = batch_size * shards;
        let mut reports: Vec<ProducerReport> = Vec::with_capacity(producers);
        std::thread::scope(|scope| {
            let (chunk_back_tx, chunk_back_rx) = channel::channel::<Vec<Op>>();
            let mut dist_txs = Vec::with_capacity(producers);
            let mut handles = Vec::with_capacity(producers);
            for (p, (rings, recycle_rx)) in ring_txs.into_iter().zip(recycle_rxs).enumerate() {
                let (dist_tx, dist_rx) = channel::bounded::<(u64, Vec<Op>)>(2);
                dist_txs.push(dist_tx);
                let chunk_back = chunk_back_tx.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("ba-producer-{p}"))
                        .spawn_scoped(scope, move || {
                            producer_stage(
                                p as u32, rings, recycle_rx, dist_rx, chunk_back, batch_size,
                                started, track,
                            )
                        })
                        .expect("spawn pipeline producer thread"),
                );
            }
            drop(chunk_back_tx);
            let mut grab_chunk = || {
                let mut buf = chunk_back_rx
                    .try_recv()
                    .or_else(|| spare.pop())
                    .unwrap_or_default();
                buf.clear();
                buf.reserve(chunk_size);
                buf
            };
            let mut buf = grab_chunk();
            let mut chunk: u64 = 0;
            let mut alive = true;
            for op in ops {
                buf.push(op);
                if buf.len() == chunk_size {
                    let full = std::mem::take(&mut buf);
                    if dist_txs[(chunk % producers as u64) as usize]
                        .send((chunk, full))
                        .is_err()
                    {
                        // The producer bailed (its worker died); stop
                        // distributing and let the teardown below
                        // surface the worker panic.
                        alive = false;
                        break;
                    }
                    chunk += 1;
                    buf = grab_chunk();
                }
            }
            if alive && !buf.is_empty() {
                let _ = dist_txs[(chunk % producers as u64) as usize].send((chunk, buf));
            } else {
                spare.push(buf);
            }
            // Disconnect distribution: each producer finishes its queued
            // chunks, ships them, and drops its rings, which ends every
            // worker's stream.
            drop(dist_txs);
            for handle in handles {
                match handle.join() {
                    Ok(report) => reports.push(report),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            // Reclaim distribution chunk buffers.
            while let Some(chunk_buf) = chunk_back_rx.try_recv() {
                spare.push(chunk_buf);
            }
        });
        let mut total = BatchSummary::default();
        let mut applies: Vec<Vec<Duration>> = Vec::with_capacity(shards);
        for id in 0..shards {
            let done = pool.results[id]
                .recv()
                .unwrap_or_else(|_| panic!("shard worker {id} panicked"));
            self.shards[id] = Some(done.shard);
            total.absorb(&done.summary);
            applies.push(done.applies);
        }
        // Fold the producer reports: reclaim their buffers, surface any
        // worker death they observed, and gather the metric halves.
        let mut pending: Vec<PendingShip> = Vec::new();
        let mut dead: Option<usize> = None;
        for report in reports {
            while let Some(buf) = report.recycle.try_recv() {
                spare.push(buf);
            }
            spare.extend(report.spare);
            dead = dead.or(report.dead_shard);
            pending.extend(report.pending);
        }
        self.spare_buffers = spare;
        if let Some(id) = dead {
            panic!("shard worker {id} panicked");
        }
        self.emit_stream_records(pending, &applies);
        total
    }

    /// Joins producer-side ship records with worker-side apply latencies
    /// — `(shard, chunk)` addresses the apply sample on both paths —
    /// and emits the stream's records in ship-time order. Empty
    /// merge-alignment batches (multi-producer only) carry no traffic
    /// and emit no record.
    fn emit_stream_records(&mut self, pending: Vec<PendingShip>, applies: &[Vec<Duration>]) {
        let Some(mut sink) = self.sink.take() else {
            return;
        };
        debug_assert_eq!(
            pending.len(),
            applies.iter().map(Vec::len).sum::<usize>(),
            "ship records and apply samples must pair 1:1"
        );
        let mut records = Vec::with_capacity(pending.len());
        for ship in pending {
            let apply = applies[ship.shard][ship.chunk as usize];
            if ship.ops == 0 {
                continue;
            }
            records.push(MetricRecord {
                seq: 0, // assigned below, in ship-time order
                at: ship.at,
                shard: Some(ship.shard),
                producer: ship.producer,
                ops: ship.ops,
                inserts: ship.inserts,
                deletes: ship.deletes,
                lookups: ship.lookups,
                apply,
                routed: ship.routed,
                queue_occupancy: ship.occupancy,
                stalls: ship.stalls,
                stalled: ship.stalled,
            });
        }
        records.sort_by_key(|r| (r.at, r.shard));
        for mut record in records {
            record.seq = self.emitted;
            self.emitted += 1;
            sink.record(&record);
        }
        self.sink = Some(sink);
    }

    /// Snapshot of per-shard and aggregate load/traffic statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats::new(
            self.iter_shards()
                .map(|s| {
                    ShardStats::capture(
                        s.id(),
                        s.allocation(),
                        s.lifetime_summary(),
                        s.observations(),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SharedSink;
    use ba_core::{run_process, run_process_keys};
    use ba_hash::{ChoiceSource, DoubleHashing};
    use ba_rng::SeedSequence;

    fn engine(shards: usize, workers: WorkerMode) -> Engine<AnyScheme> {
        let cfg = EngineConfig::new(shards, 256, 3).seed(42).workers(workers);
        Engine::by_name("double", cfg).unwrap()
    }

    fn mixed_ops(count: u64) -> Vec<Op> {
        (0..count)
            .map(|i| match i % 5 {
                0..=2 => Op::Insert(i / 2),
                3 => Op::Lookup(i / 3),
                _ => Op::Delete(i / 2),
            })
            .collect()
    }

    #[test]
    fn unknown_scheme_rejected() {
        assert!(Engine::by_name("nope", EngineConfig::new(2, 64, 2)).is_none());
    }

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7, 64] {
            for key in 0..1000u64 {
                let s = route(key, shards);
                assert!(s < shards);
                assert_eq!(s, route(key, shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn route_spreads_keys() {
        let shards = 8;
        let mut counts = vec![0u64; shards];
        for key in 0..80_000u64 {
            counts[route(key, shards)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "skewed routing {counts:?}"
            );
        }
    }

    #[test]
    fn every_worker_mode_agrees() {
        let ops = mixed_ops(20_000);
        let mut seq = engine(8, WorkerMode::Sequential);
        let ss = seq.serve(&ops, 1_024);
        for workers in [WorkerMode::Scoped, WorkerMode::Persistent] {
            let mut par = engine(8, workers);
            let sp = par.serve(&ops, 1_024);
            assert_eq!(sp, ss, "{workers:?}");
            for (a, b) in par.shards().iter().zip(seq.shards()) {
                assert_eq!(
                    a.allocation().loads(),
                    b.allocation().loads(),
                    "{workers:?}"
                );
            }
        }
    }

    #[test]
    fn persistent_pool_survives_many_batches() {
        // The worker pool spawns once and serves every subsequent batch;
        // per-shard state keeps matching the sequential engine throughout.
        let ops = mixed_ops(10_000);
        let mut par = engine(4, WorkerMode::Persistent);
        let mut seq = engine(4, WorkerMode::Sequential);
        for chunk in ops.chunks(100) {
            assert_eq!(par.apply_batch(chunk), seq.apply_batch(chunk));
        }
        for (a, b) in par.shards().iter().zip(seq.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn serve_replay_equals_serve() {
        // The replay ingestion path is the slice path, minus the slice:
        // identical summaries and shard states, batch boundaries included.
        let ops = mixed_ops(7_777);
        for workers in [WorkerMode::Sequential, WorkerMode::Persistent] {
            let mut live = engine(4, workers);
            let mut replayed = engine(4, workers);
            let a = live.serve(&ops, 512);
            let b = replayed.serve_replay(ops.iter().copied(), 512);
            assert_eq!(a, b, "{workers:?}");
            for (x, y) in live.shards().iter().zip(replayed.shards()) {
                assert_eq!(
                    x.allocation().loads(),
                    y.allocation().loads(),
                    "{workers:?}"
                );
            }
        }
    }

    #[test]
    fn serve_pipelined_equals_sequential_serving() {
        // The pipelined acceptance contract at the unit level: identical
        // summaries, per-shard loads, and stats snapshots to sequential
        // phased serving, for every queue depth — batch boundaries and
        // producer/worker interleaving must be invisible in the results.
        let ops = mixed_ops(20_000);
        let mut seq = engine(8, WorkerMode::Sequential);
        let expected = seq.serve(&ops, 1_024);
        for depth in [1usize, 4, 64] {
            let mut pip = engine(8, WorkerMode::Sequential);
            let got = pip.serve_pipelined(ops.iter().copied(), 1_024, depth);
            assert_eq!(got, expected, "depth {depth}");
            assert!(pip.stats().matches(&seq.stats()), "depth {depth}");
            for (a, b) in pip.shards().iter().zip(seq.shards()) {
                assert_eq!(
                    a.allocation().loads(),
                    b.allocation().loads(),
                    "depth {depth}"
                );
            }
        }
    }

    #[test]
    fn pipelined_ingest_mode_flows_through_serve_and_serve_replay() {
        // The config axis: an engine configured Pipelined serves through
        // the pipeline on both entry points and still matches phased.
        let ops = mixed_ops(9_999);
        let mut phased = engine(4, WorkerMode::Persistent);
        let expected = phased.serve(&ops, 512);
        let cfg = EngineConfig::new(4, 256, 3).seed(42).pipelined(2);
        assert_eq!(
            cfg.ingest,
            IngestMode::Pipelined {
                queue_depth: 2,
                producers: 1
            }
        );
        let mut via_serve = Engine::by_name("double", cfg.clone()).unwrap();
        assert_eq!(via_serve.serve(&ops, 512), expected);
        let mut via_replay = Engine::by_name("double", cfg).unwrap();
        assert_eq!(via_replay.serve_replay(ops.iter().copied(), 512), expected);
        for (a, b) in via_serve.shards().iter().zip(phased.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn serve_pipelined_survives_repeated_calls_and_single_shard() {
        // The stream jobs and the pool outlive any one call; a one-shard
        // engine still pipelines (producer/worker overlap is the point).
        let ops = mixed_ops(5_000);
        let mut seq = engine(1, WorkerMode::Sequential);
        let mut pip = engine(1, WorkerMode::Sequential);
        for chunk in ops.chunks(1_000) {
            let a = seq.serve(chunk, 128);
            let b = pip.serve_pipelined(chunk.iter().copied(), 128, 2);
            assert_eq!(a, b);
        }
        assert_eq!(
            seq.shard(0).allocation().loads(),
            pip.shard(0).allocation().loads()
        );
        // The drained batch buffers survive the call on the engine's
        // spare pool, so the next stream starts allocation-free.
        assert!(
            !pip.spare_buffers.is_empty(),
            "pipeline buffers were dropped instead of pooled"
        );
    }

    #[test]
    fn serve_pipelined_handles_empty_stream() {
        let mut eng = engine(4, WorkerMode::Persistent);
        assert_eq!(
            eng.serve_pipelined(std::iter::empty(), 64, 4),
            BatchSummary::default()
        );
        assert_eq!(eng.total_balls(), 0);
    }

    #[test]
    fn pipelined_worker_panic_propagates_instead_of_deadlocking() {
        // A shard panicking mid-stream must surface as a panic in
        // serve_pipelined — whether the producer is blocked in a bounded
        // send or waiting on the worker's result — never a deadlock.
        let result = std::panic::catch_unwind(|| {
            let cfg = EngineConfig::new(2, 64, 1).seed(1).keyed();
            let mut eng = Engine::with_scheme_factory(cfg, |_| Exploding { n: 64, poison: 42 });
            eng.serve_pipelined((0..4_096u64).map(Op::Insert), 8, 1);
        });
        assert!(result.is_err(), "pipelined worker panic was swallowed");
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_rejected() {
        engine(2, WorkerMode::Persistent).serve_pipelined([Op::Insert(1)], 8, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_queue_depth_rejected() {
        engine(2, WorkerMode::Persistent).serve_pipelined([Op::Insert(1)], 8, 3);
    }

    #[test]
    #[should_panic(expected = "at least one producer")]
    fn zero_producers_rejected() {
        engine(2, WorkerMode::Persistent).serve_pipelined_producers([Op::Insert(1)], 8, 2, 0);
    }

    #[test]
    #[should_panic(expected = "EngineConfig::pipelined(3)")]
    fn invalid_pipeline_depth_rejected_at_construction() {
        // The fail-fast contract: a bad queue depth dies when the engine
        // is built — naming the builder call — never mid-serve.
        let _ = Engine::by_name("double", EngineConfig::new(2, 64, 3).pipelined(3));
    }

    #[test]
    #[should_panic(expected = "EngineConfig::pipelined_producers(.., 0)")]
    fn zero_pipeline_producers_rejected_at_construction() {
        let _ = Engine::by_name(
            "double",
            EngineConfig::new(2, 64, 3).pipelined_producers(4, 0),
        );
    }

    #[test]
    fn validate_names_each_offending_builder_call() {
        let base = EngineConfig::new(2, 64, 3);
        assert_eq!(base.validate(), Ok(()));
        assert_eq!(
            EngineConfig::new(0, 64, 3).validate(),
            Err(ConfigError::ZeroShards)
        );
        assert_eq!(
            base.clone().pipelined(0).validate(),
            Err(ConfigError::ZeroQueueDepth)
        );
        assert_eq!(
            base.clone().pipelined(6).validate(),
            Err(ConfigError::QueueDepthNotPowerOfTwo(6))
        );
        assert_eq!(
            base.clone().pipelined_producers(4, 0).validate(),
            Err(ConfigError::ZeroProducers)
        );
        // Each message carries the builder call that produced the value.
        let msg = ConfigError::QueueDepthNotPowerOfTwo(6).to_string();
        assert!(msg.contains("EngineConfig::pipelined(6)"), "{msg}");
        let msg = ConfigError::ZeroProducers.to_string();
        assert!(msg.contains("pipelined_producers"), "{msg}");
    }

    #[test]
    fn degenerate_pipelined_batch_size_warns_but_stays_bit_identical() {
        // batch_size < shards under Pipelined clamps per-shard batches to
        // one op: correctness must hold, and the hazard must be recorded.
        let ops = mixed_ops(4_000);
        let mut phased = engine(8, WorkerMode::Sequential);
        let expected = phased.serve(&ops, 3);
        assert!(phased.take_warnings().is_empty(), "phased path never warns");

        let cfg = EngineConfig::new(8, 256, 3).seed(42).pipelined(4);
        let mut pipelined = Engine::by_name("double", cfg).unwrap();
        let got = pipelined.serve(&ops, 3);
        assert_eq!(got, expected);
        assert!(phased.stats().matches(&pipelined.stats()));
        let warnings = pipelined.take_warnings();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(
            warnings[0].contains("batch_size 3 < 8 shards"),
            "{warnings:?}"
        );
        // Drained: a second poll is empty; a healthy batch size never warns.
        assert!(pipelined.take_warnings().is_empty());
        pipelined.serve(&ops, 64);
        assert!(pipelined.take_warnings().is_empty());
    }

    #[test]
    fn multi_producer_pipelined_equals_sequential_serving() {
        // The tentpole contract at the unit level: the fanned routing
        // stage and the (producer, seq) merge must be invisible in the
        // results for any producer count × depth, including producer
        // counts that do not divide the chunk count evenly.
        let ops = mixed_ops(20_000);
        let mut seq = engine(8, WorkerMode::Sequential);
        let expected = seq.serve(&ops, 1_024);
        for producers in [2usize, 3, 8] {
            for depth in [1usize, 4] {
                let mut pip = engine(8, WorkerMode::Sequential);
                let got = pip.serve_pipelined_producers(ops.iter().copied(), 128, depth, producers);
                assert_eq!(got, expected, "producers {producers} depth {depth}");
                assert!(
                    pip.stats().matches(&seq.stats()),
                    "producers {producers} depth {depth}"
                );
                for (a, b) in pip.shards().iter().zip(seq.shards()) {
                    assert_eq!(
                        a.allocation().loads(),
                        b.allocation().loads(),
                        "producers {producers} depth {depth}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_producer_handles_empty_and_subchunk_streams() {
        // No chunk is ever formed (empty stream) and a single partial
        // chunk (shorter than batch_size × shards) both terminate every
        // worker's round-robin merge cleanly.
        let mut eng = engine(4, WorkerMode::Persistent);
        assert_eq!(
            eng.serve_pipelined_producers(std::iter::empty(), 64, 4, 3),
            BatchSummary::default()
        );
        assert_eq!(eng.total_balls(), 0);
        let mut seq = engine(4, WorkerMode::Sequential);
        let ops = mixed_ops(10);
        let expected = seq.serve(&ops, 64);
        let got = eng.serve_pipelined_producers(ops.iter().copied(), 64, 4, 3);
        assert_eq!(got, expected);
        for (a, b) in eng.shards().iter().zip(seq.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn multi_producer_single_shard_and_repeated_calls() {
        let ops = mixed_ops(5_000);
        let mut seq = engine(1, WorkerMode::Sequential);
        let mut pip = engine(1, WorkerMode::Sequential);
        for chunk in ops.chunks(1_000) {
            let a = seq.serve(chunk, 128);
            let b = pip.serve_pipelined_producers(chunk.iter().copied(), 128, 2, 4);
            assert_eq!(a, b);
        }
        assert_eq!(
            seq.shard(0).allocation().loads(),
            pip.shard(0).allocation().loads()
        );
        // Buffers reclaimed from producers and workers persist across
        // calls on the engine's spare pool.
        assert!(
            !pip.spare_buffers.is_empty(),
            "fanned pipeline buffers were dropped instead of pooled"
        );
    }

    #[test]
    fn multi_producer_worker_panic_propagates_instead_of_deadlocking() {
        // A shard panicking mid-stream must surface as a panic in the
        // fanned path too — producers bail via ring disconnect, the
        // distribution stage stops, and the dead worker is reported —
        // never a deadlock.
        let result = std::panic::catch_unwind(|| {
            let cfg = EngineConfig::new(2, 64, 1).seed(1).keyed();
            let mut eng = Engine::with_scheme_factory(cfg, |_| Exploding { n: 64, poison: 42 });
            eng.serve_pipelined_producers((0..4_096u64).map(Op::Insert), 8, 1, 3);
        });
        assert!(result.is_err(), "fanned worker panic was swallowed");
    }

    #[test]
    fn multi_producer_sink_records_carry_producer_and_stay_bit_identical() {
        // Sink attachment under fanned serving: results unchanged, every
        // record attributed to a real (shard, producer) pair, sequence
        // numbers dense in ship-time order, no empty alignment batches
        // leaking through, and op totals conserved.
        let ops = mixed_ops(8_000);
        let mut plain = engine(4, WorkerMode::Persistent);
        let expected = plain.serve(&ops, 1_024);
        let sink = SharedSink::new();
        let mut observed = engine(4, WorkerMode::Persistent);
        observed.set_sink(Box::new(sink.clone()));
        let got = observed.serve_pipelined_producers(ops.iter().copied(), 128, 2, 3);
        assert_eq!(got, expected);
        assert!(observed.stats().matches(&plain.stats()));
        let records = sink.records();
        assert!(!records.is_empty());
        assert_eq!(records.iter().map(|r| u64::from(r.ops)).sum::<u64>(), 8_000);
        assert!(records.iter().all(|r| r.ops > 0), "empty batch leaked");
        assert!(records.iter().all(|r| r.shard.is_some()));
        assert!(records.iter().all(|r| r.producer < 3));
        let seen: std::collections::HashSet<u32> = records.iter().map(|r| r.producer).collect();
        assert!(seen.len() > 1, "all records from one producer: {seen:?}");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "sequence numbers must be dense");
        }
        for pair in records.windows(2) {
            assert!(pair[0].at <= pair[1].at, "ship-time order violated");
        }
    }

    #[test]
    fn sequential_batches_reuse_partition_scratch() {
        // The zero-allocation contract, observably: after the first
        // batch, partition buffers are reused (their capacity persists)
        // rather than freshly allocated per batch.
        let mut eng = engine(2, WorkerMode::Sequential);
        eng.apply_batch(&(0..1_000u64).map(Op::Insert).collect::<Vec<_>>());
        let caps: Vec<usize> = eng.scratch.iter().map(Vec::capacity).collect();
        assert!(caps.iter().all(|&c| c > 0), "scratch never materialized");
        eng.apply_batch(&(1_000..1_400u64).map(Op::Insert).collect::<Vec<_>>());
        let caps_after: Vec<usize> = eng.scratch.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_after, "smaller batch must not reallocate");
    }

    #[test]
    fn serve_replay_handles_empty_and_partial_batches() {
        let mut eng = engine(2, WorkerMode::Sequential);
        assert_eq!(
            eng.serve_replay(std::iter::empty(), 64),
            BatchSummary::default()
        );
        let summary = eng.serve_replay((0..100u64).map(Op::Insert), 64);
        assert_eq!(summary.inserts, 100);
        assert_eq!(eng.total_balls(), 100);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let ops: Vec<Op> = (0..5_000u64).map(Op::Insert).collect();
        let mut small = engine(4, WorkerMode::Persistent);
        let mut large = engine(4, WorkerMode::Persistent);
        small.serve(&ops, 64);
        large.serve(&ops, 5_000);
        for (a, b) in small.shards().iter().zip(large.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn per_shard_state_matches_single_threaded_core_run() {
        // The acceptance contract: for the same (seed, scheme) pair, each
        // shard's max-load statistics equal a single-threaded ba_core run
        // over that shard's insert stream.
        let seed = 7u64;
        let shards = 4usize;
        let mut eng =
            Engine::by_name("double", EngineConfig::new(shards, 512, 3).seed(seed)).unwrap();
        let ops: Vec<Op> = (0..4_096u64).map(Op::Insert).collect();
        eng.apply_batch(&ops);

        for id in 0..shards {
            let balls = ops
                .iter()
                .filter(|op| route(op.key(), shards) == id)
                .count() as u64;
            let scheme = DoubleHashing::new(512, 3);
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let reference = run_process(&scheme, balls, TieBreak::Random, &mut rng);
            let shard = eng.shard(id);
            assert_eq!(shard.allocation().loads(), reference.loads());
            assert_eq!(shard.allocation().max_load(), reference.max_load());
        }
    }

    #[test]
    fn keyed_per_shard_state_matches_core_keyed_run() {
        // The keyed twin: shard i's table equals run_process_keys over its
        // routed key stream with the shard's own salt.
        let seed = 13u64;
        let shards = 4usize;
        let cfg = EngineConfig::new(shards, 512, 3).seed(seed).keyed();
        let mut eng = Engine::by_name("double", cfg).unwrap();
        let ops: Vec<Op> = (0..4_096u64).map(Op::Insert).collect();
        eng.apply_batch(&ops);

        for id in 0..shards {
            let keys: Vec<u64> = ops
                .iter()
                .map(|op| op.key())
                .filter(|&k| route(k, shards) == id)
                .collect();
            let scheme = DoubleHashing::new(512, 3);
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let shard = eng.shard(id);
            let reference = run_process_keys(
                &scheme,
                ChoiceSource::Keyed { salt: shard.salt() },
                keys.iter().copied(),
                TieBreak::Random,
                &mut rng,
            );
            assert_eq!(shard.allocation().loads(), reference.loads(), "shard {id}");
        }
    }

    #[test]
    fn rng_kind_flows_into_every_shard() {
        let mk = |rng: RngKind| {
            let mut eng =
                Engine::by_name("double", EngineConfig::new(4, 256, 3).seed(3).rng(rng)).unwrap();
            eng.apply_batch(&(0..2_048u64).map(Op::Insert).collect::<Vec<_>>());
            eng.stats().merged_histogram().counts().to_vec()
        };
        let xo = mk(RngKind::Xoshiro);
        let pcg = mk(RngKind::Pcg64);
        let lcg = mk(RngKind::Lcg48);
        assert_eq!(xo, mk(RngKind::Xoshiro), "same kind must reproduce");
        // Different generator families must produce different tables.
        assert!(xo != pcg || xo != lcg, "PRNG ablation collapsed");
    }

    #[test]
    fn conservation_across_mixed_traffic() {
        let mut eng = engine(4, WorkerMode::Persistent);
        let mut ops = Vec::new();
        for key in 0..3_000u64 {
            ops.push(Op::Insert(key));
        }
        for key in 0..1_000u64 {
            ops.push(Op::Delete(key));
        }
        for key in 0..500u64 {
            ops.push(Op::Lookup(key * 5));
        }
        let summary = eng.serve(&ops, 512);
        assert_eq!(summary.inserts, 3_000);
        assert_eq!(summary.deletes, 1_000);
        assert_eq!(summary.missed_deletes, 0);
        assert_eq!(summary.lookups, 500);
        assert_eq!(eng.total_balls(), 2_000);
        let stats = eng.stats();
        assert_eq!(stats.total_balls(), 2_000);
        assert_eq!(stats.total_ops(), 4_500);
        let observed = stats.merged_observations();
        assert_eq!(observed.insert_load.count(), 3_000);
        assert_eq!(observed.delete_load.count(), 1_000);
        assert_eq!(observed.lookup_depth.count(), 500);
    }

    /// A scheme that panics when asked to derive choices for a poison
    /// key — the hook the worker-panic regression test needs.
    #[derive(Debug, Clone)]
    struct Exploding {
        n: u64,
        poison: u64,
    }

    impl ChoiceScheme for Exploding {
        fn n(&self) -> u64 {
            self.n
        }
        fn d(&self) -> usize {
            1
        }
        fn fill_choices(&self, rng: &mut dyn ba_rng::Rng64, out: &mut [u64]) {
            out[0] = rng.gen_range(self.n);
        }
        fn choices_for(&self, key: u64, _salt: u64, out: &mut [u64]) {
            assert_ne!(key, self.poison, "poison key reached the scheme");
            out[0] = key % self.n;
        }
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // A shard panicking inside a persistent worker must surface as a
        // panic in apply_batch — not leave the engine blocked forever on
        // a result that will never arrive.
        let result = std::panic::catch_unwind(|| {
            let cfg = EngineConfig::new(2, 64, 1).seed(1).keyed();
            let mut eng = Engine::with_scheme_factory(cfg, |_| Exploding { n: 64, poison: 42 });
            eng.apply_batch(&(0..256u64).map(Op::Insert).collect::<Vec<_>>());
        });
        assert!(result.is_err(), "worker panic was swallowed");
    }

    #[test]
    fn engine_drop_joins_workers_cleanly() {
        let mut eng = engine(8, WorkerMode::Persistent);
        eng.apply_batch(&(0..1_000u64).map(Op::Insert).collect::<Vec<_>>());
        drop(eng); // must not hang or leak threads
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Engine::by_name("double", EngineConfig::new(0, 64, 2));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        engine(2, WorkerMode::Sequential).serve(&[Op::Insert(1)], 0);
    }

    #[test]
    fn sink_sees_every_phased_batch() {
        let sink = SharedSink::new();
        let mut eng = engine(4, WorkerMode::Persistent);
        eng.set_sink(Box::new(sink.clone()));
        assert!(eng.has_sink());
        let ops = mixed_ops(2_000);
        eng.serve(&ops, 512);
        let records = sink.records();
        assert_eq!(records.len(), 4, "3 full batches + 1 partial");
        assert!(
            records.iter().all(|r| r.shard.is_none()),
            "phased: engine-wide"
        );
        assert_eq!(records.iter().map(|r| u64::from(r.ops)).sum::<u64>(), 2_000);
        let mix: u64 = records
            .iter()
            .map(|r| u64::from(r.inserts + r.deletes + r.lookups))
            .sum();
        assert_eq!(mix, 2_000, "op mix must partition the batch");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert!(eng.take_sink().is_some());
        assert!(!eng.has_sink());
    }

    #[test]
    fn pipelined_sink_records_attribute_batches_to_shards() {
        let sink = SharedSink::new();
        let mut eng = engine(4, WorkerMode::Sequential);
        eng.set_sink(Box::new(sink.clone()));
        let ops = mixed_ops(4_000);
        eng.serve_pipelined(ops.iter().copied(), 128, 2);
        let records = sink.records();
        assert!(!records.is_empty());
        assert!(
            records.iter().all(|r| r.shard.is_some()),
            "pipelined: per shard"
        );
        assert_eq!(records.iter().map(|r| u64::from(r.ops)).sum::<u64>(), 4_000);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "sequence numbers must be dense");
        }
        for pair in records.windows(2) {
            assert!(
                pair[0].at <= pair[1].at,
                "records must be ship-time ordered"
            );
        }
        // Both halves of the join landed: ship-side occupancy is bounded
        // by the queue depth, worker-side applies were all measured.
        assert!(records.iter().all(|r| r.queue_occupancy <= 2));
    }

    #[test]
    fn attaching_a_sink_never_changes_results() {
        // The bit-identity acceptance contract at the unit level: serving
        // with a sink attached yields the same summary, stats, and loads
        // as serving without one, on both ingestion paths.
        let ops = mixed_ops(8_000);
        let mut plain = engine(4, WorkerMode::Persistent);
        let expected = plain.serve(&ops, 1_024);
        for pipelined in [false, true] {
            let mut observed = engine(4, WorkerMode::Persistent);
            observed.set_sink(Box::new(SharedSink::new()));
            let got = if pipelined {
                observed.serve_pipelined(ops.iter().copied(), 256, 2)
            } else {
                observed.serve(&ops, 1_024)
            };
            assert_eq!(got, expected, "pipelined={pipelined}");
            assert!(
                observed.stats().matches(&plain.stats()),
                "pipelined={pipelined}"
            );
            for (a, b) in observed.shards().iter().zip(plain.shards()) {
                assert_eq!(a.allocation().loads(), b.allocation().loads());
            }
        }
    }

    /// Concatenated per-shard bin loads in shard order — the global bin
    /// vector the rounds determinism contract is stated over.
    fn global_loads(engine: &Engine<AnyScheme>) -> Vec<u32> {
        engine
            .shards()
            .iter()
            .flat_map(|s| s.allocation().loads().to_vec())
            .collect()
    }

    fn rounds_engine(shards: usize, workers: WorkerMode, producers: usize) -> Engine<AnyScheme> {
        let bins = 1024 / shards as u64; // constant 1024 global bins
        let cfg = EngineConfig::new(shards, bins, 3)
            .seed(42)
            .workers(workers)
            .rounds_producers(producers);
        Engine::by_name("double", cfg).unwrap()
    }

    #[test]
    fn rounds_config_validates_producers() {
        assert_eq!(
            EngineConfig::new(2, 64, 3).rounds_producers(0).validate(),
            Err(ConfigError::ZeroRoundsProducers)
        );
        assert!(EngineConfig::new(2, 64, 3).rounds().validate().is_ok());
    }

    #[test]
    fn rounds_places_every_ball_and_reports() {
        let mut e = rounds_engine(4, WorkerMode::Sequential, 1);
        let ops: Vec<Op> = (0..800u64).map(Op::Insert).collect();
        let summary = e.apply_batch(&ops);
        assert_eq!(summary.inserts, 800);
        assert_eq!(e.total_balls(), 800);
        let report = e.take_round_report().expect("rounds mode");
        assert_eq!(report.batches, 1);
        assert_eq!(report.balls, 800);
        assert!(report.rounds >= 1);
        assert_eq!(report.max_load, e.max_load());
        // 800 balls into 1024 bins with d = 3: the bulk process stays
        // in the same low-max-load regime as sequential d-choice.
        assert!(e.max_load() <= 4, "max load {}", e.max_load());
        // Drained: the next report covers only new batches.
        assert_eq!(e.take_round_report().unwrap(), RoundReport::default());
    }

    #[test]
    fn rounds_result_is_pure_in_the_batch_set() {
        // The tentpole contract at the unit level: permuting the ops
        // within a batch, changing worker mode, propose-thread count, or
        // shard count never changes the global bin vector or summary.
        let mut ops = mixed_ops(6_000);
        let mut base = rounds_engine(1, WorkerMode::Sequential, 1);
        let expected = base.apply_batch(&ops);
        let expected_loads = global_loads(&base);
        ops.reverse();
        for (shards, workers, producers) in [
            (1, WorkerMode::Sequential, 4),
            (2, WorkerMode::Scoped, 1),
            (4, WorkerMode::Persistent, 2),
            (8, WorkerMode::Persistent, 4),
        ] {
            let mut e = rounds_engine(shards, workers, producers);
            let got = e.apply_batch(&ops);
            assert_eq!(got, expected, "{shards} shards {workers:?} x{producers}");
            assert_eq!(
                global_loads(&e),
                expected_loads,
                "{shards} shards {workers:?} x{producers}"
            );
        }
    }

    #[test]
    fn rounds_barriers_apply_deletes_and_lookups_against_pre_batch_state() {
        let mut e = rounds_engine(2, WorkerMode::Sequential, 1);
        e.apply_batch(&[Op::Insert(7), Op::Insert(7), Op::Insert(9)]);
        // Lookups see pre-batch placements; the same-batch delete of key
        // 9 cannot see the same-batch insert of key 11.
        let summary = e.apply_batch(&[
            Op::Delete(7),
            Op::Lookup(7),
            Op::Insert(11),
            Op::Delete(11),
            Op::Delete(9),
            Op::Lookup(404),
        ]);
        assert_eq!(summary.inserts, 1);
        assert_eq!(summary.deletes, 2);
        assert_eq!(summary.missed_deletes, 1, "same-batch insert not deletable");
        assert_eq!(summary.lookups, 2);
        assert_eq!(summary.hits, 1);
        // Balls: 3 placed, 2 deleted, 1 placed = 2 live.
        assert_eq!(e.total_balls(), 2);
        // The delete of key 7 freed the newest of its two balls; the
        // next batch can still delete the older one.
        let s2 = e.apply_batch(&[Op::Delete(7), Op::Delete(7)]);
        assert_eq!((s2.deletes, s2.missed_deletes), (1, 1));
    }

    #[test]
    fn rounds_batches_are_order_sensitive_only_across_barriers() {
        // Two engines serve the same two batches; within each batch the
        // op order differs. Final state must match exactly.
        let batch1: Vec<Op> = (0..500u64).map(Op::Insert).collect();
        let mut batch2: Vec<Op> = (0..500u64)
            .map(|i| {
                if i % 3 == 0 {
                    Op::Delete(i)
                } else {
                    Op::Insert(i)
                }
            })
            .collect();
        let mut a = rounds_engine(4, WorkerMode::Persistent, 2);
        a.apply_batch(&batch1);
        a.apply_batch(&batch2);
        let mut b = rounds_engine(4, WorkerMode::Persistent, 2);
        let mut shuffled1 = batch1.clone();
        shuffled1.rotate_left(123);
        b.apply_batch(&shuffled1);
        batch2.reverse();
        b.apply_batch(&batch2);
        assert_eq!(global_loads(&a), global_loads(&b));
        assert!(a.stats().matches(&b.stats()), "stats must match too");
    }

    #[test]
    fn rounds_threshold_escalates_past_full_tables() {
        // 64 bins, 256 balls: mean load 4, so the threshold must rise
        // repeatedly and every ball must still land.
        let cfg = EngineConfig::new(2, 32, 3).seed(7).rounds();
        let mut e = Engine::by_name("double", cfg).unwrap();
        let ops: Vec<Op> = (0..256u64).map(Op::Insert).collect();
        assert_eq!(e.apply_batch(&ops).inserts, 256);
        assert_eq!(e.total_balls(), 256);
        let report = e.take_round_report().unwrap();
        assert!(report.max_load >= 4, "max load {}", report.max_load);
        assert_eq!(report.max_rounds_per_batch, report.rounds);
    }

    #[test]
    fn take_round_report_is_none_outside_rounds_mode() {
        let mut e = engine(2, WorkerMode::Sequential);
        assert!(e.take_round_report().is_none());
    }
}
