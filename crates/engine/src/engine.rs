//! The sharded engine: routing, batched ingestion, parallel application.

use crate::channel;
use crate::metrics::{EngineStats, ShardStats};
use crate::op::{BatchSummary, Op};
use crate::shard::Shard;
use crate::sink::{MetricRecord, MetricsSink};
use ba_core::TieBreak;
use ba_hash::{AnyScheme, ChoiceScheme};
use ba_rng::RngKind;
use std::fmt;
use std::time::{Duration, Instant};

/// How shards obtain each ball's choice vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChoiceMode {
    /// Fresh choices from the shard's RNG stream per insert — the paper's
    /// process model. Re-inserting a deleted key draws new bins.
    #[default]
    Stream,
    /// Choices derived from `hash(key, shard_salt)` — the hash-table
    /// model. Re-inserting a key replays its exact `f + k·g` probe
    /// sequence; the RNG stream is consumed only by random tie-breaks.
    Keyed,
}

/// How op streams flow from the producer into the shard workers.
///
/// Either mode yields bit-identical shard states, summaries, and
/// [`EngineStats`](crate::EngineStats) percentiles for the same op
/// stream — each shard still applies exactly its routed subsequence in
/// order — so the axis trades only latency/throughput, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestMode {
    /// Strictly alternate generate/apply phases: buffer one batch, apply
    /// it across all shards, wait for every shard, repeat. Simple and
    /// allocation-light, but producers idle while workers run and vice
    /// versa.
    #[default]
    Phased,
    /// Overlap production with application: a producer stage partitions
    /// the op stream and ships per-shard batches into bounded per-worker
    /// queues (the in-repo channel's `bounded(cap)` flavour) while the
    /// persistent workers apply earlier batches. `queue_depth` caps how
    /// many batches may sit queued per worker; a full queue blocks the
    /// producer (backpressure) rather than buffering without limit.
    Pipelined {
        /// Maximum batches queued per shard worker before the producer
        /// blocks. Depth 1 is a strict double-buffer (worker applies
        /// batch `k` while the producer fills `k+1`); larger depths
        /// absorb burstier routing at the cost of memory.
        queue_depth: usize,
    },
}

/// How batches are applied across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkerMode {
    /// Apply shard by shard on the calling thread.
    Sequential,
    /// Spawn scoped threads per batch — the pre-worker-pool baseline,
    /// kept so `engine_throughput` can benchmark the pool against it.
    Scoped,
    /// Long-lived channel-fed worker threads, one per shard, spawned on
    /// the first parallel batch and joined when the engine drops.
    #[default]
    Persistent,
}

/// Configuration for a sharded engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of independent shards.
    pub shards: usize,
    /// Bins per shard table.
    pub bins_per_shard: u64,
    /// Choices per ball within a shard.
    pub d: usize,
    /// Tie-breaking rule used by every shard.
    pub tie: TieBreak,
    /// Master seed; shard `i` uses stream `SeedSequence::new(seed).child(i)`.
    pub seed: u64,
    /// Where choice vectors come from (stream or keyed derivation).
    pub mode: ChoiceMode,
    /// Which generator family drives each shard's stream (the paper's
    /// PRNG ablation, at the engine layer).
    pub rng: RngKind,
    /// How batches are applied across shards. Results are bit-identical
    /// for every mode; only throughput differs.
    pub workers: WorkerMode,
    /// How op streams are ingested: strict generate/apply phases or the
    /// pipelined producer/worker overlap. Results are bit-identical for
    /// either mode; only throughput and memory bounds differ.
    pub ingest: IngestMode,
}

impl EngineConfig {
    /// A config with random ties, seed 1, stream choices, the xoshiro
    /// generator, and persistent parallel application.
    pub fn new(shards: usize, bins_per_shard: u64, d: usize) -> Self {
        Self {
            shards,
            bins_per_shard,
            d,
            tie: TieBreak::Random,
            seed: 1,
            mode: ChoiceMode::default(),
            rng: RngKind::default(),
            workers: WorkerMode::default(),
            ingest: IngestMode::default(),
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the tie-breaking rule.
    pub fn tie(mut self, tie: TieBreak) -> Self {
        self.tie = tie;
        self
    }

    /// Sets the choice mode.
    pub fn mode(mut self, mode: ChoiceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects keyed choice derivation (`hash(key, shard_salt)`).
    pub fn keyed(self) -> Self {
        self.mode(ChoiceMode::Keyed)
    }

    /// Sets the generator family for every shard's stream.
    pub fn rng(mut self, rng: RngKind) -> Self {
        self.rng = rng;
        self
    }

    /// Sets the worker mode for batch application.
    pub fn workers(mut self, workers: WorkerMode) -> Self {
        self.workers = workers;
        self
    }

    /// Chooses sequential (deterministic-by-construction) application.
    pub fn sequential(self) -> Self {
        self.workers(WorkerMode::Sequential)
    }

    /// Sets the ingestion mode for [`Engine::serve`]/[`Engine::serve_replay`].
    pub fn ingest(mut self, ingest: IngestMode) -> Self {
        self.ingest = ingest;
        self
    }

    /// Selects pipelined ingestion with the given per-worker queue depth
    /// (see [`IngestMode::Pipelined`]).
    pub fn pipelined(self, queue_depth: usize) -> Self {
        self.ingest(IngestMode::Pipelined { queue_depth })
    }
}

/// Routes a key to a shard: SplitMix64 finalizer, then a multiply-shift
/// range reduction. Stable across runs — the route is part of the engine's
/// deterministic contract.
#[inline]
pub fn route(key: u64, shards: usize) -> usize {
    let mixed = ba_rng::SplitMix64::mix(key ^ 0x9E6C_63D0_876A_3F6B);
    ((mixed as u128 * shards as u128) >> 64) as usize
}

/// One unit of work for a persistent shard worker. The shard travels
/// *by value* through the channel — a shallow move of the struct, not a
/// deep copy of its bin table and key index — so between jobs the engine
/// keeps full ownership (and `&`-access) to every shard.
enum Job<S> {
    /// Phased mode: apply one pre-partitioned batch and report back. The
    /// op buffer rides home with the result so the engine reuses it for
    /// the next batch instead of reallocating.
    Batch {
        /// The worker's shard, shipped for the duration of the batch.
        shard: Shard<S>,
        /// This shard's slice of the batch, in arrival order.
        ops: Vec<Op>,
    },
    /// Pipelined mode: own the shard for a whole ingestion stream,
    /// applying batches as the producer ships them into the bounded
    /// queue, until the producer disconnects. Drained op buffers return
    /// through `recycle` so the producer refills them instead of
    /// allocating fresh ones.
    Stream {
        /// The worker's shard, shipped for the duration of the stream.
        shard: Shard<S>,
        /// Bounded queue of op batches; disconnect ends the stream.
        batches: channel::Receiver<Vec<Op>>,
        /// Return path for drained op buffers.
        recycle: channel::Sender<Vec<Op>>,
        /// Whether to time each batch apply for metrics (set only when a
        /// sink is attached, so untracked streams pay nothing).
        track: bool,
    },
}

/// What a worker reports after finishing a job: the shard (returned to
/// its slot), the summary of everything applied, the drained op buffer
/// for reuse (batch jobs; stream jobs recycle buffers through their own
/// channel and return an empty placeholder), and — for tracked stream
/// jobs — the per-batch apply latencies, in batch arrival order, that
/// the engine joins with its producer-side ship records.
struct JobDone<S> {
    shard: Shard<S>,
    summary: BatchSummary,
    buffer: Vec<Op>,
    applies: Vec<Duration>,
}

/// The persistent worker pool: one long-lived thread per shard, fed
/// through a per-worker job channel and reporting through a per-worker
/// results channel. Per-worker result channels (rather than one shared
/// queue) make worker death observable: a panicking worker drops its
/// sender, so the engine's `recv` on that worker's channel errors out
/// instead of blocking forever. Dropping the pool closes the job channels
/// (each worker's `recv` then errors out and the thread exits) and joins
/// every handle — graceful shutdown without flags or timeouts.
struct WorkerPool<S> {
    jobs: Vec<channel::Sender<Job<S>>>,
    results: Vec<channel::Receiver<JobDone<S>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<S: ChoiceScheme + 'static> WorkerPool<S> {
    fn spawn(shards: usize) -> Self {
        let mut jobs = Vec::with_capacity(shards);
        let mut results = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for id in 0..shards {
            let (tx, rx) = channel::channel::<Job<S>>();
            let (results_tx, results_rx) = channel::channel();
            let handle = std::thread::Builder::new()
                .name(format!("ba-shard-{id}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let result = match job {
                            Job::Batch { mut shard, ops } => {
                                let summary = shard.apply(&ops);
                                JobDone {
                                    shard,
                                    summary,
                                    buffer: ops,
                                    applies: Vec::new(),
                                }
                            }
                            Job::Stream {
                                mut shard,
                                batches,
                                recycle,
                                track,
                            } => {
                                let mut summary = BatchSummary::default();
                                let mut applies = Vec::new();
                                while let Ok(mut ops) = batches.recv() {
                                    if track {
                                        let t0 = Instant::now();
                                        summary.absorb(&shard.apply(&ops));
                                        applies.push(t0.elapsed());
                                    } else {
                                        summary.absorb(&shard.apply(&ops));
                                    }
                                    ops.clear();
                                    // A recycle error means the producer is
                                    // gone (it panicked); keep draining so
                                    // the stream still ends cleanly.
                                    let _ = recycle.send(ops);
                                }
                                JobDone {
                                    shard,
                                    summary,
                                    buffer: Vec::new(),
                                    applies,
                                }
                            }
                        };
                        // A send error means the engine is gone mid-job
                        // (it panicked); nothing left to report to.
                        if results_tx.send(result).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker thread");
            jobs.push(tx);
            results.push(results_rx);
            handles.push(handle);
        }
        Self {
            jobs,
            results,
            handles,
        }
    }
}

impl<S> fmt::Debug for WorkerPool<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl<S> Drop for WorkerPool<S> {
    fn drop(&mut self) {
        // Disconnect every job channel; workers drain and exit.
        self.jobs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A sharded, concurrently-served balanced-allocation engine.
///
/// Every shard runs the paper's "least loaded of d choices" placement over
/// its own bin table, with choices produced by its own copy of a
/// [`ChoiceScheme`] — drawn from the shard's private RNG stream
/// ([`ChoiceMode::Stream`]) or derived from each key
/// ([`ChoiceMode::Keyed`]). Batches of [`Op`]s are partitioned by
/// [`route`] and applied to all shards — by persistent channel-fed worker
/// threads under [`WorkerMode::Persistent`] — and each shard's outcome
/// depends only on its own ordered op subsequence, so the engine's final
/// state is bit-identical between sequential and parallel application and
/// across any number of worker threads.
pub struct Engine<S> {
    config: EngineConfig,
    /// `None` only transiently while a shard is out with a worker during
    /// a persistent parallel batch; always `Some` between public calls.
    shards: Vec<Option<Shard<S>>>,
    pool: Option<WorkerPool<S>>,
    /// Per-shard partition buffers, reused across batches so the hot path
    /// never allocates a fresh `Vec<Vec<Op>>`. Under persistent workers
    /// the buffers travel to the workers with each batch job and ride
    /// home with the results — double-buffered in the sense that the
    /// engine and the workers alternate ownership without either side
    /// ever reallocating.
    scratch: Vec<Vec<Op>>,
    /// Reusable chunking buffer for [`Engine::serve_replay`], kept across
    /// calls so repeated serving allocates nothing after warm-up.
    replay_buf: Vec<Op>,
    /// Drained pipeline batch buffers reclaimed at the end of each
    /// [`Engine::serve_pipelined`] call, so repeated short streams reuse
    /// their buffers across calls just like phased serving reuses
    /// `scratch`.
    spare_buffers: Vec<Vec<Op>>,
    /// Optional per-batch metrics consumer (see [`Engine::set_sink`]).
    /// Sinks observe, never steer: no sink call can change what the
    /// engine allocates, so results stay bit-identical with or without
    /// one attached.
    sink: Option<Box<dyn MetricsSink + Send>>,
    /// Construction instant — the monotonic anchor every
    /// [`MetricRecord::at`] offset is measured from.
    started: Instant,
    /// Records emitted so far; the next record's sequence number.
    emitted: u64,
}

impl<S: fmt::Debug> fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("shards", &self.shards)
            .field("pool", &self.pool)
            .field("sink", &self.sink.is_some())
            .field("emitted", &self.emitted)
            .finish_non_exhaustive()
    }
}

/// Counts the op kinds in a batch — the record's pre-apply op mix.
fn op_mix(ops: &[Op]) -> (u32, u32, u32) {
    let (mut inserts, mut deletes, mut lookups) = (0u32, 0u32, 0u32);
    for op in ops {
        match op {
            Op::Insert(_) => inserts += 1,
            Op::Delete(_) => deletes += 1,
            Op::Lookup(_) => lookups += 1,
        }
    }
    (inserts, deletes, lookups)
}

/// Producer-side half of a pipelined batch measurement: everything known
/// at ship time, joined with the worker-side apply latency at stream end.
struct PendingShip {
    at: Duration,
    ops: u32,
    inserts: u32,
    deletes: u32,
    lookups: u32,
    stalls: u32,
    stalled: Duration,
    occupancy: u32,
}

impl Engine<AnyScheme> {
    /// Builds an engine whose shards run the named scheme
    /// (see [`AnyScheme::by_name`]). Returns `None` for an unknown name.
    pub fn by_name(name: &str, config: EngineConfig) -> Option<Self> {
        // Probe once so an unknown name fails before any shard is built.
        AnyScheme::by_name(name, config.bins_per_shard, config.d)?;
        Some(Self::with_scheme_factory(config, |cfg| {
            AnyScheme::by_name(name, cfg.bins_per_shard, cfg.d).expect("probed above")
        }))
    }
}

impl<S: ChoiceScheme + 'static> Engine<S> {
    /// Builds an engine, constructing one scheme per shard via `factory`.
    pub fn with_scheme_factory(config: EngineConfig, factory: impl Fn(&EngineConfig) -> S) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        let shards = (0..config.shards)
            .map(|id| Some(Shard::new(id, factory(&config), &config)))
            .collect();
        Self {
            config,
            shards,
            pool: None,
            scratch: Vec::new(),
            replay_buf: Vec::new(),
            spare_buffers: Vec::new(),
            sink: None,
            started: Instant::now(),
            emitted: 0,
        }
    }

    /// Attaches a metrics sink: every subsequently applied batch emits
    /// one [`MetricRecord`] into it (phased batches as they apply;
    /// pipelined batches when their stream drains — the two halves of a
    /// pipelined measurement live on different threads and join at end
    /// of stream). Replaces — after flushing — any sink already
    /// attached. Sinks only observe, so attaching one never changes
    /// allocation results.
    pub fn set_sink(&mut self, sink: Box<dyn MetricsSink + Send>) {
        if let Some(mut old) = self.sink.replace(sink) {
            old.finish();
        }
    }

    /// Detaches the sink, flushing it first (so e.g. a
    /// [`JsonLinesExporter`](crate::JsonLinesExporter) writes its final
    /// partial window). Returns `None` if no sink was attached.
    pub fn take_sink(&mut self) -> Option<Box<dyn MetricsSink + Send>> {
        let mut sink = self.sink.take()?;
        sink.finish();
        Some(sink)
    }

    /// Whether a metrics sink is currently attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shard at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= config.shards`.
    pub fn shard(&self, id: usize) -> &Shard<S> {
        self.shards[id]
            .as_ref()
            .expect("shard present between batches")
    }

    /// Read access to the shards (metrics, tests), indexed by shard id.
    pub fn shards(&self) -> Vec<&Shard<S>> {
        self.iter_shards().collect()
    }

    /// Allocation-free shard iteration for internal aggregates.
    fn iter_shards(&self) -> impl Iterator<Item = &Shard<S>> {
        self.shards
            .iter()
            .map(|slot| slot.as_ref().expect("shard present between batches"))
    }

    /// Total balls currently placed across all shards.
    pub fn total_balls(&self) -> u64 {
        self.iter_shards().map(|s| s.allocation().balls()).sum()
    }

    /// The maximum bin load across all shards.
    pub fn max_load(&self) -> u32 {
        self.iter_shards()
            .map(|s| s.allocation().max_load())
            .max()
            .unwrap_or(0)
    }

    /// Partitions `ops` by shard into the reusable scratch buffers,
    /// preserving arrival order per shard. Buffers are sized once at
    /// `ops.len() / shards + 1` — the expected per-shard share — and
    /// reused (cleared, never shrunk) on every subsequent batch.
    fn partition_into_scratch(&mut self, ops: &[Op]) {
        let shards = self.shards.len();
        if self.scratch.len() != shards {
            let cap = ops.len() / shards + 1;
            self.scratch = (0..shards).map(|_| Vec::with_capacity(cap)).collect();
        } else {
            for buf in &mut self.scratch {
                buf.clear();
            }
        }
        for &op in ops {
            self.scratch[route(op.key(), shards)].push(op);
        }
    }

    /// Applies one batch of operations and returns its aggregate summary.
    ///
    /// Partitioning is stable: two ops on the same key always reach the
    /// same shard in their batch order, so insert-then-delete sequences
    /// behave as written even when shards run on different threads.
    ///
    /// With a sink attached (see [`Engine::set_sink`]) each call also
    /// emits one engine-wide [`MetricRecord`] (`shard: None`; queue
    /// fields zero — phased batches never touch the bounded queues).
    pub fn apply_batch(&mut self, ops: &[Op]) -> BatchSummary {
        // Take the sink out for the duration so the inner path borrows
        // `self` freely; restore it afterwards.
        let Some(mut sink) = self.sink.take() else {
            return self.apply_batch_inner(ops);
        };
        let at = self.started.elapsed();
        let t0 = Instant::now();
        let summary = self.apply_batch_inner(ops);
        let apply = t0.elapsed();
        let (inserts, deletes, lookups) = op_mix(ops);
        let record = MetricRecord {
            seq: self.emitted,
            at,
            shard: None,
            ops: ops.len() as u32,
            inserts,
            deletes,
            lookups,
            apply,
            queue_occupancy: 0,
            stalls: 0,
            stalled: Duration::ZERO,
        };
        self.emitted += 1;
        sink.record(&record);
        self.sink = Some(sink);
        summary
    }

    /// The sink-free batch application path shared by every worker mode.
    fn apply_batch_inner(&mut self, ops: &[Op]) -> BatchSummary {
        let mut total = BatchSummary::default();
        if self.shards.len() == 1 {
            // One shard: everything routes to it — apply the batch slice
            // directly, no partition pass at all.
            let shard = self.shards[0]
                .as_mut()
                .expect("shard present between batches");
            return shard.apply(ops);
        }
        self.partition_into_scratch(ops);
        match self.config.workers {
            WorkerMode::Sequential => {
                for (slot, ops) in self.shards.iter_mut().zip(self.scratch.iter()) {
                    if ops.is_empty() {
                        continue;
                    }
                    let shard = slot.as_mut().expect("shard present between batches");
                    total.absorb(&shard.apply(ops));
                }
            }
            WorkerMode::Scoped => {
                let scratch = &self.scratch;
                let summaries = std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(scratch.iter())
                        .filter(|(_, ops)| !ops.is_empty())
                        .map(|(slot, ops)| {
                            let shard = slot.as_mut().expect("shard present between batches");
                            scope.spawn(move || shard.apply(ops))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect::<Vec<_>>()
                });
                for summary in &summaries {
                    total.absorb(summary);
                }
            }
            WorkerMode::Persistent => {
                let pool = self
                    .pool
                    .get_or_insert_with(|| WorkerPool::spawn(self.shards.len()));
                for id in 0..self.shards.len() {
                    if self.scratch[id].is_empty() {
                        continue;
                    }
                    let shard = self.shards[id]
                        .take()
                        .expect("shard present between batches");
                    let ops = std::mem::take(&mut self.scratch[id]);
                    if pool.jobs[id].send(Job::Batch { shard, ops }).is_err() {
                        panic!("shard worker {id} exited early");
                    }
                }
                for id in 0..self.shards.len() {
                    if self.shards[id].is_some() {
                        continue; // shard never left: empty slice this batch
                    }
                    // A recv error means the worker dropped its sender
                    // without replying — it panicked mid-apply.
                    let done = pool.results[id]
                        .recv()
                        .unwrap_or_else(|_| panic!("shard worker {id} panicked"));
                    self.shards[id] = Some(done.shard);
                    self.scratch[id] = done.buffer;
                    total.absorb(&done.summary);
                }
            }
        }
        total
    }

    /// Applies a long op stream in `batch_size` chunks; returns the overall
    /// summary. This is the engine's ingestion entry point for drivers that
    /// generate traffic faster than they want to synchronize. Delegates to
    /// [`Engine::serve_replay`] — slices and iterators share one chunking
    /// loop — and therefore honours [`EngineConfig::ingest`].
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn serve(&mut self, ops: &[Op], batch_size: usize) -> BatchSummary {
        self.serve_replay(ops.iter().copied(), batch_size)
    }

    /// Serves an op *stream* in `batch_size` chunks without materializing
    /// it: the streaming ingestion path. Captured workloads (see
    /// `ba-workload`'s replay module) can hold millions of ops; this
    /// buffers one batch at a time, so replaying a capture costs the same
    /// memory as serving live traffic. Equivalent to collecting the
    /// iterator and calling [`Engine::serve`]. Under
    /// [`IngestMode::Pipelined`] the stream flows through
    /// [`Engine::serve_pipelined`] instead of phased chunking — results
    /// are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn serve_replay(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
    ) -> BatchSummary {
        assert!(batch_size > 0, "batch size must be positive");
        if let IngestMode::Pipelined { queue_depth } = self.config.ingest {
            // `batch_size` keeps its phased meaning — ops per engine-wide
            // batch — so the ingest axis never changes per-worker message
            // granularity: each shard sees ~batch_size/shards ops per
            // batch under either mode, and a phased-vs-pipelined
            // comparison at the same `batch_size` isolates the overlap.
            let per_shard = (batch_size / self.shards.len()).max(1);
            return self.serve_pipelined(ops, per_shard, queue_depth);
        }
        let mut total = BatchSummary::default();
        let mut buf = std::mem::take(&mut self.replay_buf);
        buf.clear();
        buf.reserve(batch_size);
        for op in ops {
            buf.push(op);
            if buf.len() == batch_size {
                total.absorb(&self.apply_batch(&buf));
                buf.clear();
            }
        }
        if !buf.is_empty() {
            total.absorb(&self.apply_batch(&buf));
            buf.clear();
        }
        self.replay_buf = buf;
        total
    }

    /// Serves an op stream with production and application overlapped:
    /// the calling thread acts as the producer stage — routing each op
    /// into a per-shard buffer and shipping full buffers into that
    /// shard's bounded queue — while every persistent worker applies
    /// previously shipped batches concurrently. A queue at `queue_depth`
    /// blocks the producer until its worker catches up (backpressure),
    /// so memory stays bounded by
    /// `shards × (queue_depth + 2) × batch_size` ops regardless of
    /// stream length.
    ///
    /// Each shard still applies exactly its routed subsequence in arrival
    /// order, so the outcome — shard loads, max load, batch summary, and
    /// every [`EngineStats`](crate::EngineStats) percentile — is
    /// bit-identical to phased serving in any [`WorkerMode`], including
    /// [`WorkerMode::Sequential`]. Only throughput differs: here the
    /// producer (op generation, routing) runs concurrently with shard
    /// application instead of alternating with it.
    ///
    /// `batch_size` here is the *per-shard* batch granularity: each
    /// worker receives batches of up to `batch_size` ops. (The config-
    /// driven entry points [`Engine::serve`]/[`Engine::serve_replay`]
    /// pass `batch_size / shards` so their `batch_size` argument keeps
    /// one meaning across ingest modes.) Drained batch buffers recycle
    /// back to the producer — and persist on the engine across calls —
    /// so steady-state ingestion performs no allocation. This path
    /// always uses the persistent worker pool (spawning it on first
    /// use) regardless of [`EngineConfig::workers`], which only governs
    /// phased [`Engine::apply_batch`] application.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `queue_depth` is zero, or if a shard
    /// worker panics mid-stream (the worker's panic is surfaced, never a
    /// deadlock).
    pub fn serve_pipelined(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
        queue_depth: usize,
    ) -> BatchSummary {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(queue_depth > 0, "queue depth must be positive");
        let shards = self.shards.len();
        let track = self.sink.is_some();
        let pool = self.pool.get_or_insert_with(|| WorkerPool::spawn(shards));
        // Stage 0: ship every shard to its worker with a fresh bounded
        // batch queue and a recycle channel for drained buffers.
        let mut batches = Vec::with_capacity(shards);
        let mut recycled = Vec::with_capacity(shards);
        for (id, slot) in self.shards.iter_mut().enumerate() {
            let (batch_tx, batch_rx) = channel::bounded::<Vec<Op>>(queue_depth);
            let (recycle_tx, recycle_rx) = channel::channel();
            let shard = slot.take().expect("shard present between batches");
            let job = Job::Stream {
                shard,
                batches: batch_rx,
                recycle: recycle_tx,
                track,
            };
            if pool.jobs[id].send(job).is_err() {
                panic!("shard worker {id} exited early");
            }
            batches.push(batch_tx);
            recycled.push(recycle_rx);
        }
        // Producer-side measurement: one PendingShip per shipped batch,
        // joined with its worker-side apply latency after the drain.
        let started = self.started;
        let mut pending: Vec<Vec<PendingShip>> = (0..shards).map(|_| Vec::new()).collect();
        let mut ship = |id: usize, full: Vec<Op>, batches: &[channel::Sender<Vec<Op>>]| {
            if !track {
                return batches[id].send(full).is_ok();
            }
            let (inserts, deletes, lookups) = op_mix(&full);
            let ops = full.len() as u32;
            let Ok(stalled) = batches[id].send_tracked(full) else {
                return false;
            };
            pending[id].push(PendingShip {
                at: started.elapsed(),
                ops,
                inserts,
                deletes,
                lookups,
                stalls: u32::from(stalled > Duration::ZERO),
                stalled,
                occupancy: batches[id].queued() as u32,
            });
            true
        };
        // Producer stage: route ops into per-shard filling buffers; a
        // full buffer ships into the bounded queue (blocking only when
        // the worker is queue_depth batches behind) and is replaced by a
        // recycled buffer the worker already drained, a spare from a
        // previous call, or — only while the pipeline warms up — a fresh
        // allocation. Past warm-up this loop allocates nothing, across
        // calls included.
        let mut spare = std::mem::take(&mut self.spare_buffers);
        let grab = |spare: &mut Vec<Vec<Op>>| {
            spare
                .pop()
                .map(|mut buf| {
                    buf.reserve(batch_size);
                    buf
                })
                .unwrap_or_else(|| Vec::with_capacity(batch_size))
        };
        let mut filling: Vec<Vec<Op>> = (0..shards).map(|_| grab(&mut spare)).collect();
        for op in ops {
            let id = route(op.key(), shards);
            filling[id].push(op);
            if filling[id].len() == batch_size {
                let full = std::mem::take(&mut filling[id]);
                if !ship(id, full, &batches) {
                    panic!("shard worker {id} panicked");
                }
                filling[id] = recycled[id].try_recv().unwrap_or_else(|| grab(&mut spare));
            }
        }
        for (id, buf) in filling.into_iter().enumerate() {
            if buf.is_empty() {
                spare.push(buf); // keep the capacity for the next call
            } else if !ship(id, buf, &batches) {
                panic!("shard worker {id} panicked");
            }
        }
        // `ship` borrowed `pending` mutably; past this point only the
        // closure-free join below touches it.
        #[allow(clippy::drop_non_drop)]
        drop(ship);
        // Disconnect the batch queues: each worker drains what is queued,
        // then reports its shard and stream summary.
        drop(batches);
        let mut total = BatchSummary::default();
        let mut applies: Vec<Vec<Duration>> = Vec::with_capacity(shards);
        for id in 0..shards {
            let done = pool.results[id]
                .recv()
                .unwrap_or_else(|_| panic!("shard worker {id} panicked"));
            self.shards[id] = Some(done.shard);
            total.absorb(&done.summary);
            applies.push(done.applies);
        }
        // Reclaim every buffer the workers drained after the producer
        // stopped picking them up; the next serve_pipelined call starts
        // from this pool instead of the allocator.
        for rx in &recycled {
            while let Some(buf) = rx.try_recv() {
                spare.push(buf);
            }
        }
        self.spare_buffers = spare;
        // Join the producer-side ship records with the worker-side apply
        // latencies (same per-shard batch order on both sides), then
        // emit the stream's records in ship-time order.
        if let Some(mut sink) = self.sink.take() {
            let mut records = Vec::new();
            for (id, (ships, shard_applies)) in pending.into_iter().zip(applies).enumerate() {
                debug_assert_eq!(ships.len(), shard_applies.len(), "shard {id} batch count");
                for (ship, apply) in ships.into_iter().zip(shard_applies) {
                    records.push(MetricRecord {
                        seq: 0, // assigned below, in ship-time order
                        at: ship.at,
                        shard: Some(id),
                        ops: ship.ops,
                        inserts: ship.inserts,
                        deletes: ship.deletes,
                        lookups: ship.lookups,
                        apply,
                        queue_occupancy: ship.occupancy,
                        stalls: ship.stalls,
                        stalled: ship.stalled,
                    });
                }
            }
            records.sort_by_key(|r| (r.at, r.shard));
            for mut record in records {
                record.seq = self.emitted;
                self.emitted += 1;
                sink.record(&record);
            }
            self.sink = Some(sink);
        }
        total
    }

    /// Snapshot of per-shard and aggregate load/traffic statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats::new(
            self.iter_shards()
                .map(|s| {
                    ShardStats::capture(
                        s.id(),
                        s.allocation(),
                        s.lifetime_summary(),
                        s.observations(),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SharedSink;
    use ba_core::{run_process, run_process_keys};
    use ba_hash::{ChoiceSource, DoubleHashing};
    use ba_rng::SeedSequence;

    fn engine(shards: usize, workers: WorkerMode) -> Engine<AnyScheme> {
        let cfg = EngineConfig::new(shards, 256, 3).seed(42).workers(workers);
        Engine::by_name("double", cfg).unwrap()
    }

    fn mixed_ops(count: u64) -> Vec<Op> {
        (0..count)
            .map(|i| match i % 5 {
                0..=2 => Op::Insert(i / 2),
                3 => Op::Lookup(i / 3),
                _ => Op::Delete(i / 2),
            })
            .collect()
    }

    #[test]
    fn unknown_scheme_rejected() {
        assert!(Engine::by_name("nope", EngineConfig::new(2, 64, 2)).is_none());
    }

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7, 64] {
            for key in 0..1000u64 {
                let s = route(key, shards);
                assert!(s < shards);
                assert_eq!(s, route(key, shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn route_spreads_keys() {
        let shards = 8;
        let mut counts = vec![0u64; shards];
        for key in 0..80_000u64 {
            counts[route(key, shards)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "skewed routing {counts:?}"
            );
        }
    }

    #[test]
    fn every_worker_mode_agrees() {
        let ops = mixed_ops(20_000);
        let mut seq = engine(8, WorkerMode::Sequential);
        let ss = seq.serve(&ops, 1_024);
        for workers in [WorkerMode::Scoped, WorkerMode::Persistent] {
            let mut par = engine(8, workers);
            let sp = par.serve(&ops, 1_024);
            assert_eq!(sp, ss, "{workers:?}");
            for (a, b) in par.shards().iter().zip(seq.shards()) {
                assert_eq!(
                    a.allocation().loads(),
                    b.allocation().loads(),
                    "{workers:?}"
                );
            }
        }
    }

    #[test]
    fn persistent_pool_survives_many_batches() {
        // The worker pool spawns once and serves every subsequent batch;
        // per-shard state keeps matching the sequential engine throughout.
        let ops = mixed_ops(10_000);
        let mut par = engine(4, WorkerMode::Persistent);
        let mut seq = engine(4, WorkerMode::Sequential);
        for chunk in ops.chunks(100) {
            assert_eq!(par.apply_batch(chunk), seq.apply_batch(chunk));
        }
        for (a, b) in par.shards().iter().zip(seq.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn serve_replay_equals_serve() {
        // The replay ingestion path is the slice path, minus the slice:
        // identical summaries and shard states, batch boundaries included.
        let ops = mixed_ops(7_777);
        for workers in [WorkerMode::Sequential, WorkerMode::Persistent] {
            let mut live = engine(4, workers);
            let mut replayed = engine(4, workers);
            let a = live.serve(&ops, 512);
            let b = replayed.serve_replay(ops.iter().copied(), 512);
            assert_eq!(a, b, "{workers:?}");
            for (x, y) in live.shards().iter().zip(replayed.shards()) {
                assert_eq!(
                    x.allocation().loads(),
                    y.allocation().loads(),
                    "{workers:?}"
                );
            }
        }
    }

    #[test]
    fn serve_pipelined_equals_sequential_serving() {
        // The pipelined acceptance contract at the unit level: identical
        // summaries, per-shard loads, and stats snapshots to sequential
        // phased serving, for every queue depth — batch boundaries and
        // producer/worker interleaving must be invisible in the results.
        let ops = mixed_ops(20_000);
        let mut seq = engine(8, WorkerMode::Sequential);
        let expected = seq.serve(&ops, 1_024);
        for depth in [1usize, 4, 64] {
            let mut pip = engine(8, WorkerMode::Sequential);
            let got = pip.serve_pipelined(ops.iter().copied(), 1_024, depth);
            assert_eq!(got, expected, "depth {depth}");
            assert!(pip.stats().matches(&seq.stats()), "depth {depth}");
            for (a, b) in pip.shards().iter().zip(seq.shards()) {
                assert_eq!(
                    a.allocation().loads(),
                    b.allocation().loads(),
                    "depth {depth}"
                );
            }
        }
    }

    #[test]
    fn pipelined_ingest_mode_flows_through_serve_and_serve_replay() {
        // The config axis: an engine configured Pipelined serves through
        // the pipeline on both entry points and still matches phased.
        let ops = mixed_ops(9_999);
        let mut phased = engine(4, WorkerMode::Persistent);
        let expected = phased.serve(&ops, 512);
        let cfg = EngineConfig::new(4, 256, 3).seed(42).pipelined(2);
        assert_eq!(cfg.ingest, IngestMode::Pipelined { queue_depth: 2 });
        let mut via_serve = Engine::by_name("double", cfg.clone()).unwrap();
        assert_eq!(via_serve.serve(&ops, 512), expected);
        let mut via_replay = Engine::by_name("double", cfg).unwrap();
        assert_eq!(via_replay.serve_replay(ops.iter().copied(), 512), expected);
        for (a, b) in via_serve.shards().iter().zip(phased.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn serve_pipelined_survives_repeated_calls_and_single_shard() {
        // The stream jobs and the pool outlive any one call; a one-shard
        // engine still pipelines (producer/worker overlap is the point).
        let ops = mixed_ops(5_000);
        let mut seq = engine(1, WorkerMode::Sequential);
        let mut pip = engine(1, WorkerMode::Sequential);
        for chunk in ops.chunks(1_000) {
            let a = seq.serve(chunk, 128);
            let b = pip.serve_pipelined(chunk.iter().copied(), 128, 2);
            assert_eq!(a, b);
        }
        assert_eq!(
            seq.shard(0).allocation().loads(),
            pip.shard(0).allocation().loads()
        );
        // The drained batch buffers survive the call on the engine's
        // spare pool, so the next stream starts allocation-free.
        assert!(
            !pip.spare_buffers.is_empty(),
            "pipeline buffers were dropped instead of pooled"
        );
    }

    #[test]
    fn serve_pipelined_handles_empty_stream() {
        let mut eng = engine(4, WorkerMode::Persistent);
        assert_eq!(
            eng.serve_pipelined(std::iter::empty(), 64, 4),
            BatchSummary::default()
        );
        assert_eq!(eng.total_balls(), 0);
    }

    #[test]
    fn pipelined_worker_panic_propagates_instead_of_deadlocking() {
        // A shard panicking mid-stream must surface as a panic in
        // serve_pipelined — whether the producer is blocked in a bounded
        // send or waiting on the worker's result — never a deadlock.
        let result = std::panic::catch_unwind(|| {
            let cfg = EngineConfig::new(2, 64, 1).seed(1).keyed();
            let mut eng = Engine::with_scheme_factory(cfg, |_| Exploding { n: 64, poison: 42 });
            eng.serve_pipelined((0..4_096u64).map(Op::Insert), 8, 1);
        });
        assert!(result.is_err(), "pipelined worker panic was swallowed");
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_rejected() {
        engine(2, WorkerMode::Persistent).serve_pipelined([Op::Insert(1)], 8, 0);
    }

    #[test]
    fn sequential_batches_reuse_partition_scratch() {
        // The zero-allocation contract, observably: after the first
        // batch, partition buffers are reused (their capacity persists)
        // rather than freshly allocated per batch.
        let mut eng = engine(2, WorkerMode::Sequential);
        eng.apply_batch(&(0..1_000u64).map(Op::Insert).collect::<Vec<_>>());
        let caps: Vec<usize> = eng.scratch.iter().map(Vec::capacity).collect();
        assert!(caps.iter().all(|&c| c > 0), "scratch never materialized");
        eng.apply_batch(&(1_000..1_400u64).map(Op::Insert).collect::<Vec<_>>());
        let caps_after: Vec<usize> = eng.scratch.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_after, "smaller batch must not reallocate");
    }

    #[test]
    fn serve_replay_handles_empty_and_partial_batches() {
        let mut eng = engine(2, WorkerMode::Sequential);
        assert_eq!(
            eng.serve_replay(std::iter::empty(), 64),
            BatchSummary::default()
        );
        let summary = eng.serve_replay((0..100u64).map(Op::Insert), 64);
        assert_eq!(summary.inserts, 100);
        assert_eq!(eng.total_balls(), 100);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let ops: Vec<Op> = (0..5_000u64).map(Op::Insert).collect();
        let mut small = engine(4, WorkerMode::Persistent);
        let mut large = engine(4, WorkerMode::Persistent);
        small.serve(&ops, 64);
        large.serve(&ops, 5_000);
        for (a, b) in small.shards().iter().zip(large.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn per_shard_state_matches_single_threaded_core_run() {
        // The acceptance contract: for the same (seed, scheme) pair, each
        // shard's max-load statistics equal a single-threaded ba_core run
        // over that shard's insert stream.
        let seed = 7u64;
        let shards = 4usize;
        let mut eng =
            Engine::by_name("double", EngineConfig::new(shards, 512, 3).seed(seed)).unwrap();
        let ops: Vec<Op> = (0..4_096u64).map(Op::Insert).collect();
        eng.apply_batch(&ops);

        for id in 0..shards {
            let balls = ops
                .iter()
                .filter(|op| route(op.key(), shards) == id)
                .count() as u64;
            let scheme = DoubleHashing::new(512, 3);
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let reference = run_process(&scheme, balls, TieBreak::Random, &mut rng);
            let shard = eng.shard(id);
            assert_eq!(shard.allocation().loads(), reference.loads());
            assert_eq!(shard.allocation().max_load(), reference.max_load());
        }
    }

    #[test]
    fn keyed_per_shard_state_matches_core_keyed_run() {
        // The keyed twin: shard i's table equals run_process_keys over its
        // routed key stream with the shard's own salt.
        let seed = 13u64;
        let shards = 4usize;
        let cfg = EngineConfig::new(shards, 512, 3).seed(seed).keyed();
        let mut eng = Engine::by_name("double", cfg).unwrap();
        let ops: Vec<Op> = (0..4_096u64).map(Op::Insert).collect();
        eng.apply_batch(&ops);

        for id in 0..shards {
            let keys: Vec<u64> = ops
                .iter()
                .map(|op| op.key())
                .filter(|&k| route(k, shards) == id)
                .collect();
            let scheme = DoubleHashing::new(512, 3);
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let shard = eng.shard(id);
            let reference = run_process_keys(
                &scheme,
                ChoiceSource::Keyed { salt: shard.salt() },
                keys.iter().copied(),
                TieBreak::Random,
                &mut rng,
            );
            assert_eq!(shard.allocation().loads(), reference.loads(), "shard {id}");
        }
    }

    #[test]
    fn rng_kind_flows_into_every_shard() {
        let mk = |rng: RngKind| {
            let mut eng =
                Engine::by_name("double", EngineConfig::new(4, 256, 3).seed(3).rng(rng)).unwrap();
            eng.apply_batch(&(0..2_048u64).map(Op::Insert).collect::<Vec<_>>());
            eng.stats().merged_histogram().counts().to_vec()
        };
        let xo = mk(RngKind::Xoshiro);
        let pcg = mk(RngKind::Pcg64);
        let lcg = mk(RngKind::Lcg48);
        assert_eq!(xo, mk(RngKind::Xoshiro), "same kind must reproduce");
        // Different generator families must produce different tables.
        assert!(xo != pcg || xo != lcg, "PRNG ablation collapsed");
    }

    #[test]
    fn conservation_across_mixed_traffic() {
        let mut eng = engine(4, WorkerMode::Persistent);
        let mut ops = Vec::new();
        for key in 0..3_000u64 {
            ops.push(Op::Insert(key));
        }
        for key in 0..1_000u64 {
            ops.push(Op::Delete(key));
        }
        for key in 0..500u64 {
            ops.push(Op::Lookup(key * 5));
        }
        let summary = eng.serve(&ops, 512);
        assert_eq!(summary.inserts, 3_000);
        assert_eq!(summary.deletes, 1_000);
        assert_eq!(summary.missed_deletes, 0);
        assert_eq!(summary.lookups, 500);
        assert_eq!(eng.total_balls(), 2_000);
        let stats = eng.stats();
        assert_eq!(stats.total_balls(), 2_000);
        assert_eq!(stats.total_ops(), 4_500);
        let observed = stats.merged_observations();
        assert_eq!(observed.insert_load.count(), 3_000);
        assert_eq!(observed.delete_load.count(), 1_000);
        assert_eq!(observed.lookup_depth.count(), 500);
    }

    /// A scheme that panics when asked to derive choices for a poison
    /// key — the hook the worker-panic regression test needs.
    #[derive(Debug, Clone)]
    struct Exploding {
        n: u64,
        poison: u64,
    }

    impl ChoiceScheme for Exploding {
        fn n(&self) -> u64 {
            self.n
        }
        fn d(&self) -> usize {
            1
        }
        fn fill_choices(&self, rng: &mut dyn ba_rng::Rng64, out: &mut [u64]) {
            out[0] = rng.gen_range(self.n);
        }
        fn choices_for(&self, key: u64, _salt: u64, out: &mut [u64]) {
            assert_ne!(key, self.poison, "poison key reached the scheme");
            out[0] = key % self.n;
        }
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // A shard panicking inside a persistent worker must surface as a
        // panic in apply_batch — not leave the engine blocked forever on
        // a result that will never arrive.
        let result = std::panic::catch_unwind(|| {
            let cfg = EngineConfig::new(2, 64, 1).seed(1).keyed();
            let mut eng = Engine::with_scheme_factory(cfg, |_| Exploding { n: 64, poison: 42 });
            eng.apply_batch(&(0..256u64).map(Op::Insert).collect::<Vec<_>>());
        });
        assert!(result.is_err(), "worker panic was swallowed");
    }

    #[test]
    fn engine_drop_joins_workers_cleanly() {
        let mut eng = engine(8, WorkerMode::Persistent);
        eng.apply_batch(&(0..1_000u64).map(Op::Insert).collect::<Vec<_>>());
        drop(eng); // must not hang or leak threads
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Engine::by_name("double", EngineConfig::new(0, 64, 2));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        engine(2, WorkerMode::Sequential).serve(&[Op::Insert(1)], 0);
    }

    #[test]
    fn sink_sees_every_phased_batch() {
        let sink = SharedSink::new();
        let mut eng = engine(4, WorkerMode::Persistent);
        eng.set_sink(Box::new(sink.clone()));
        assert!(eng.has_sink());
        let ops = mixed_ops(2_000);
        eng.serve(&ops, 512);
        let records = sink.records();
        assert_eq!(records.len(), 4, "3 full batches + 1 partial");
        assert!(
            records.iter().all(|r| r.shard.is_none()),
            "phased: engine-wide"
        );
        assert_eq!(records.iter().map(|r| u64::from(r.ops)).sum::<u64>(), 2_000);
        let mix: u64 = records
            .iter()
            .map(|r| u64::from(r.inserts + r.deletes + r.lookups))
            .sum();
        assert_eq!(mix, 2_000, "op mix must partition the batch");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert!(eng.take_sink().is_some());
        assert!(!eng.has_sink());
    }

    #[test]
    fn pipelined_sink_records_attribute_batches_to_shards() {
        let sink = SharedSink::new();
        let mut eng = engine(4, WorkerMode::Sequential);
        eng.set_sink(Box::new(sink.clone()));
        let ops = mixed_ops(4_000);
        eng.serve_pipelined(ops.iter().copied(), 128, 2);
        let records = sink.records();
        assert!(!records.is_empty());
        assert!(
            records.iter().all(|r| r.shard.is_some()),
            "pipelined: per shard"
        );
        assert_eq!(records.iter().map(|r| u64::from(r.ops)).sum::<u64>(), 4_000);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "sequence numbers must be dense");
        }
        for pair in records.windows(2) {
            assert!(
                pair[0].at <= pair[1].at,
                "records must be ship-time ordered"
            );
        }
        // Both halves of the join landed: ship-side occupancy is bounded
        // by the queue depth, worker-side applies were all measured.
        assert!(records.iter().all(|r| r.queue_occupancy <= 2));
    }

    #[test]
    fn attaching_a_sink_never_changes_results() {
        // The bit-identity acceptance contract at the unit level: serving
        // with a sink attached yields the same summary, stats, and loads
        // as serving without one, on both ingestion paths.
        let ops = mixed_ops(8_000);
        let mut plain = engine(4, WorkerMode::Persistent);
        let expected = plain.serve(&ops, 1_024);
        for pipelined in [false, true] {
            let mut observed = engine(4, WorkerMode::Persistent);
            observed.set_sink(Box::new(SharedSink::new()));
            let got = if pipelined {
                observed.serve_pipelined(ops.iter().copied(), 256, 2)
            } else {
                observed.serve(&ops, 1_024)
            };
            assert_eq!(got, expected, "pipelined={pipelined}");
            assert!(
                observed.stats().matches(&plain.stats()),
                "pipelined={pipelined}"
            );
            for (a, b) in observed.shards().iter().zip(plain.shards()) {
                assert_eq!(a.allocation().loads(), b.allocation().loads());
            }
        }
    }
}
