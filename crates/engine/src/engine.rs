//! The sharded engine: routing, batched ingestion, parallel application.

use crate::channel;
use crate::metrics::{EngineStats, ShardStats};
use crate::op::{BatchSummary, Op};
use crate::shard::Shard;
use ba_core::TieBreak;
use ba_hash::{AnyScheme, ChoiceScheme};
use ba_rng::RngKind;
use std::fmt;

/// How shards obtain each ball's choice vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChoiceMode {
    /// Fresh choices from the shard's RNG stream per insert — the paper's
    /// process model. Re-inserting a deleted key draws new bins.
    #[default]
    Stream,
    /// Choices derived from `hash(key, shard_salt)` — the hash-table
    /// model. Re-inserting a key replays its exact `f + k·g` probe
    /// sequence; the RNG stream is consumed only by random tie-breaks.
    Keyed,
}

/// How batches are applied across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkerMode {
    /// Apply shard by shard on the calling thread.
    Sequential,
    /// Spawn scoped threads per batch — the pre-worker-pool baseline,
    /// kept so `engine_throughput` can benchmark the pool against it.
    Scoped,
    /// Long-lived channel-fed worker threads, one per shard, spawned on
    /// the first parallel batch and joined when the engine drops.
    #[default]
    Persistent,
}

/// Configuration for a sharded engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of independent shards.
    pub shards: usize,
    /// Bins per shard table.
    pub bins_per_shard: u64,
    /// Choices per ball within a shard.
    pub d: usize,
    /// Tie-breaking rule used by every shard.
    pub tie: TieBreak,
    /// Master seed; shard `i` uses stream `SeedSequence::new(seed).child(i)`.
    pub seed: u64,
    /// Where choice vectors come from (stream or keyed derivation).
    pub mode: ChoiceMode,
    /// Which generator family drives each shard's stream (the paper's
    /// PRNG ablation, at the engine layer).
    pub rng: RngKind,
    /// How batches are applied across shards. Results are bit-identical
    /// for every mode; only throughput differs.
    pub workers: WorkerMode,
}

impl EngineConfig {
    /// A config with random ties, seed 1, stream choices, the xoshiro
    /// generator, and persistent parallel application.
    pub fn new(shards: usize, bins_per_shard: u64, d: usize) -> Self {
        Self {
            shards,
            bins_per_shard,
            d,
            tie: TieBreak::Random,
            seed: 1,
            mode: ChoiceMode::default(),
            rng: RngKind::default(),
            workers: WorkerMode::default(),
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the tie-breaking rule.
    pub fn tie(mut self, tie: TieBreak) -> Self {
        self.tie = tie;
        self
    }

    /// Sets the choice mode.
    pub fn mode(mut self, mode: ChoiceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects keyed choice derivation (`hash(key, shard_salt)`).
    pub fn keyed(self) -> Self {
        self.mode(ChoiceMode::Keyed)
    }

    /// Sets the generator family for every shard's stream.
    pub fn rng(mut self, rng: RngKind) -> Self {
        self.rng = rng;
        self
    }

    /// Sets the worker mode for batch application.
    pub fn workers(mut self, workers: WorkerMode) -> Self {
        self.workers = workers;
        self
    }

    /// Chooses sequential (deterministic-by-construction) application.
    pub fn sequential(self) -> Self {
        self.workers(WorkerMode::Sequential)
    }
}

/// Routes a key to a shard: SplitMix64 finalizer, then a multiply-shift
/// range reduction. Stable across runs — the route is part of the engine's
/// deterministic contract.
#[inline]
pub fn route(key: u64, shards: usize) -> usize {
    let mixed = ba_rng::SplitMix64::mix(key ^ 0x9E6C_63D0_876A_3F6B);
    ((mixed as u128 * shards as u128) >> 64) as usize
}

/// One unit of work for a persistent shard worker: the shard itself plus
/// its slice of the batch. The shard travels *by value* through the
/// channel — a shallow move of the struct, not a deep copy of its bin
/// table and key index — so between batches the engine keeps full
/// ownership (and `&`-access) to every shard.
struct Job<S> {
    shard: Shard<S>,
    ops: Vec<Op>,
}

/// The persistent worker pool: one long-lived thread per shard, fed
/// through a per-worker job channel and reporting through a per-worker
/// results channel. Per-worker result channels (rather than one shared
/// queue) make worker death observable: a panicking worker drops its
/// sender, so the engine's `recv` on that worker's channel errors out
/// instead of blocking forever. Dropping the pool closes the job channels
/// (each worker's `recv` then errors out and the thread exits) and joins
/// every handle — graceful shutdown without flags or timeouts.
struct WorkerPool<S> {
    jobs: Vec<channel::Sender<Job<S>>>,
    results: Vec<channel::Receiver<(Shard<S>, BatchSummary)>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<S: ChoiceScheme + 'static> WorkerPool<S> {
    fn spawn(shards: usize) -> Self {
        let mut jobs = Vec::with_capacity(shards);
        let mut results = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for id in 0..shards {
            let (tx, rx) = channel::channel::<Job<S>>();
            let (results_tx, results_rx) = channel::channel();
            let handle = std::thread::Builder::new()
                .name(format!("ba-shard-{id}"))
                .spawn(move || {
                    while let Ok(Job { mut shard, ops }) = rx.recv() {
                        let summary = shard.apply(&ops);
                        // A send error means the engine is gone mid-batch
                        // (it panicked); nothing left to report to.
                        if results_tx.send((shard, summary)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker thread");
            jobs.push(tx);
            results.push(results_rx);
            handles.push(handle);
        }
        Self {
            jobs,
            results,
            handles,
        }
    }
}

impl<S> fmt::Debug for WorkerPool<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl<S> Drop for WorkerPool<S> {
    fn drop(&mut self) {
        // Disconnect every job channel; workers drain and exit.
        self.jobs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A sharded, concurrently-served balanced-allocation engine.
///
/// Every shard runs the paper's "least loaded of d choices" placement over
/// its own bin table, with choices produced by its own copy of a
/// [`ChoiceScheme`] — drawn from the shard's private RNG stream
/// ([`ChoiceMode::Stream`]) or derived from each key
/// ([`ChoiceMode::Keyed`]). Batches of [`Op`]s are partitioned by
/// [`route`] and applied to all shards — by persistent channel-fed worker
/// threads under [`WorkerMode::Persistent`] — and each shard's outcome
/// depends only on its own ordered op subsequence, so the engine's final
/// state is bit-identical between sequential and parallel application and
/// across any number of worker threads.
#[derive(Debug)]
pub struct Engine<S> {
    config: EngineConfig,
    /// `None` only transiently while a shard is out with a worker during
    /// a persistent parallel batch; always `Some` between public calls.
    shards: Vec<Option<Shard<S>>>,
    pool: Option<WorkerPool<S>>,
}

impl Engine<AnyScheme> {
    /// Builds an engine whose shards run the named scheme
    /// (see [`AnyScheme::by_name`]). Returns `None` for an unknown name.
    pub fn by_name(name: &str, config: EngineConfig) -> Option<Self> {
        // Probe once so an unknown name fails before any shard is built.
        AnyScheme::by_name(name, config.bins_per_shard, config.d)?;
        Some(Self::with_scheme_factory(config, |cfg| {
            AnyScheme::by_name(name, cfg.bins_per_shard, cfg.d).expect("probed above")
        }))
    }
}

impl<S: ChoiceScheme + 'static> Engine<S> {
    /// Builds an engine, constructing one scheme per shard via `factory`.
    pub fn with_scheme_factory(config: EngineConfig, factory: impl Fn(&EngineConfig) -> S) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        let shards = (0..config.shards)
            .map(|id| Some(Shard::new(id, factory(&config), &config)))
            .collect();
        Self {
            config,
            shards,
            pool: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shard at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= config.shards`.
    pub fn shard(&self, id: usize) -> &Shard<S> {
        self.shards[id]
            .as_ref()
            .expect("shard present between batches")
    }

    /// Read access to the shards (metrics, tests), indexed by shard id.
    pub fn shards(&self) -> Vec<&Shard<S>> {
        self.iter_shards().collect()
    }

    /// Allocation-free shard iteration for internal aggregates.
    fn iter_shards(&self) -> impl Iterator<Item = &Shard<S>> {
        self.shards
            .iter()
            .map(|slot| slot.as_ref().expect("shard present between batches"))
    }

    /// Total balls currently placed across all shards.
    pub fn total_balls(&self) -> u64 {
        self.iter_shards().map(|s| s.allocation().balls()).sum()
    }

    /// The maximum bin load across all shards.
    pub fn max_load(&self) -> u32 {
        self.iter_shards()
            .map(|s| s.allocation().max_load())
            .max()
            .unwrap_or(0)
    }

    /// Partitions `ops` by shard, preserving arrival order per shard.
    fn partition(&self, ops: &[Op]) -> Vec<Vec<Op>> {
        let mut per_shard: Vec<Vec<Op>> = vec![Vec::new(); self.shards.len()];
        for &op in ops {
            per_shard[route(op.key(), self.shards.len())].push(op);
        }
        per_shard
    }

    /// Applies one batch of operations and returns its aggregate summary.
    ///
    /// Partitioning is stable: two ops on the same key always reach the
    /// same shard in their batch order, so insert-then-delete sequences
    /// behave as written even when shards run on different threads.
    pub fn apply_batch(&mut self, ops: &[Op]) -> BatchSummary {
        let mut total = BatchSummary::default();
        let workers = if self.shards.len() > 1 {
            self.config.workers
        } else {
            WorkerMode::Sequential
        };
        match workers {
            WorkerMode::Sequential => {
                let per_shard = self.partition(ops);
                for (slot, ops) in self.shards.iter_mut().zip(per_shard.iter()) {
                    let shard = slot.as_mut().expect("shard present between batches");
                    total.absorb(&shard.apply(ops));
                }
            }
            WorkerMode::Scoped => {
                let per_shard = self.partition(ops);
                let summaries = std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(per_shard.iter())
                        .filter(|(_, ops)| !ops.is_empty())
                        .map(|(slot, ops)| {
                            let shard = slot.as_mut().expect("shard present between batches");
                            scope.spawn(move || shard.apply(ops))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect::<Vec<_>>()
                });
                for summary in &summaries {
                    total.absorb(summary);
                }
            }
            WorkerMode::Persistent => {
                let per_shard = self.partition(ops);
                let pool = self
                    .pool
                    .get_or_insert_with(|| WorkerPool::spawn(self.shards.len()));
                let mut outstanding = Vec::with_capacity(per_shard.len());
                for (id, ops) in per_shard.into_iter().enumerate() {
                    if ops.is_empty() {
                        continue;
                    }
                    let shard = self.shards[id]
                        .take()
                        .expect("shard present between batches");
                    if pool.jobs[id].send(Job { shard, ops }).is_err() {
                        panic!("shard worker {id} exited early");
                    }
                    outstanding.push(id);
                }
                for id in outstanding {
                    // A recv error means the worker dropped its sender
                    // without replying — it panicked mid-apply.
                    let (shard, summary) = pool.results[id]
                        .recv()
                        .unwrap_or_else(|_| panic!("shard worker {id} panicked"));
                    self.shards[id] = Some(shard);
                    total.absorb(&summary);
                }
            }
        }
        total
    }

    /// Applies a long op stream in `batch_size` chunks; returns the overall
    /// summary. This is the engine's ingestion entry point for drivers that
    /// generate traffic faster than they want to synchronize.
    pub fn serve(&mut self, ops: &[Op], batch_size: usize) -> BatchSummary {
        assert!(batch_size > 0, "batch size must be positive");
        let mut total = BatchSummary::default();
        for chunk in ops.chunks(batch_size) {
            total.absorb(&self.apply_batch(chunk));
        }
        total
    }

    /// Serves an op *stream* in `batch_size` chunks without materializing
    /// it: the replay ingestion path. Captured workloads (see
    /// `ba-workload`'s replay module) can hold millions of ops; this
    /// buffers one batch at a time, so replaying a capture costs the same
    /// memory as serving live traffic. Equivalent to collecting the
    /// iterator and calling [`Engine::serve`].
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn serve_replay(
        &mut self,
        ops: impl IntoIterator<Item = Op>,
        batch_size: usize,
    ) -> BatchSummary {
        assert!(batch_size > 0, "batch size must be positive");
        let mut total = BatchSummary::default();
        let mut buf = Vec::with_capacity(batch_size);
        for op in ops {
            buf.push(op);
            if buf.len() == batch_size {
                total.absorb(&self.apply_batch(&buf));
                buf.clear();
            }
        }
        if !buf.is_empty() {
            total.absorb(&self.apply_batch(&buf));
        }
        total
    }

    /// Snapshot of per-shard and aggregate load/traffic statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats::new(
            self.iter_shards()
                .map(|s| {
                    ShardStats::capture(
                        s.id(),
                        s.allocation(),
                        s.lifetime_summary(),
                        s.observations(),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::{run_process, run_process_keys};
    use ba_hash::{ChoiceSource, DoubleHashing};
    use ba_rng::SeedSequence;

    fn engine(shards: usize, workers: WorkerMode) -> Engine<AnyScheme> {
        let cfg = EngineConfig::new(shards, 256, 3).seed(42).workers(workers);
        Engine::by_name("double", cfg).unwrap()
    }

    fn mixed_ops(count: u64) -> Vec<Op> {
        (0..count)
            .map(|i| match i % 5 {
                0..=2 => Op::Insert(i / 2),
                3 => Op::Lookup(i / 3),
                _ => Op::Delete(i / 2),
            })
            .collect()
    }

    #[test]
    fn unknown_scheme_rejected() {
        assert!(Engine::by_name("nope", EngineConfig::new(2, 64, 2)).is_none());
    }

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7, 64] {
            for key in 0..1000u64 {
                let s = route(key, shards);
                assert!(s < shards);
                assert_eq!(s, route(key, shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn route_spreads_keys() {
        let shards = 8;
        let mut counts = vec![0u64; shards];
        for key in 0..80_000u64 {
            counts[route(key, shards)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "skewed routing {counts:?}"
            );
        }
    }

    #[test]
    fn every_worker_mode_agrees() {
        let ops = mixed_ops(20_000);
        let mut seq = engine(8, WorkerMode::Sequential);
        let ss = seq.serve(&ops, 1_024);
        for workers in [WorkerMode::Scoped, WorkerMode::Persistent] {
            let mut par = engine(8, workers);
            let sp = par.serve(&ops, 1_024);
            assert_eq!(sp, ss, "{workers:?}");
            for (a, b) in par.shards().iter().zip(seq.shards()) {
                assert_eq!(
                    a.allocation().loads(),
                    b.allocation().loads(),
                    "{workers:?}"
                );
            }
        }
    }

    #[test]
    fn persistent_pool_survives_many_batches() {
        // The worker pool spawns once and serves every subsequent batch;
        // per-shard state keeps matching the sequential engine throughout.
        let ops = mixed_ops(10_000);
        let mut par = engine(4, WorkerMode::Persistent);
        let mut seq = engine(4, WorkerMode::Sequential);
        for chunk in ops.chunks(100) {
            assert_eq!(par.apply_batch(chunk), seq.apply_batch(chunk));
        }
        for (a, b) in par.shards().iter().zip(seq.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn serve_replay_equals_serve() {
        // The replay ingestion path is the slice path, minus the slice:
        // identical summaries and shard states, batch boundaries included.
        let ops = mixed_ops(7_777);
        for workers in [WorkerMode::Sequential, WorkerMode::Persistent] {
            let mut live = engine(4, workers);
            let mut replayed = engine(4, workers);
            let a = live.serve(&ops, 512);
            let b = replayed.serve_replay(ops.iter().copied(), 512);
            assert_eq!(a, b, "{workers:?}");
            for (x, y) in live.shards().iter().zip(replayed.shards()) {
                assert_eq!(
                    x.allocation().loads(),
                    y.allocation().loads(),
                    "{workers:?}"
                );
            }
        }
    }

    #[test]
    fn serve_replay_handles_empty_and_partial_batches() {
        let mut eng = engine(2, WorkerMode::Sequential);
        assert_eq!(
            eng.serve_replay(std::iter::empty(), 64),
            BatchSummary::default()
        );
        let summary = eng.serve_replay((0..100u64).map(Op::Insert), 64);
        assert_eq!(summary.inserts, 100);
        assert_eq!(eng.total_balls(), 100);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let ops: Vec<Op> = (0..5_000u64).map(Op::Insert).collect();
        let mut small = engine(4, WorkerMode::Persistent);
        let mut large = engine(4, WorkerMode::Persistent);
        small.serve(&ops, 64);
        large.serve(&ops, 5_000);
        for (a, b) in small.shards().iter().zip(large.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn per_shard_state_matches_single_threaded_core_run() {
        // The acceptance contract: for the same (seed, scheme) pair, each
        // shard's max-load statistics equal a single-threaded ba_core run
        // over that shard's insert stream.
        let seed = 7u64;
        let shards = 4usize;
        let mut eng =
            Engine::by_name("double", EngineConfig::new(shards, 512, 3).seed(seed)).unwrap();
        let ops: Vec<Op> = (0..4_096u64).map(Op::Insert).collect();
        eng.apply_batch(&ops);

        for id in 0..shards {
            let balls = ops
                .iter()
                .filter(|op| route(op.key(), shards) == id)
                .count() as u64;
            let scheme = DoubleHashing::new(512, 3);
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let reference = run_process(&scheme, balls, TieBreak::Random, &mut rng);
            let shard = eng.shard(id);
            assert_eq!(shard.allocation().loads(), reference.loads());
            assert_eq!(shard.allocation().max_load(), reference.max_load());
        }
    }

    #[test]
    fn keyed_per_shard_state_matches_core_keyed_run() {
        // The keyed twin: shard i's table equals run_process_keys over its
        // routed key stream with the shard's own salt.
        let seed = 13u64;
        let shards = 4usize;
        let cfg = EngineConfig::new(shards, 512, 3).seed(seed).keyed();
        let mut eng = Engine::by_name("double", cfg).unwrap();
        let ops: Vec<Op> = (0..4_096u64).map(Op::Insert).collect();
        eng.apply_batch(&ops);

        for id in 0..shards {
            let keys: Vec<u64> = ops
                .iter()
                .map(|op| op.key())
                .filter(|&k| route(k, shards) == id)
                .collect();
            let scheme = DoubleHashing::new(512, 3);
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let shard = eng.shard(id);
            let reference = run_process_keys(
                &scheme,
                ChoiceSource::Keyed { salt: shard.salt() },
                keys.iter().copied(),
                TieBreak::Random,
                &mut rng,
            );
            assert_eq!(shard.allocation().loads(), reference.loads(), "shard {id}");
        }
    }

    #[test]
    fn rng_kind_flows_into_every_shard() {
        let mk = |rng: RngKind| {
            let mut eng =
                Engine::by_name("double", EngineConfig::new(4, 256, 3).seed(3).rng(rng)).unwrap();
            eng.apply_batch(&(0..2_048u64).map(Op::Insert).collect::<Vec<_>>());
            eng.stats().merged_histogram().counts().to_vec()
        };
        let xo = mk(RngKind::Xoshiro);
        let pcg = mk(RngKind::Pcg64);
        let lcg = mk(RngKind::Lcg48);
        assert_eq!(xo, mk(RngKind::Xoshiro), "same kind must reproduce");
        // Different generator families must produce different tables.
        assert!(xo != pcg || xo != lcg, "PRNG ablation collapsed");
    }

    #[test]
    fn conservation_across_mixed_traffic() {
        let mut eng = engine(4, WorkerMode::Persistent);
        let mut ops = Vec::new();
        for key in 0..3_000u64 {
            ops.push(Op::Insert(key));
        }
        for key in 0..1_000u64 {
            ops.push(Op::Delete(key));
        }
        for key in 0..500u64 {
            ops.push(Op::Lookup(key * 5));
        }
        let summary = eng.serve(&ops, 512);
        assert_eq!(summary.inserts, 3_000);
        assert_eq!(summary.deletes, 1_000);
        assert_eq!(summary.missed_deletes, 0);
        assert_eq!(summary.lookups, 500);
        assert_eq!(eng.total_balls(), 2_000);
        let stats = eng.stats();
        assert_eq!(stats.total_balls(), 2_000);
        assert_eq!(stats.total_ops(), 4_500);
        let observed = stats.merged_observations();
        assert_eq!(observed.insert_load.count(), 3_000);
        assert_eq!(observed.delete_load.count(), 1_000);
        assert_eq!(observed.lookup_depth.count(), 500);
    }

    /// A scheme that panics when asked to derive choices for a poison
    /// key — the hook the worker-panic regression test needs.
    #[derive(Debug, Clone)]
    struct Exploding {
        n: u64,
        poison: u64,
    }

    impl ChoiceScheme for Exploding {
        fn n(&self) -> u64 {
            self.n
        }
        fn d(&self) -> usize {
            1
        }
        fn fill_choices(&self, rng: &mut dyn ba_rng::Rng64, out: &mut [u64]) {
            out[0] = rng.gen_range(self.n);
        }
        fn choices_for(&self, key: u64, _salt: u64, out: &mut [u64]) {
            assert_ne!(key, self.poison, "poison key reached the scheme");
            out[0] = key % self.n;
        }
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // A shard panicking inside a persistent worker must surface as a
        // panic in apply_batch — not leave the engine blocked forever on
        // a result that will never arrive.
        let result = std::panic::catch_unwind(|| {
            let cfg = EngineConfig::new(2, 64, 1).seed(1).keyed();
            let mut eng = Engine::with_scheme_factory(cfg, |_| Exploding { n: 64, poison: 42 });
            eng.apply_batch(&(0..256u64).map(Op::Insert).collect::<Vec<_>>());
        });
        assert!(result.is_err(), "worker panic was swallowed");
    }

    #[test]
    fn engine_drop_joins_workers_cleanly() {
        let mut eng = engine(8, WorkerMode::Persistent);
        eng.apply_batch(&(0..1_000u64).map(Op::Insert).collect::<Vec<_>>());
        drop(eng); // must not hang or leak threads
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Engine::by_name("double", EngineConfig::new(0, 64, 2));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        engine(2, WorkerMode::Sequential).serve(&[Op::Insert(1)], 0);
    }
}
