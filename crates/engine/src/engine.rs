//! The sharded engine: routing, batched ingestion, parallel application.

use crate::metrics::{EngineStats, ShardStats};
use crate::op::{BatchSummary, Op};
use crate::shard::Shard;
use ba_core::TieBreak;
use ba_hash::{AnyScheme, ChoiceScheme};

/// Configuration for a sharded engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of independent shards.
    pub shards: usize,
    /// Bins per shard table.
    pub bins_per_shard: u64,
    /// Choices per ball within a shard.
    pub d: usize,
    /// Tie-breaking rule used by every shard.
    pub tie: TieBreak,
    /// Master seed; shard `i` uses stream `SeedSequence::new(seed).child(i)`.
    pub seed: u64,
    /// Apply batches across shards in parallel (`true`) or on the calling
    /// thread (`false`). Results are identical either way.
    pub parallel: bool,
}

impl EngineConfig {
    /// A config with random ties, seed 1, and parallel application.
    pub fn new(shards: usize, bins_per_shard: u64, d: usize) -> Self {
        Self {
            shards,
            bins_per_shard,
            d,
            tie: TieBreak::Random,
            seed: 1,
            parallel: true,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the tie-breaking rule.
    pub fn tie(mut self, tie: TieBreak) -> Self {
        self.tie = tie;
        self
    }

    /// Chooses sequential (deterministic-by-construction) application.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }
}

/// Routes a key to a shard: SplitMix64 finalizer, then a multiply-shift
/// range reduction. Stable across runs — the route is part of the engine's
/// deterministic contract.
#[inline]
pub fn route(key: u64, shards: usize) -> usize {
    let mixed = ba_rng::SplitMix64::mix(key ^ 0x9E6C_63D0_876A_3F6B);
    ((mixed as u128 * shards as u128) >> 64) as usize
}

/// A sharded, concurrently-served balanced-allocation engine.
///
/// Every shard runs the paper's "least loaded of d choices" placement over
/// its own bin table, with choices produced by its own copy of a
/// [`ChoiceScheme`] and randomness from its own [`ba_rng::SeedSequence`]
/// stream. Batches of [`Op`]s are partitioned by [`route`] and applied to
/// all shards — in parallel via scoped threads when
/// [`EngineConfig::parallel`] is set — and each shard's outcome depends
/// only on its own ordered op subsequence, so the engine's final state is
/// bit-identical between sequential and parallel application and across
/// any number of worker threads.
#[derive(Debug)]
pub struct Engine<S> {
    config: EngineConfig,
    shards: Vec<Shard<S>>,
}

impl Engine<AnyScheme> {
    /// Builds an engine whose shards run the named scheme
    /// (see [`AnyScheme::by_name`]). Returns `None` for an unknown name.
    pub fn by_name(name: &str, config: EngineConfig) -> Option<Self> {
        // Probe once so an unknown name fails before any shard is built.
        AnyScheme::by_name(name, config.bins_per_shard, config.d)?;
        Some(Self::with_scheme_factory(config, |cfg| {
            AnyScheme::by_name(name, cfg.bins_per_shard, cfg.d).expect("probed above")
        }))
    }
}

impl<S: ChoiceScheme> Engine<S> {
    /// Builds an engine, constructing one scheme per shard via `factory`.
    pub fn with_scheme_factory(config: EngineConfig, factory: impl Fn(&EngineConfig) -> S) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        let shards = (0..config.shards)
            .map(|id| Shard::new(id, factory(&config), config.tie, config.seed))
            .collect();
        Self { config, shards }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Read access to the shards (metrics, tests).
    pub fn shards(&self) -> &[Shard<S>] {
        &self.shards
    }

    /// Total balls currently placed across all shards.
    pub fn total_balls(&self) -> u64 {
        self.shards.iter().map(|s| s.allocation().balls()).sum()
    }

    /// The maximum bin load across all shards.
    pub fn max_load(&self) -> u32 {
        self.shards
            .iter()
            .map(|s| s.allocation().max_load())
            .max()
            .unwrap_or(0)
    }

    /// Partitions `ops` by shard, preserving arrival order per shard.
    fn partition(&self, ops: &[Op]) -> Vec<Vec<Op>> {
        let mut per_shard: Vec<Vec<Op>> = vec![Vec::new(); self.shards.len()];
        for &op in ops {
            per_shard[route(op.key(), self.shards.len())].push(op);
        }
        per_shard
    }

    /// Applies one batch of operations and returns its aggregate summary.
    ///
    /// Partitioning is stable: two ops on the same key always reach the
    /// same shard in their batch order, so insert-then-delete sequences
    /// behave as written even when shards run on different threads.
    pub fn apply_batch(&mut self, ops: &[Op]) -> BatchSummary {
        let per_shard = self.partition(ops);
        let mut total = BatchSummary::default();
        if self.config.parallel && self.shards.len() > 1 {
            let summaries = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(per_shard.iter())
                    .filter(|(_, ops)| !ops.is_empty())
                    .map(|(shard, ops)| scope.spawn(move || shard.apply(ops)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect::<Vec<_>>()
            });
            for s in &summaries {
                total.absorb(s);
            }
        } else {
            for (shard, ops) in self.shards.iter_mut().zip(per_shard.iter()) {
                total.absorb(&shard.apply(ops));
            }
        }
        total
    }

    /// Applies a long op stream in `batch_size` chunks; returns the overall
    /// summary. This is the engine's ingestion entry point for drivers that
    /// generate traffic faster than they want to synchronize.
    pub fn serve(&mut self, ops: &[Op], batch_size: usize) -> BatchSummary {
        assert!(batch_size > 0, "batch size must be positive");
        let mut total = BatchSummary::default();
        for chunk in ops.chunks(batch_size) {
            total.absorb(&self.apply_batch(chunk));
        }
        total
    }

    /// Snapshot of per-shard and aggregate load/traffic statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats::new(
            self.shards
                .iter()
                .map(|s| ShardStats::capture(s.id(), s.allocation(), s.lifetime_summary()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::run_process;
    use ba_hash::DoubleHashing;
    use ba_rng::SeedSequence;

    fn engine(shards: usize, parallel: bool) -> Engine<AnyScheme> {
        let mut cfg = EngineConfig::new(shards, 256, 3).seed(42);
        cfg.parallel = parallel;
        Engine::by_name("double", cfg).unwrap()
    }

    #[test]
    fn unknown_scheme_rejected() {
        assert!(Engine::by_name("nope", EngineConfig::new(2, 64, 2)).is_none());
    }

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7, 64] {
            for key in 0..1000u64 {
                let s = route(key, shards);
                assert!(s < shards);
                assert_eq!(s, route(key, shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn route_spreads_keys() {
        let shards = 8;
        let mut counts = vec![0u64; shards];
        for key in 0..80_000u64 {
            counts[route(key, shards)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "skewed routing {counts:?}"
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let ops: Vec<Op> = (0..20_000u64)
            .map(|i| match i % 5 {
                0..=2 => Op::Insert(i / 2),
                3 => Op::Lookup(i / 3),
                _ => Op::Delete(i / 2),
            })
            .collect();
        let mut par = engine(8, true);
        let mut seq = engine(8, false);
        let sp = par.serve(&ops, 1024);
        let ss = seq.serve(&ops, 1024);
        assert_eq!(sp, ss);
        for (a, b) in par.shards().iter().zip(seq.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let ops: Vec<Op> = (0..5_000u64).map(Op::Insert).collect();
        let mut small = engine(4, true);
        let mut large = engine(4, true);
        small.serve(&ops, 64);
        large.serve(&ops, 5_000);
        for (a, b) in small.shards().iter().zip(large.shards()) {
            assert_eq!(a.allocation().loads(), b.allocation().loads());
        }
    }

    #[test]
    fn per_shard_state_matches_single_threaded_core_run() {
        // The acceptance contract: for the same (seed, scheme) pair, each
        // shard's max-load statistics equal a single-threaded ba_core run
        // over that shard's insert stream.
        let seed = 7u64;
        let shards = 4usize;
        let mut eng =
            Engine::by_name("double", EngineConfig::new(shards, 512, 3).seed(seed)).unwrap();
        let ops: Vec<Op> = (0..4_096u64).map(Op::Insert).collect();
        eng.apply_batch(&ops);

        for id in 0..shards {
            let balls = ops
                .iter()
                .filter(|op| route(op.key(), shards) == id)
                .count() as u64;
            let scheme = DoubleHashing::new(512, 3);
            let mut rng = SeedSequence::new(seed).child(id as u64).xoshiro();
            let reference = run_process(&scheme, balls, TieBreak::Random, &mut rng);
            let shard = &eng.shards()[id];
            assert_eq!(shard.allocation().loads(), reference.loads());
            assert_eq!(shard.allocation().max_load(), reference.max_load());
        }
    }

    #[test]
    fn conservation_across_mixed_traffic() {
        let mut eng = engine(4, true);
        let mut ops = Vec::new();
        for key in 0..3_000u64 {
            ops.push(Op::Insert(key));
        }
        for key in 0..1_000u64 {
            ops.push(Op::Delete(key));
        }
        for key in 0..500u64 {
            ops.push(Op::Lookup(key * 5));
        }
        let summary = eng.serve(&ops, 512);
        assert_eq!(summary.inserts, 3_000);
        assert_eq!(summary.deletes, 1_000);
        assert_eq!(summary.missed_deletes, 0);
        assert_eq!(summary.lookups, 500);
        assert_eq!(eng.total_balls(), 2_000);
        let stats = eng.stats();
        assert_eq!(stats.total_balls(), 2_000);
        assert_eq!(stats.total_ops(), 4_500);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Engine::by_name("double", EngineConfig::new(0, 64, 2));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        engine(2, false).serve(&[Op::Insert(1)], 0);
    }
}
