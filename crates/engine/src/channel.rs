//! A minimal in-repo MPSC channel for the persistent shard workers.
//!
//! The engine needs exactly three primitives: a job queue into each
//! long-lived shard worker, a shared results queue back to the caller,
//! and — for pipelined ingestion — a *bounded* batch queue whose `send`
//! blocks once the worker falls `cap` batches behind. Rather than pulling
//! in an external channel crate, this module provides a small
//! multi-producer/single-consumer channel built on `Mutex` + `Condvar`,
//! in two flavours sharing one implementation:
//!
//! * [`channel`] — unbounded; `send` never blocks;
//! * [`bounded`] — capacity-`cap`; `send` blocks on a second [`Condvar`]
//!   while the queue is full, which is exactly the backpressure the
//!   pipelined ingestion path relies on to cap memory.
//!
//! Both share the disconnection semantics the worker pool relies on:
//!
//! * dropping every [`Sender`] wakes a blocked [`Receiver::recv`] with
//!   [`RecvError`] — how workers learn the engine is shutting down; values
//!   already queued (even a full bounded queue) still drain first;
//! * dropping the [`Receiver`] makes [`Sender::send`] return the value
//!   back in [`SendError`] — how a worker's result send stays non-fatal
//!   while the engine is being torn down. A sender *blocked* on a full
//!   bounded queue is woken by the receiver's drop and gets the same
//!   [`SendError`], so a dying consumer can never strand a producer.
//!
//! Throughput needs are modest (a handful of messages per batch, each
//! carrying a whole shard or a whole op batch), so an uncontended mutex
//! around a `VecDeque` is the right tool; no spinning.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The sending half; clone one per producer.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; exactly one per channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// The error returned by [`Sender::send`] when the receiver is gone;
/// carries the unsent value back to the caller.
pub struct SendError<T>(pub T);

/// The error returned by [`Receiver::recv`] once the queue is empty and
/// every sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct Inner<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    /// Signalled when a bounded queue frees a slot (a recv) or when the
    /// receiver dies; senders blocked on a full queue wait here. Unused
    /// (never waited on) by unbounded channels.
    space: Condvar,
    /// `None` for unbounded channels, `Some(cap)` for [`bounded`] ones.
    capacity: Option<usize>,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        available: Condvar::new(),
        space: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Creates an unbounded MPSC channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPSC channel holding at most `cap` queued values.
///
/// [`Sender::send`] blocks while the queue holds `cap` values and resumes
/// as soon as [`Receiver::recv`] frees a slot — backpressure, not loss.
/// Disconnect semantics match the unbounded flavour: dropping every
/// sender lets the receiver drain the (possibly full) queue and then
/// observe [`RecvError`]; dropping the receiver wakes any blocked sender
/// with its value returned in [`SendError`].
///
/// # Panics
///
/// Panics if `cap` is zero — a zero-capacity rendezvous channel is not
/// something the engine needs, and silently treating it as capacity one
/// would hide a configuration bug.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded channel capacity must be positive");
    with_capacity(Some(cap))
}

impl<T> Sender<T> {
    /// Enqueues `value`, waking the receiver. On a [`bounded`] channel
    /// this blocks while the queue is at capacity. Returns the value in
    /// [`SendError`] if the receiver has been dropped — including when
    /// the drop happens while this sender is blocked waiting for space.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.send_tracked(value).map(|_stall| ())
    }

    /// [`Sender::send`], reporting how long this call spent blocked on a
    /// full bounded queue: `Duration::ZERO` when the value was enqueued
    /// immediately, the measured wait otherwise. This is the primitive
    /// behind the engine's backpressure-stall telemetry — a nonzero
    /// return is exactly one producer stall.
    pub fn send_tracked(&self, value: T) -> Result<std::time::Duration, SendError<T>> {
        let mut state = self.inner.state.lock().expect("channel lock poisoned");
        let mut blocked_at: Option<std::time::Instant> = None;
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    blocked_at.get_or_insert_with(std::time::Instant::now);
                    state = self.inner.space.wait(state).expect("channel lock poisoned");
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.available.notify_one();
        Ok(blocked_at.map_or(std::time::Duration::ZERO, |t| t.elapsed()))
    }

    /// How many values sit queued right now — a point-in-time occupancy
    /// sample (racy by nature: the receiver may drain concurrently).
    /// The pipelined hot path moved to `crate::spsc` rings (whose
    /// producer mirrors this method), so no production caller remains;
    /// kept as part of the channel's sender API, exercised by this
    /// module's tests.
    #[allow(dead_code)]
    pub fn queued(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("channel lock poisoned")
            .queue
            .len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner
            .state
            .lock()
            .expect("channel lock poisoned")
            .senders += 1;
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.inner.state.lock().expect("channel lock poisoned");
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake a receiver blocked on an empty queue so it can observe
            // the disconnect.
            self.inner.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value is available or every sender is gone. On a
    /// [`bounded`] channel, taking a value frees a slot and wakes one
    /// sender blocked on the full queue.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().expect("channel lock poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                if self.inner.capacity.is_some() {
                    self.inner.space.notify_one();
                }
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .available
                .wait(state)
                .expect("channel lock poisoned");
        }
    }

    /// Takes a value if one is already queued; never blocks. `None` means
    /// "nothing queued right now" — it does not distinguish an empty
    /// queue from a disconnected one (callers that care use [`recv`]).
    ///
    /// [`recv`]: Receiver::recv
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("channel lock poisoned");
        let value = state.queue.pop_front();
        drop(state);
        if value.is_some() && self.inner.capacity.is_some() {
            self.inner.space.notify_one();
        }
        value
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner
            .state
            .lock()
            .expect("channel lock poisoned")
            .receiver_alive = false;
        // Wake every sender blocked on a full bounded queue so each can
        // observe the disconnect and hand its value back.
        self.inner.space.notify_all();
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = channel();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_returns_value_after_receiver_drops() {
        let (tx, rx) = channel::<String>();
        drop(rx);
        let err = tx.send("lost".to_string()).unwrap_err();
        assert_eq!(err.0, "lost");
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel::<u64>();
        let handle = std::thread::spawn(move || rx.recv());
        // Give the receiver a moment to block, then send.
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn blocking_recv_wakes_on_disconnect() {
        let (tx, rx) = channel::<u64>();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn producer_panic_surfaces_as_disconnect_not_deadlock() {
        // The worker-panic propagation path: a producer thread that dies
        // mid-stream drops its Sender during unwinding, so a blocked
        // receiver wakes with RecvError after draining what was sent —
        // it must never block forever.
        let (tx, rx) = channel::<u64>();
        let producer = std::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            panic!("worker dies mid-stream");
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        // The disconnect is observable exactly once the panic completes.
        assert_eq!(rx.recv(), Err(RecvError));
        assert!(producer.join().is_err(), "panic must propagate to join");
    }

    #[test]
    fn send_after_close_keeps_failing_and_returns_each_value() {
        // Send-after-close is non-fatal and lossless for the caller: every
        // attempt hands its exact value back, including via clones made
        // after the receiver died.
        let (tx, rx) = channel::<Vec<u64>>();
        drop(rx);
        for round in 0..3u64 {
            let payload = vec![round, round + 1];
            let SendError(returned) = tx.send(payload.clone()).unwrap_err();
            assert_eq!(returned, payload);
        }
        let late_clone = tx.clone();
        assert_eq!(late_clone.send(vec![99]).unwrap_err().0, vec![99]);
    }

    #[test]
    fn receiver_drop_mid_stream_leaves_producers_joinable() {
        // Drop-side graceful join: producers racing a dying receiver must
        // run to completion (send just starts failing), never hang.
        let (tx, rx) = channel::<u64>();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let mut rejected = 0u64;
                for i in 0..1_000 {
                    if tx.send(t * 1_000 + i).is_err() {
                        rejected += 1;
                    }
                }
                rejected
            }));
        }
        drop(tx);
        // Consume a few values, then walk away mid-stream.
        let _ = rx.recv();
        let _ = rx.recv();
        drop(rx);
        for h in handles {
            // No deadlock and no panic; late sends were merely rejected.
            let _ = h.join().expect("producer must join cleanly");
        }
    }

    #[test]
    fn queued_values_still_drain_after_receiver_learns_of_disconnect() {
        // Disconnect is edge-ordered after delivery: values enqueued
        // before the last sender drops are never lost.
        let (tx, rx) = channel::<u64>();
        for i in 0..50 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for i in 0..50 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recv(), Err(RecvError));
        // And the error is sticky.
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_send_blocks_at_capacity_then_resumes_on_recv() {
        // The backpressure contract: the producer sails through the first
        // `cap` sends, parks on the next, and resumes exactly when the
        // receiver frees a slot.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cap = 4usize;
        let (tx, rx) = bounded::<usize>(cap);
        let sent = Arc::new(AtomicUsize::new(0));
        let sent_clone = Arc::clone(&sent);
        let producer = std::thread::spawn(move || {
            for i in 0..cap + 3 {
                tx.send(i).unwrap();
                sent_clone.fetch_add(1, Ordering::SeqCst);
            }
        });
        // The producer must stall with exactly `cap` sends completed.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while sent.load(Ordering::SeqCst) < cap && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(
            sent.load(Ordering::SeqCst),
            cap,
            "producer ran past a full queue"
        );
        // Each recv frees one slot; the producer drains to completion.
        for i in 0..cap + 3 {
            assert_eq!(rx.recv(), Ok(i), "FIFO order must survive blocking");
        }
        producer.join().unwrap();
        assert_eq!(sent.load(Ordering::SeqCst), cap + 3);
    }

    #[test]
    fn bounded_disconnect_while_full_drains_cleanly() {
        // Senders dropping while the queue sits at capacity must not lose
        // the queued values: the receiver drains all of them, then sees
        // the disconnect.
        let cap = 8usize;
        let (tx, rx) = bounded::<usize>(cap);
        for i in 0..cap {
            tx.send(i).unwrap();
        }
        drop(tx);
        for i in 0..cap {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.recv(), Err(RecvError), "disconnect must be sticky");
    }

    #[test]
    fn bounded_producer_panic_surfaces_as_disconnect() {
        // Mirror of the unbounded worker-panic path: a producer dying
        // mid-stream (its Sender dropped during unwinding, queue possibly
        // full) leaves the receiver able to drain what was sent and then
        // observe RecvError — never a hang.
        let (tx, rx) = bounded::<u64>(2);
        let producer = std::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            panic!("producer dies with the queue full");
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert!(producer.join().is_err(), "panic must propagate to join");
    }

    #[test]
    fn bounded_receiver_drop_wakes_blocked_sender_with_its_value() {
        // The pipelined teardown path: a producer blocked on a full queue
        // whose consumer dies must wake with SendError carrying the exact
        // value, not block forever.
        let (tx, rx) = bounded::<String>(1);
        tx.send("queued".into()).unwrap();
        let producer = std::thread::spawn(move || tx.send("blocked".to_string()));
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(rx);
        let err = producer.join().unwrap().unwrap_err();
        assert_eq!(err.0, "blocked");
    }

    #[test]
    fn bounded_try_recv_frees_a_slot() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.try_recv(), None, "empty queue yields None");
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Some(7));
        // The freed slot is immediately sendable again without blocking.
        tx.send(8).unwrap();
        assert_eq!(rx.recv(), Ok(8));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = bounded::<u8>(0);
    }

    #[test]
    fn send_tracked_reports_zero_without_contention() {
        // Unbounded sends never block; bounded sends below capacity
        // don't either — both must report a zero stall.
        let (utx, _urx) = channel::<u32>();
        assert_eq!(utx.send_tracked(1).unwrap(), std::time::Duration::ZERO);
        let (btx, _brx) = bounded::<u32>(4);
        for i in 0..4 {
            assert_eq!(btx.send_tracked(i).unwrap(), std::time::Duration::ZERO);
        }
        assert_eq!(btx.queued(), 4);
    }

    #[test]
    fn send_tracked_measures_the_blocked_wait() {
        // Fill the queue, then send from a thread while the receiver
        // sleeps before draining: the tracked duration must cover the
        // enforced wait.
        let (tx, rx) = bounded::<u32>(1);
        tx.send(0).unwrap();
        let producer = std::thread::spawn(move || tx.send_tracked(1).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(rx.recv(), Ok(0));
        let stall = producer.join().unwrap();
        assert!(
            stall >= std::time::Duration::from_millis(20),
            "stall {stall:?} did not cover the blocked window"
        );
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn queued_tracks_sends_and_recvs() {
        let (tx, rx) = channel::<u32>();
        assert_eq!(tx.queued(), 0);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.queued(), 2);
        rx.recv().unwrap();
        assert_eq!(tx.queued(), 1);
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = channel::<u64>();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut seen = Vec::new();
        while let Ok(v) = rx.recv() {
            seen.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        seen.sort_unstable();
        let expected: Vec<u64> = (0..8u64)
            .flat_map(|t| (0..100).map(move |i| t * 1000 + i))
            .collect();
        assert_eq!(seen, expected);
    }
}
