//! [`KeyIndex`]: the shard hot path's key → bin-stack map.
//!
//! `Shard` (and rounds mode's global index) used to track live keys in a
//! `std::collections::HashMap<u64, Vec<u64>>`. That pays twice per op on
//! the hottest path in the engine: SipHash over an already-uniform `u64`
//! key, and a heap-allocated `Vec` per key even though almost every key
//! holds one or two balls (load factor ≈ 1 in every experiment here).
//!
//! [`KeyIndex`] replaces both costs:
//!
//! * **Seeded multiply-mix hashing** — keys are hashed with the
//!   [`SplitMix64`] finalizer over `key ^ seed` (two multiply/xor-shift
//!   rounds), which is a few cycles instead of SipHash's per-byte rounds
//!   and is exactly right for keys that are already uniform `u64`s. The
//!   seed keeps the table's probe order deterministic per shard while
//!   still decorrelating it from the raw key values.
//! * **Inline small-stacks** — up to [`INLINE_BINS`] bins live directly
//!   in the key's arena entry; only deeper stacks spill to a heap
//!   `Vec`, and a spilled stack shrinks back inline when deletes bring
//!   it down again. Insert-then-delete churn at realistic depths never
//!   allocates.
//!
//! The table is open-addressed with linear probing and backward-shift
//! deletion (no tombstones), growing at 5/8 occupancy. Storage is a
//! dense probe array of 16-byte slots (four per cache line — a probe
//! run usually stays inside one line) pointing into a stable stack
//! *arena*, reached exactly once per operation. Growth rebuilds only
//! the slots; stacks never move. Enumeration order
//! of a hash table is an implementation detail, so the deterministic
//! surface the engine exposes ([`Shard::live_key_ids`](crate::Shard::live_key_ids),
//! cluster drains, placement maps) always goes through [`KeyIndex::sorted_keys`],
//! which sorts ascending exactly like the `HashMap` predecessor did.

use ba_rng::SplitMix64;

/// Bins stored directly in an arena entry before the stack spills to
/// the heap. Six fills a stack entry out to exactly one cache line and
/// comfortably covers the bench convention's mean key depth
/// (`total_ops = 4 × keyspace`): under a Poisson(4) depth profile only
/// ~11% of keys ever touch the heap.
pub const INLINE_BINS: usize = 6;

/// A key's LIFO stack of bins: inline up to [`INLINE_BINS`] deep, heap
/// beyond that, shrinking back inline when it fits again.
///
/// Sized and aligned to exactly one 64-byte cache line so an arena
/// access is always a single line fill — unaligned 40-byte entries
/// straddled a boundary five times out of eight, costing a second miss
/// on the (DRAM-bound) cold-key path.
#[derive(Debug, Clone)]
#[repr(align(64))]
enum Stack {
    /// `len` live bins stored in-slot (`len >= 1`; empty stacks are
    /// removed from the table, never stored).
    Inline { len: u8, bins: [u64; INLINE_BINS] },
    /// The deep case: more than [`INLINE_BINS`] live bins.
    Spilled(Vec<u64>),
}

/// The arena layout contract: one entry, one cache line.
const _: () = assert!(std::mem::size_of::<Stack>() == 64);

impl Stack {
    fn one(bin: u64) -> Self {
        let mut bins = [0; INLINE_BINS];
        bins[0] = bin;
        Stack::Inline { len: 1, bins }
    }

    fn push(&mut self, bin: u64) {
        match self {
            Stack::Inline { len, bins } => {
                let n = *len as usize;
                if n < INLINE_BINS {
                    bins[n] = bin;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(INLINE_BINS * 2);
                    spilled.extend_from_slice(&bins[..n]);
                    spilled.push(bin);
                    *self = Stack::Spilled(spilled);
                }
            }
            Stack::Spilled(bins) => bins.push(bin),
        }
    }

    /// Pops the most recent bin. Returns `(bin, now_empty)`; the caller
    /// removes the entry when the stack empties.
    fn pop(&mut self) -> (u64, bool) {
        match self {
            Stack::Inline { len, bins } => {
                *len -= 1;
                (bins[*len as usize], *len == 0)
            }
            Stack::Spilled(heap) => {
                let bin = heap.pop().expect("spilled stacks hold > INLINE_BINS bins");
                if heap.len() <= INLINE_BINS {
                    let mut bins = [0u64; INLINE_BINS];
                    bins[..heap.len()].copy_from_slice(heap);
                    *self = Stack::Inline {
                        len: heap.len() as u8,
                        bins,
                    };
                }
                (bin, false)
            }
        }
    }

    fn as_slice(&self) -> &[u64] {
        match self {
            Stack::Inline { len, bins } => &bins[..*len as usize],
            Stack::Spilled(bins) => bins,
        }
    }
}

impl Default for Stack {
    /// Placeholder for unoccupied slots in the parallel stack array;
    /// never observed through the public API.
    fn default() -> Self {
        Stack::Inline {
            len: 0,
            bins: [0; INLINE_BINS],
        }
    }
}

/// One probe-array slot: the key, its live flag, and the index of its
/// stack in the arena — 16 bytes, so a cache line covers four slots and
/// a probe run usually stays inside one line.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: u64,
    /// Arena index of this key's stack (meaningful only while live).
    /// `u32` keeps the slot at 16 bytes; four billion simultaneously
    /// live keys per shard is far beyond any configuration here.
    stack: u32,
    live: bool,
}

/// An open-addressed `u64 → bin-stack` map tuned for the shard hot path:
/// multiply-mix hashing, linear probing with backward-shift deletion,
/// and inline storage for stacks up to [`INLINE_BINS`] deep. See the
/// [module docs](self) for why it replaces `HashMap<u64, Vec<u64>>`.
///
/// Storage is a dense probe array of 16-byte slots plus a stack *arena* the
/// slots point into. Growth rebuilds only the 16-byte slots under the
/// new mask; the wide stacks never move (their arena positions are
/// stable for a key's whole life, and freed positions recycle through a
/// free list), so rehashing costs bytes proportional to the probe
/// array, not to the stacks.
#[derive(Debug, Clone)]
pub struct KeyIndex {
    /// Mixed into every hash; makes probe order deterministic per owner
    /// (shards pass their salt) without being a function of raw keys.
    seed: u64,
    /// Power-of-two probe array; a dead slot terminates probe runs.
    slots: Vec<Slot>,
    /// Stack arena; live slots point into it, free positions are listed
    /// in `free`.
    stacks: Vec<Stack>,
    /// Arena positions whose keys were removed, ready for reuse.
    free: Vec<u32>,
    /// `slots.len() - 1`, cached for masking (0 while unallocated).
    mask: usize,
    /// Live keys (occupied slots).
    len: usize,
}

impl KeyIndex {
    /// Initial capacity on first insert.
    const FIRST_CAPACITY: usize = 16;

    /// Creates an empty index hashing with `seed`. No slots are
    /// allocated until the first insert.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            slots: Vec::new(),
            stacks: Vec::new(),
            free: Vec::new(),
            mask: 0,
            len: 0,
        }
    }

    /// Number of distinct live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no key holds a live ball.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The key's home slot under the current capacity.
    #[inline]
    fn home(&self, key: u64) -> usize {
        SplitMix64::mix(key ^ self.seed) as usize & self.mask
    }

    /// Finds the slot holding `key`, if present. Touches only the dense
    /// probe array.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = self.home(key);
        loop {
            let slot = self.slots[i];
            if !slot.live {
                return None;
            }
            if slot.key == key {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `(key, arena index)` into a table guaranteed to have a
    /// free slot.
    #[inline]
    fn insert_entry(&mut self, key: u64, stack: u32) {
        let mut i = self.home(key);
        while self.slots[i].live {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = Slot {
            key,
            stack,
            live: true,
        };
        self.len += 1;
    }

    /// Doubles (or first-allocates) the probe array and re-inserts every
    /// slot under the new mask. The stack arena is untouched — growth
    /// cost is proportional to the 16-byte slots alone.
    fn grow(&mut self) {
        let capacity = if self.slots.is_empty() {
            Self::FIRST_CAPACITY
        } else {
            self.slots.len() * 2
        };
        let old_slots = std::mem::replace(&mut self.slots, vec![Slot::default(); capacity]);
        self.mask = capacity - 1;
        self.len = 0;
        for slot in old_slots {
            if slot.live {
                self.insert_entry(slot.key, slot.stack);
            }
        }
    }

    /// Pushes `bin` onto `key`'s stack (creating the key if new).
    pub fn push(&mut self, key: u64, bin: u64) {
        if let Some(i) = self.find(key) {
            let idx = self.slots[i].stack as usize;
            self.stacks[idx].push(bin);
            return;
        }
        // Grow at 5/8 occupancy: plain (non-SIMD) linear probing
        // degrades steeply past ~2/3 full — an unsuccessful probe at
        // 7/8 walks ~30 slots on average versus ~4 here — and every
        // miss-then-create insert pays the unsuccessful case. Slots are
        // 16 bytes, so the headroom is cheap.
        if (self.len + 1) * 8 > self.slots.len() * 5 {
            self.grow();
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.stacks[idx as usize] = Stack::one(bin);
                idx
            }
            None => {
                self.stacks.push(Stack::one(bin));
                (self.stacks.len() - 1) as u32
            }
        };
        self.insert_entry(key, idx);
    }

    /// Pops the most recent bin for `key`; removes the key when its last
    /// ball goes. Returns `None` for a key with no live balls.
    pub fn pop(&mut self, key: u64) -> Option<u64> {
        let i = self.find(key)?;
        let idx = self.slots[i].stack;
        let (bin, now_empty) = self.stacks[idx as usize].pop();
        if now_empty {
            // An emptied stack is already inline (spills shrink back
            // before emptying), so recycling the position needs no
            // cleanup — `Stack::one` overwrites it on reuse.
            self.free.push(idx);
            self.remove_at(i);
        }
        Some(bin)
    }

    /// Vacates slot `hole`, backward-shifting any displaced slots of
    /// the probe run that follows so lookups never need tombstones.
    /// Only the 16-byte slots move; arena positions are stable.
    fn remove_at(&mut self, mut hole: usize) {
        self.slots[hole].live = false;
        self.len -= 1;
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            let slot = self.slots[i];
            if !slot.live {
                return;
            }
            let home = self.home(slot.key);
            // The slot can fill the hole iff the hole lies on its probe
            // path — its displacement from home reaches at least as far
            // back as the hole does.
            let entry_distance = i.wrapping_sub(home) & self.mask;
            let hole_distance = i.wrapping_sub(hole) & self.mask;
            if entry_distance >= hole_distance {
                self.slots[hole] = slot;
                self.slots[i].live = false;
                hole = i;
            }
        }
    }

    /// The bins currently holding balls for `key`, oldest first.
    pub fn get(&self, key: u64) -> Option<&[u64]> {
        self.find(key)
            .map(|i| self.stacks[self.slots[i].stack as usize].as_slice())
    }

    /// Number of live balls for `key` (0 when absent).
    pub fn depth(&self, key: u64) -> usize {
        self.get(key).map_or(0, <[u64]>::len)
    }

    /// Every live key, sorted ascending — the deterministic enumeration
    /// the engine's replayable surfaces (cluster drains, placement maps)
    /// are built on. Slot order is a hash-table artifact and is never
    /// exposed.
    pub fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .slots
            .iter()
            .filter(|slot| slot.live)
            .map(|slot| slot.key)
            .collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_pop_roundtrip() {
        let mut idx = KeyIndex::with_seed(7);
        assert!(idx.is_empty());
        assert_eq!(idx.get(5), None);
        idx.push(5, 40);
        idx.push(5, 41);
        assert_eq!(idx.get(5), Some(&[40, 41][..]));
        assert_eq!(idx.depth(5), 2);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.pop(5), Some(41), "pops are LIFO");
        assert_eq!(idx.pop(5), Some(40));
        assert_eq!(idx.pop(5), None);
        assert!(idx.is_empty());
    }

    #[test]
    fn spills_past_inline_and_shrinks_back() {
        let mut idx = KeyIndex::with_seed(1);
        for bin in 0..10u64 {
            idx.push(9, bin);
        }
        assert_eq!(idx.get(9).unwrap(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        for bin in (2..10u64).rev() {
            assert_eq!(idx.pop(9), Some(bin));
        }
        // Back inside the inline regime, contents intact.
        assert_eq!(idx.get(9), Some(&[0, 1][..]));
        assert_eq!(idx.pop(9), Some(1));
        assert_eq!(idx.pop(9), Some(0));
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn survives_growth_and_collisions() {
        let mut idx = KeyIndex::with_seed(3);
        for key in 0..1000u64 {
            idx.push(key, key * 2);
            idx.push(key, key * 2 + 1);
        }
        assert_eq!(idx.len(), 1000);
        for key in 0..1000u64 {
            assert_eq!(idx.get(key), Some(&[key * 2, key * 2 + 1][..]));
        }
        // Delete every third key entirely; the rest must stay reachable
        // through the backward-shifted probe runs.
        for key in (0..1000u64).step_by(3) {
            assert_eq!(idx.pop(key), Some(key * 2 + 1));
            assert_eq!(idx.pop(key), Some(key * 2));
        }
        for key in 0..1000u64 {
            if key % 3 == 0 {
                assert_eq!(idx.get(key), None);
            } else {
                assert_eq!(idx.depth(key), 2, "key {key} lost after deletes");
            }
        }
    }

    #[test]
    fn sorted_keys_is_ascending_and_seed_independent() {
        let mut a = KeyIndex::with_seed(11);
        let mut b = KeyIndex::with_seed(987_654_321);
        for key in [9u64, 1, 500, 3, 77, 42] {
            a.push(key, 0);
            b.push(key, 0);
        }
        assert_eq!(a.sorted_keys(), vec![1, 3, 9, 42, 77, 500]);
        assert_eq!(a.sorted_keys(), b.sorted_keys());
    }
}
