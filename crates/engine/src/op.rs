//! The engine's operation vocabulary.

/// One data-plane operation against the engine's keyed bin tables.
///
/// Keys are opaque 64-bit identifiers; the engine routes each key to a
/// shard and, on insert, places a ball for it via the shard's choice
/// scheme. Operations are `Copy` so batches can be partitioned across
/// shards without allocation per op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Place a ball for `key` into the least loaded of its shard's choices.
    /// A key may be inserted more than once; each insert adds one ball.
    Insert(u64),
    /// Remove the most recently inserted ball for `key`, if any.
    Delete(u64),
    /// Ask whether any ball for `key` is currently placed.
    Lookup(u64),
}

impl Op {
    /// The key this operation addresses.
    #[inline]
    pub fn key(&self) -> u64 {
        match *self {
            Op::Insert(k) | Op::Delete(k) | Op::Lookup(k) => k,
        }
    }

    /// Short human-readable tag (`insert`/`delete`/`lookup`).
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Insert(_) => "insert",
            Op::Delete(_) => "delete",
            Op::Lookup(_) => "lookup",
        }
    }
}

/// Aggregate outcome of one applied batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Balls placed.
    pub inserts: u64,
    /// Balls removed.
    pub deletes: u64,
    /// Deletes that found no live ball for their key.
    pub missed_deletes: u64,
    /// Lookups served.
    pub lookups: u64,
    /// Lookups that found a live ball.
    pub hits: u64,
}

impl BatchSummary {
    /// Total operations this summary accounts for.
    pub fn total_ops(&self) -> u64 {
        self.inserts + self.deletes + self.missed_deletes + self.lookups
    }

    /// Accumulates another summary into this one.
    pub fn absorb(&mut self, other: &BatchSummary) {
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.missed_deletes += other.missed_deletes;
        self.lookups += other.lookups;
        self.hits += other.hits;
    }

    /// The component-wise difference `self - before`, for turning two
    /// lifetime snapshots into a per-batch delta. Kept next to
    /// [`BatchSummary::absorb`] so a new counter cannot be added to one
    /// without the other.
    pub fn diff(&self, before: &BatchSummary) -> BatchSummary {
        BatchSummary {
            inserts: self.inserts - before.inserts,
            deletes: self.deletes - before.deletes,
            missed_deletes: self.missed_deletes - before.missed_deletes,
            lookups: self.lookups - before.lookups,
            hits: self.hits - before.hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Insert(7).key(), 7);
        assert_eq!(Op::Delete(8).key(), 8);
        assert_eq!(Op::Lookup(9).key(), 9);
        assert_eq!(Op::Insert(0).kind(), "insert");
        assert_eq!(Op::Delete(0).kind(), "delete");
        assert_eq!(Op::Lookup(0).kind(), "lookup");
    }

    #[test]
    fn summary_absorbs() {
        let mut a = BatchSummary {
            inserts: 1,
            deletes: 2,
            missed_deletes: 3,
            lookups: 4,
            hits: 2,
        };
        a.absorb(&a.clone());
        assert_eq!(a.inserts, 2);
        assert_eq!(a.total_ops(), 20);
        assert_eq!(a.hits, 4);
    }

    #[test]
    fn diff_inverts_absorb() {
        let before = BatchSummary {
            inserts: 1,
            deletes: 2,
            missed_deletes: 3,
            lookups: 4,
            hits: 2,
        };
        let delta = BatchSummary {
            inserts: 10,
            deletes: 20,
            missed_deletes: 0,
            lookups: 5,
            hits: 1,
        };
        let mut after = before;
        after.absorb(&delta);
        assert_eq!(after.diff(&before), delta);
        assert_eq!(after.diff(&after), BatchSummary::default());
    }
}
