//! Live load/traffic statistics exported through `ba_stats`.

use crate::op::BatchSummary;
use ba_core::Allocation;
use ba_stats::{format_fraction, LoadHistogram, Table};

/// A point-in-time snapshot of one shard.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id.
    pub shard: usize,
    /// Bins in the shard table.
    pub bins: u64,
    /// Balls currently placed.
    pub balls: u64,
    /// Current maximum bin load.
    pub max_load: u32,
    /// Full load histogram of the shard table.
    pub histogram: LoadHistogram,
    /// Lifetime operation counters.
    pub traffic: BatchSummary,
}

impl ShardStats {
    /// Captures a snapshot from a shard's allocation and counters.
    pub fn capture(shard: usize, alloc: &Allocation, traffic: &BatchSummary) -> Self {
        Self {
            shard,
            bins: alloc.n(),
            balls: alloc.balls(),
            max_load: alloc.max_load(),
            histogram: alloc.histogram(),
            traffic: *traffic,
        }
    }
}

/// Aggregate statistics for a whole engine.
#[derive(Debug, Clone)]
pub struct EngineStats {
    shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Wraps per-shard snapshots.
    pub fn new(shards: Vec<ShardStats>) -> Self {
        Self { shards }
    }

    /// The per-shard snapshots.
    pub fn shards(&self) -> &[ShardStats] {
        &self.shards
    }

    /// Balls currently placed engine-wide.
    pub fn total_balls(&self) -> u64 {
        self.shards.iter().map(|s| s.balls).sum()
    }

    /// Operations served engine-wide over the engine's lifetime.
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.traffic.total_ops()).sum()
    }

    /// The engine-wide maximum bin load.
    pub fn max_load(&self) -> u32 {
        self.shards.iter().map(|s| s.max_load).max().unwrap_or(0)
    }

    /// Per-shard maximum loads, indexed by shard id.
    pub fn max_loads(&self) -> Vec<u32> {
        self.shards.iter().map(|s| s.max_load).collect()
    }

    /// The merged load histogram over every shard's bins.
    pub fn merged_histogram(&self) -> LoadHistogram {
        let width = self
            .shards
            .iter()
            .map(|s| s.histogram.len())
            .max()
            .unwrap_or(0);
        let mut counts = vec![0u64; width];
        for shard in &self.shards {
            for (load, &count) in shard.histogram.counts().iter().enumerate() {
                counts[load] += count;
            }
        }
        LoadHistogram::from_counts(counts)
    }

    /// Renders a per-shard table plus aggregate lines, for operator eyes.
    pub fn render(&self) -> String {
        let mut table = Table::new(&[
            "shard", "bins", "balls", "max", "inserts", "deletes", "missed", "lookups", "hitrate",
        ]);
        for s in &self.shards {
            let hit_rate = if s.traffic.lookups == 0 {
                "-".to_string()
            } else {
                format_fraction(s.traffic.hits as f64 / s.traffic.lookups as f64)
            };
            table.row_owned(vec![
                s.shard.to_string(),
                s.bins.to_string(),
                s.balls.to_string(),
                s.max_load.to_string(),
                s.traffic.inserts.to_string(),
                s.traffic.deletes.to_string(),
                s.traffic.missed_deletes.to_string(),
                s.traffic.lookups.to_string(),
                hit_rate,
            ]);
        }
        let merged = self.merged_histogram();
        format!(
            "{}\ntotal: {} balls in {} bins, {} ops served, max load {}\n",
            table.render(),
            merged.total_balls(),
            merged.total_bins(),
            self.total_ops(),
            self.max_load(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::{Allocation, TieBreak};
    use ba_rng::{Rng64, Xoshiro256StarStar};

    fn filled(n: u64, balls: u64, seed: u64) -> Allocation {
        let mut alloc = Allocation::new(n);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..balls {
            let a = rng.gen_range(n);
            let b = rng.gen_range(n);
            alloc.place(&[a, b], TieBreak::Random, &mut rng);
        }
        alloc
    }

    fn stats() -> EngineStats {
        let traffic = BatchSummary {
            inserts: 100,
            deletes: 20,
            missed_deletes: 1,
            lookups: 10,
            hits: 5,
        };
        EngineStats::new(vec![
            ShardStats::capture(0, &filled(64, 100, 1), &traffic),
            ShardStats::capture(1, &filled(64, 50, 2), &traffic),
        ])
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let s = stats();
        assert_eq!(s.total_balls(), 150);
        assert_eq!(s.total_ops(), 262);
        assert_eq!(s.max_loads().len(), 2);
        assert!(s.max_load() >= 2);
    }

    #[test]
    fn merged_histogram_conserves_mass() {
        let merged = stats().merged_histogram();
        assert_eq!(merged.total_balls(), 150);
        assert_eq!(merged.total_bins(), 128);
    }

    #[test]
    fn render_mentions_every_shard() {
        let text = stats().render();
        assert!(text.contains("shard"));
        assert!(text.contains("150 balls in 128 bins"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = EngineStats::new(Vec::new());
        assert_eq!(s.total_balls(), 0);
        assert_eq!(s.max_load(), 0);
        assert_eq!(s.merged_histogram().total_bins(), 0);
    }
}
