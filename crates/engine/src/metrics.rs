//! Live load/traffic statistics exported through `ba_stats`.

use crate::op::BatchSummary;
use ba_core::Allocation;
use ba_stats::{format_fraction, LoadHistogram, Table};

/// An online tracker of small non-negative integer observations: an exact
/// count-per-value histogram.
///
/// The quantities the engine observes per operation — bin loads, probe
/// indices, per-key stack depths — are tiny integers (max load is
/// `O(log log n)`), so an exact integer histogram costs a few words,
/// makes every percentile exact rather than approximated, and derives
/// mean/std-dev/max without a parallel accumulator. Merging two trackers
/// (shard → engine aggregation) is lossless.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OnlinePercentiles {
    /// Count of observations per value; the last slot is always nonzero.
    counts: Vec<u64>,
    total: u64,
}

impl OnlinePercentiles {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u32) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The mean observation (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(value, &count)| value as f64 * count as f64)
            .sum();
        sum / self.total as f64
    }

    /// The sample standard deviation (0 with fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let sq_dev: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(value, &count)| {
                let delta = value as f64 - mean;
                delta * delta * count as f64
            })
            .sum();
        (sq_dev / (self.total - 1) as f64).sqrt()
    }

    /// The largest observation (0 if empty).
    pub fn max(&self) -> u32 {
        self.counts.len().saturating_sub(1) as u32
    }

    /// The exact `p`-th percentile (nearest-rank; `p` in `[0, 100]`),
    /// or 0 if nothing was recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u32 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (value, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return value as u32;
            }
        }
        (self.counts.len().saturating_sub(1)) as u32
    }

    /// Count of observations per value.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another tracker into this one (lossless).
    pub fn merge(&mut self, other: &OnlinePercentiles) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &count) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += count;
        }
        self.total += other.total;
    }
}

/// Per-op-kind online observations a shard accumulates while serving.
///
/// Each field answers a different operator question: how deep do inserts
/// land, which probe wins, how loaded are the bins deletes vacate, and
/// how many balls do lookups find.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpObservations {
    /// Load of the destination bin *after* each insert — the depth the
    /// ball landed at (1 = was empty).
    pub insert_load: OnlinePercentiles,
    /// Index of the winning probe within the choice vector per insert
    /// (0 = first choice won). When a scheme offers the same bin at
    /// several positions (with-replacement sampling), the *first*
    /// position offering the chosen bin is recorded — duplicate probes
    /// address one counter, so later duplicates are indistinguishable.
    pub insert_probe: OnlinePercentiles,
    /// Load of the source bin *before* each successful delete.
    pub delete_load: OnlinePercentiles,
    /// Live balls found per lookup (0 = miss).
    pub lookup_depth: OnlinePercentiles,
}

impl OpObservations {
    /// Merges another set of observations into this one.
    pub fn merge(&mut self, other: &OpObservations) {
        self.insert_load.merge(&other.insert_load);
        self.insert_probe.merge(&other.insert_probe);
        self.delete_load.merge(&other.delete_load);
        self.lookup_depth.merge(&other.lookup_depth);
    }
}

/// A point-in-time snapshot of one shard.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id.
    pub shard: usize,
    /// Bins in the shard table.
    pub bins: u64,
    /// Balls currently placed.
    pub balls: u64,
    /// Current maximum bin load.
    pub max_load: u32,
    /// Full load histogram of the shard table.
    pub histogram: LoadHistogram,
    /// Lifetime operation counters.
    pub traffic: BatchSummary,
    /// Per-op-kind load/probe observations over the shard's lifetime.
    pub observed: OpObservations,
}

impl ShardStats {
    /// Captures a snapshot from a shard's allocation and counters.
    pub fn capture(
        shard: usize,
        alloc: &Allocation,
        traffic: &BatchSummary,
        observed: &OpObservations,
    ) -> Self {
        Self {
            shard,
            bins: alloc.n(),
            balls: alloc.balls(),
            max_load: alloc.max_load(),
            histogram: alloc.histogram(),
            traffic: *traffic,
            observed: observed.clone(),
        }
    }
}

/// Aggregate statistics for a whole engine.
#[derive(Debug, Clone)]
pub struct EngineStats {
    shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Wraps per-shard snapshots.
    pub fn new(shards: Vec<ShardStats>) -> Self {
        Self { shards }
    }

    /// The per-shard snapshots.
    pub fn shards(&self) -> &[ShardStats] {
        &self.shards
    }

    /// Balls currently placed engine-wide.
    pub fn total_balls(&self) -> u64 {
        self.shards.iter().map(|s| s.balls).sum()
    }

    /// Operations served engine-wide over the engine's lifetime.
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.traffic.total_ops()).sum()
    }

    /// The engine-wide maximum bin load.
    pub fn max_load(&self) -> u32 {
        self.shards.iter().map(|s| s.max_load).max().unwrap_or(0)
    }

    /// Per-shard maximum loads, indexed by shard id.
    pub fn max_loads(&self) -> Vec<u32> {
        self.shards.iter().map(|s| s.max_load).collect()
    }

    /// The engine-wide per-op-kind observations, merged across shards.
    pub fn merged_observations(&self) -> OpObservations {
        let mut merged = OpObservations::default();
        for shard in &self.shards {
            merged.merge(&shard.observed);
        }
        merged
    }

    /// The merged load histogram over every shard's bins.
    pub fn merged_histogram(&self) -> LoadHistogram {
        let width = self
            .shards
            .iter()
            .map(|s| s.histogram.len())
            .max()
            .unwrap_or(0);
        let mut counts = vec![0u64; width];
        for shard in &self.shards {
            for (load, &count) in shard.histogram.counts().iter().enumerate() {
                counts[load] += count;
            }
        }
        LoadHistogram::from_counts(counts)
    }

    /// Field-by-field comparison against another snapshot, for replay and
    /// cross-version differential runs: returns one human-readable line
    /// per mismatch (shard count, per-shard bins/balls/max load, load
    /// histograms, lifetime traffic, per-op observations). Empty means the
    /// snapshots are bit-identical.
    pub fn divergences(&self, other: &EngineStats) -> Vec<String> {
        let mut out = Vec::new();
        if self.shards.len() != other.shards.len() {
            out.push(format!(
                "shard count differs: {} vs {}",
                self.shards.len(),
                other.shards.len()
            ));
            return out;
        }
        for (a, b) in self.shards.iter().zip(&other.shards) {
            let id = a.shard;
            if a.shard != b.shard {
                out.push(format!("shard ids differ: {} vs {}", a.shard, b.shard));
                continue;
            }
            if a.bins != b.bins {
                out.push(format!("shard {id}: bins {} vs {}", a.bins, b.bins));
            }
            if a.balls != b.balls {
                out.push(format!("shard {id}: balls {} vs {}", a.balls, b.balls));
            }
            if a.max_load != b.max_load {
                out.push(format!(
                    "shard {id}: max load {} vs {}",
                    a.max_load, b.max_load
                ));
            }
            if a.histogram.counts() != b.histogram.counts() {
                out.push(format!("shard {id}: load histograms differ"));
            }
            if a.traffic != b.traffic {
                out.push(format!(
                    "shard {id}: traffic {:?} vs {:?}",
                    a.traffic, b.traffic
                ));
            }
            if a.observed != b.observed {
                out.push(format!("shard {id}: per-op observations differ"));
            }
        }
        out
    }

    /// Whether this snapshot is bit-identical to `other`
    /// (see [`EngineStats::divergences`]).
    pub fn matches(&self, other: &EngineStats) -> bool {
        self.divergences(other).is_empty()
    }

    /// Renders a per-shard table plus aggregate lines, for operator eyes.
    pub fn render(&self) -> String {
        let mut table = Table::new(&[
            "shard", "bins", "balls", "max", "inserts", "deletes", "missed", "lookups", "hitrate",
        ]);
        for s in &self.shards {
            let hit_rate = if s.traffic.lookups == 0 {
                "-".to_string()
            } else {
                format_fraction(s.traffic.hits as f64 / s.traffic.lookups as f64)
            };
            table.row_owned(vec![
                s.shard.to_string(),
                s.bins.to_string(),
                s.balls.to_string(),
                s.max_load.to_string(),
                s.traffic.inserts.to_string(),
                s.traffic.deletes.to_string(),
                s.traffic.missed_deletes.to_string(),
                s.traffic.lookups.to_string(),
                hit_rate,
            ]);
        }
        let merged = self.merged_histogram();
        let observed = self.merged_observations();
        let mut out = format!(
            "{}\ntotal: {} balls in {} bins, {} ops served, max load {}\n",
            table.render(),
            merged.total_balls(),
            merged.total_bins(),
            self.total_ops(),
            self.max_load(),
        );
        for (label, tracker) in [
            ("insert landing load", &observed.insert_load),
            ("insert winning probe", &observed.insert_probe),
            ("delete vacated load", &observed.delete_load),
            ("lookup depth", &observed.lookup_depth),
        ] {
            // An op kind the run never exercised (e.g. lookups in a
            // lookup-free scenario) renders as `-`, not as a degenerate
            // zero that reads like a measured value.
            if tracker.count() == 0 {
                out.push_str(&format!("{label}: mean - p50 - p99 - max - (0 obs)\n"));
                continue;
            }
            out.push_str(&format!(
                "{label}: mean {} p50 {} p99 {} max {} ({} obs)\n",
                format_fraction(tracker.mean()),
                tracker.percentile(50.0),
                tracker.percentile(99.0),
                tracker.max(),
                tracker.count(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::{Allocation, TieBreak};
    use ba_rng::{Rng64, Xoshiro256StarStar};

    fn filled(n: u64, balls: u64, seed: u64) -> Allocation {
        let mut alloc = Allocation::new(n);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..balls {
            let a = rng.gen_range(n);
            let b = rng.gen_range(n);
            alloc.place(&[a, b], TieBreak::Random, &mut rng);
        }
        alloc
    }

    fn stats() -> EngineStats {
        let traffic = BatchSummary {
            inserts: 100,
            deletes: 20,
            missed_deletes: 1,
            lookups: 10,
            hits: 5,
        };
        let mut observed = OpObservations::default();
        for load in [1u32, 1, 2, 3] {
            observed.insert_load.record(load);
        }
        EngineStats::new(vec![
            ShardStats::capture(0, &filled(64, 100, 1), &traffic, &observed),
            ShardStats::capture(1, &filled(64, 50, 2), &traffic, &observed),
        ])
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let s = stats();
        assert_eq!(s.total_balls(), 150);
        assert_eq!(s.total_ops(), 262);
        assert_eq!(s.max_loads().len(), 2);
        assert!(s.max_load() >= 2);
    }

    #[test]
    fn merged_histogram_conserves_mass() {
        let merged = stats().merged_histogram();
        assert_eq!(merged.total_balls(), 150);
        assert_eq!(merged.total_bins(), 128);
    }

    #[test]
    fn render_mentions_every_shard() {
        let text = stats().render();
        assert!(text.contains("shard"));
        assert!(text.contains("150 balls in 128 bins"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = EngineStats::new(Vec::new());
        assert_eq!(s.total_balls(), 0);
        assert_eq!(s.max_load(), 0);
        assert_eq!(s.merged_histogram().total_bins(), 0);
        assert_eq!(s.merged_observations().insert_load.count(), 0);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut t = OnlinePercentiles::new();
        for v in [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            t.record(v);
        }
        assert_eq!(t.count(), 10);
        assert_eq!(t.percentile(0.0), 1);
        assert_eq!(t.percentile(50.0), 5);
        assert_eq!(t.percentile(90.0), 9);
        assert_eq!(t.percentile(99.0), 10);
        assert_eq!(t.percentile(100.0), 10);
        assert_eq!(t.max(), 10);
        assert!((t.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_percentiles_return_zero() {
        let t = OnlinePercentiles::new();
        assert_eq!(t.percentile(50.0), 0);
        assert_eq!(t.max(), 0);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        OnlinePercentiles::new().percentile(101.0);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut whole = OnlinePercentiles::new();
        let mut left = OnlinePercentiles::new();
        let mut right = OnlinePercentiles::new();
        for i in 0..100u32 {
            let v = (i * 7) % 13;
            whole.record(v);
            if i < 40 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.counts(), whole.counts());
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(left.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merged_observations_sum_shard_counts() {
        let s = stats();
        let merged = s.merged_observations();
        // Two shards, four recorded insert loads each.
        assert_eq!(merged.insert_load.count(), 8);
        assert_eq!(merged.insert_load.percentile(50.0), 1);
        assert_eq!(merged.insert_load.max(), 3);
    }

    #[test]
    fn render_includes_percentile_lines() {
        let text = stats().render();
        assert!(text.contains("insert landing load"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn empty_observation_sets_render_dashes() {
        // A lookup-free (and delete-free) run: the unexercised op kinds
        // must render `-` placeholders, not degenerate zeros.
        let text = stats().render();
        assert!(
            text.contains("delete vacated load: mean - p50 - p99 - max - (0 obs)"),
            "{text}"
        );
        assert!(
            text.contains("lookup depth: mean - p50 - p99 - max - (0 obs)"),
            "{text}"
        );
        // The exercised kind still renders real numbers.
        assert!(!text.contains("insert landing load: mean -"), "{text}");
    }

    #[test]
    fn identical_snapshots_have_no_divergences() {
        let a = stats();
        let b = stats();
        assert!(a.matches(&b), "{:?}", a.divergences(&b));
        assert!(a.divergences(&b).is_empty());
    }

    #[test]
    fn divergences_name_the_differing_fields() {
        let a = stats();
        let mut b = stats();
        b.shards[1].traffic.lookups += 1;
        b.shards[1].observed.insert_load.record(9);
        let diffs = a.divergences(&b);
        assert!(!a.matches(&b));
        assert!(
            diffs.iter().any(|d| d.starts_with("shard 1: traffic")),
            "{diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("per-op observations")),
            "{diffs:?}"
        );
        assert!(
            diffs.iter().all(|d| !d.starts_with("shard 0")),
            "shard 0 is identical: {diffs:?}"
        );
    }

    #[test]
    fn shard_count_mismatch_short_circuits() {
        let a = stats();
        let b = EngineStats::new(Vec::new());
        let diffs = a.divergences(&b);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("shard count"), "{diffs:?}");
    }
}
