//! Live load/traffic statistics exported through `ba_stats`.

use crate::op::BatchSummary;
use ba_core::Allocation;
use ba_stats::{format_fraction, HistogramSketch, LoadHistogram, Table};

/// An online tracker of small non-negative integer observations: an exact
/// count-per-value histogram.
///
/// The quantities the engine observes per operation — bin loads, probe
/// indices, per-key stack depths — are tiny integers (max load is
/// `O(log log n)`), so an exact integer histogram costs a few words,
/// makes every percentile exact rather than approximated, and derives
/// mean/std-dev/max without a parallel accumulator. Merging two trackers
/// (shard → engine aggregation) is lossless.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OnlinePercentiles {
    /// Count of observations per value; the last slot is always nonzero.
    counts: Vec<u64>,
    total: u64,
}

impl OnlinePercentiles {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u32) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The mean observation (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(value, &count)| value as f64 * count as f64)
            .sum();
        sum / self.total as f64
    }

    /// The sample standard deviation (0 with fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let sq_dev: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(value, &count)| {
                let delta = value as f64 - mean;
                delta * delta * count as f64
            })
            .sum();
        (sq_dev / (self.total - 1) as f64).sqrt()
    }

    /// The largest observation (0 if empty).
    pub fn max(&self) -> u32 {
        self.counts.len().saturating_sub(1) as u32
    }

    /// The exact `p`-th percentile (nearest-rank; `p` in `[0, 100]`),
    /// or 0 if nothing was recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u32 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (value, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return value as u32;
            }
        }
        (self.counts.len().saturating_sub(1)) as u32
    }

    /// Count of observations per value.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another tracker into this one (lossless).
    pub fn merge(&mut self, other: &OnlinePercentiles) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &count) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += count;
        }
        self.total += other.total;
    }

    /// Converts this exact tracker into a bounded-memory
    /// [`HistogramSketch`] with unit-width integer bins covering the
    /// observed range — the export shape for mergeable telemetry. On
    /// unit bins the sketch's percentiles equal this tracker's exactly
    /// (the tracker is the sketch's test oracle).
    ///
    /// Returns `None` when the tracker holds no observations: an empty
    /// tracker has no percentiles, and exporting a zeroed sketch would
    /// surface degenerate `p50 = p99 = max = 0` rows downstream
    /// (exactly what [`EngineStats::render`]'s `-` placeholder avoids).
    pub fn to_sketch(&self) -> Option<HistogramSketch> {
        if self.total == 0 {
            return None;
        }
        let mut sketch = HistogramSketch::unit_bins(self.max().max(1));
        for (value, &count) in self.counts.iter().enumerate() {
            sketch.record_n(value as f64, count);
        }
        Some(sketch)
    }
}

/// Per-op-kind online observations a shard accumulates while serving.
///
/// Each field answers a different operator question: how deep do inserts
/// land, which probe wins, how loaded are the bins deletes vacate, and
/// how many balls do lookups find.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpObservations {
    /// Load of the destination bin *after* each insert — the depth the
    /// ball landed at (1 = was empty).
    pub insert_load: OnlinePercentiles,
    /// Index of the winning probe within the choice vector per insert
    /// (0 = first choice won). When a scheme offers the same bin at
    /// several positions (with-replacement sampling), the *first*
    /// position offering the chosen bin is recorded — duplicate probes
    /// address one counter, so later duplicates are indistinguishable.
    pub insert_probe: OnlinePercentiles,
    /// Load of the source bin *before* each successful delete.
    pub delete_load: OnlinePercentiles,
    /// Live balls found per lookup (0 = miss).
    pub lookup_depth: OnlinePercentiles,
}

impl OpObservations {
    /// Merges another set of observations into this one.
    pub fn merge(&mut self, other: &OpObservations) {
        self.insert_load.merge(&other.insert_load);
        self.insert_probe.merge(&other.insert_probe);
        self.delete_load.merge(&other.delete_load);
        self.lookup_depth.merge(&other.lookup_depth);
    }
}

/// A point-in-time snapshot of one shard.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id.
    pub shard: usize,
    /// Bins in the shard table.
    pub bins: u64,
    /// Balls currently placed.
    pub balls: u64,
    /// Current maximum bin load.
    pub max_load: u32,
    /// Full load histogram of the shard table.
    pub histogram: LoadHistogram,
    /// Lifetime operation counters.
    pub traffic: BatchSummary,
    /// Per-op-kind load/probe observations over the shard's lifetime.
    pub observed: OpObservations,
}

impl ShardStats {
    /// Captures a snapshot from a shard's allocation and counters.
    pub fn capture(
        shard: usize,
        alloc: &Allocation,
        traffic: &BatchSummary,
        observed: &OpObservations,
    ) -> Self {
        Self {
            shard,
            bins: alloc.n(),
            balls: alloc.balls(),
            max_load: alloc.max_load(),
            histogram: alloc.histogram(),
            traffic: *traffic,
            observed: observed.clone(),
        }
    }
}

/// Aggregate statistics for a whole engine.
#[derive(Debug, Clone)]
pub struct EngineStats {
    shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Wraps per-shard snapshots.
    pub fn new(shards: Vec<ShardStats>) -> Self {
        Self { shards }
    }

    /// The per-shard snapshots.
    pub fn shards(&self) -> &[ShardStats] {
        &self.shards
    }

    /// Balls currently placed engine-wide.
    pub fn total_balls(&self) -> u64 {
        self.shards.iter().map(|s| s.balls).sum()
    }

    /// Operations served engine-wide over the engine's lifetime.
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.traffic.total_ops()).sum()
    }

    /// The engine-wide maximum bin load.
    pub fn max_load(&self) -> u32 {
        self.shards.iter().map(|s| s.max_load).max().unwrap_or(0)
    }

    /// Per-shard maximum loads, indexed by shard id.
    pub fn max_loads(&self) -> Vec<u32> {
        self.shards.iter().map(|s| s.max_load).collect()
    }

    /// The engine-wide per-op-kind observations, merged across shards.
    pub fn merged_observations(&self) -> OpObservations {
        let mut merged = OpObservations::default();
        for shard in &self.shards {
            merged.merge(&shard.observed);
        }
        merged
    }

    /// The merged load histogram over every shard's bins.
    pub fn merged_histogram(&self) -> LoadHistogram {
        let width = self
            .shards
            .iter()
            .map(|s| s.histogram.len())
            .max()
            .unwrap_or(0);
        let mut counts = vec![0u64; width];
        for shard in &self.shards {
            for (load, &count) in shard.histogram.counts().iter().enumerate() {
                counts[load] += count;
            }
        }
        LoadHistogram::from_counts(counts)
    }

    /// Field-by-field comparison against another snapshot, for replay and
    /// cross-version differential runs: returns one human-readable line
    /// per mismatch (shard count, per-shard bins/balls/max load, load
    /// histograms, lifetime traffic, per-op observations). Empty means the
    /// snapshots are bit-identical.
    ///
    /// Output order is deterministic — sorted by shard index, then metric
    /// name — so differential-run diffs in CI are stable across runs and
    /// code motion.
    pub fn divergences(&self, other: &EngineStats) -> Vec<String> {
        if self.shards.len() != other.shards.len() {
            return vec![format!(
                "shard count differs: {} vs {}",
                self.shards.len(),
                other.shards.len()
            )];
        }
        // (shard index, metric name, line); sorted before rendering so
        // the emitted order never depends on field declaration order.
        let mut entries: Vec<(usize, &'static str, String)> = Vec::new();
        for (a, b) in self.shards.iter().zip(&other.shards) {
            let id = a.shard;
            if a.shard != b.shard {
                entries.push((
                    id,
                    "id",
                    format!("shard ids differ: {} vs {}", a.shard, b.shard),
                ));
                continue;
            }
            if a.balls != b.balls {
                entries.push((
                    id,
                    "balls",
                    format!("shard {id}: balls {} vs {}", a.balls, b.balls),
                ));
            }
            if a.bins != b.bins {
                entries.push((
                    id,
                    "bins",
                    format!("shard {id}: bins {} vs {}", a.bins, b.bins),
                ));
            }
            if a.histogram.counts() != b.histogram.counts() {
                entries.push((
                    id,
                    "histogram",
                    format!("shard {id}: load histograms differ"),
                ));
            }
            if a.max_load != b.max_load {
                entries.push((
                    id,
                    "max load",
                    format!("shard {id}: max load {} vs {}", a.max_load, b.max_load),
                ));
            }
            if a.observed != b.observed {
                entries.push((
                    id,
                    "observations",
                    format!("shard {id}: per-op observations differ"),
                ));
            }
            if a.traffic != b.traffic {
                entries.push((
                    id,
                    "traffic",
                    format!("shard {id}: traffic {:?} vs {:?}", a.traffic, b.traffic),
                ));
            }
        }
        entries.sort_by(|x, y| x.0.cmp(&y.0).then_with(|| x.1.cmp(y.1)));
        entries.into_iter().map(|(_, _, line)| line).collect()
    }

    /// Merges another engine's snapshot into this one — the cross-engine
    /// / cross-node aggregation path. Shard snapshots are appended with
    /// their ids intact and re-sorted by shard index (stable), so
    /// splitting one engine's shards across several [`EngineStats`] and
    /// merging reproduces the single-engine snapshot exactly, and every
    /// aggregate ([`EngineStats::total_balls`],
    /// [`EngineStats::merged_observations`], …) sums over all
    /// constituents. Shards from *different* engines sharing an id stay
    /// as separate snapshots (aggregates still sum across them).
    pub fn merge(&mut self, other: &EngineStats) {
        self.shards.extend(other.shards.iter().cloned());
        self.shards.sort_by_key(|s| s.shard);
    }

    /// Whether this snapshot is bit-identical to `other`
    /// (see [`EngineStats::divergences`]).
    pub fn matches(&self, other: &EngineStats) -> bool {
        self.divergences(other).is_empty()
    }

    /// Renders a per-shard table plus aggregate lines, for operator eyes.
    pub fn render(&self) -> String {
        let mut table = Table::new(&[
            "shard", "bins", "balls", "max", "inserts", "deletes", "missed", "lookups", "hitrate",
        ]);
        for s in &self.shards {
            let hit_rate = if s.traffic.lookups == 0 {
                "-".to_string()
            } else {
                format_fraction(s.traffic.hits as f64 / s.traffic.lookups as f64)
            };
            table.row_owned(vec![
                s.shard.to_string(),
                s.bins.to_string(),
                s.balls.to_string(),
                s.max_load.to_string(),
                s.traffic.inserts.to_string(),
                s.traffic.deletes.to_string(),
                s.traffic.missed_deletes.to_string(),
                s.traffic.lookups.to_string(),
                hit_rate,
            ]);
        }
        let merged = self.merged_histogram();
        let observed = self.merged_observations();
        let mut out = format!(
            "{}\ntotal: {} balls in {} bins, {} ops served, max load {}\n",
            table.render(),
            merged.total_balls(),
            merged.total_bins(),
            self.total_ops(),
            self.max_load(),
        );
        for (label, tracker) in [
            ("insert landing load", &observed.insert_load),
            ("insert winning probe", &observed.insert_probe),
            ("delete vacated load", &observed.delete_load),
            ("lookup depth", &observed.lookup_depth),
        ] {
            // An op kind the run never exercised (e.g. lookups in a
            // lookup-free scenario) renders as `-`, not as a degenerate
            // zero that reads like a measured value.
            if tracker.count() == 0 {
                out.push_str(&format!("{label}: mean - p50 - p99 - max - (0 obs)\n"));
                continue;
            }
            out.push_str(&format!(
                "{label}: mean {} p50 {} p99 {} max {} ({} obs)\n",
                format_fraction(tracker.mean()),
                tracker.percentile(50.0),
                tracker.percentile(99.0),
                tracker.max(),
                tracker.count(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::{Allocation, TieBreak};
    use ba_rng::{Rng64, Xoshiro256StarStar};

    fn filled(n: u64, balls: u64, seed: u64) -> Allocation {
        let mut alloc = Allocation::new(n);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..balls {
            let a = rng.gen_range(n);
            let b = rng.gen_range(n);
            alloc.place(&[a, b], TieBreak::Random, &mut rng);
        }
        alloc
    }

    fn stats() -> EngineStats {
        let traffic = BatchSummary {
            inserts: 100,
            deletes: 20,
            missed_deletes: 1,
            lookups: 10,
            hits: 5,
        };
        let mut observed = OpObservations::default();
        for load in [1u32, 1, 2, 3] {
            observed.insert_load.record(load);
        }
        EngineStats::new(vec![
            ShardStats::capture(0, &filled(64, 100, 1), &traffic, &observed),
            ShardStats::capture(1, &filled(64, 50, 2), &traffic, &observed),
        ])
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let s = stats();
        assert_eq!(s.total_balls(), 150);
        assert_eq!(s.total_ops(), 262);
        assert_eq!(s.max_loads().len(), 2);
        assert!(s.max_load() >= 2);
    }

    #[test]
    fn merged_histogram_conserves_mass() {
        let merged = stats().merged_histogram();
        assert_eq!(merged.total_balls(), 150);
        assert_eq!(merged.total_bins(), 128);
    }

    #[test]
    fn render_mentions_every_shard() {
        let text = stats().render();
        assert!(text.contains("shard"));
        assert!(text.contains("150 balls in 128 bins"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = EngineStats::new(Vec::new());
        assert_eq!(s.total_balls(), 0);
        assert_eq!(s.max_load(), 0);
        assert_eq!(s.merged_histogram().total_bins(), 0);
        assert_eq!(s.merged_observations().insert_load.count(), 0);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut t = OnlinePercentiles::new();
        for v in [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            t.record(v);
        }
        assert_eq!(t.count(), 10);
        assert_eq!(t.percentile(0.0), 1);
        assert_eq!(t.percentile(50.0), 5);
        assert_eq!(t.percentile(90.0), 9);
        assert_eq!(t.percentile(99.0), 10);
        assert_eq!(t.percentile(100.0), 10);
        assert_eq!(t.max(), 10);
        assert!((t.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_percentiles_return_zero() {
        let t = OnlinePercentiles::new();
        assert_eq!(t.percentile(50.0), 0);
        assert_eq!(t.max(), 0);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        OnlinePercentiles::new().percentile(101.0);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut whole = OnlinePercentiles::new();
        let mut left = OnlinePercentiles::new();
        let mut right = OnlinePercentiles::new();
        for i in 0..100u32 {
            let v = (i * 7) % 13;
            whole.record(v);
            if i < 40 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.counts(), whole.counts());
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(left.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merged_observations_sum_shard_counts() {
        let s = stats();
        let merged = s.merged_observations();
        // Two shards, four recorded insert loads each.
        assert_eq!(merged.insert_load.count(), 8);
        assert_eq!(merged.insert_load.percentile(50.0), 1);
        assert_eq!(merged.insert_load.max(), 3);
    }

    #[test]
    fn render_includes_percentile_lines() {
        let text = stats().render();
        assert!(text.contains("insert landing load"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn empty_observation_sets_render_dashes() {
        // A lookup-free (and delete-free) run: the unexercised op kinds
        // must render `-` placeholders, not degenerate zeros.
        let text = stats().render();
        assert!(
            text.contains("delete vacated load: mean - p50 - p99 - max - (0 obs)"),
            "{text}"
        );
        assert!(
            text.contains("lookup depth: mean - p50 - p99 - max - (0 obs)"),
            "{text}"
        );
        // The exercised kind still renders real numbers.
        assert!(!text.contains("insert landing load: mean -"), "{text}");
    }

    #[test]
    fn identical_snapshots_have_no_divergences() {
        let a = stats();
        let b = stats();
        assert!(a.matches(&b), "{:?}", a.divergences(&b));
        assert!(a.divergences(&b).is_empty());
    }

    #[test]
    fn divergences_name_the_differing_fields() {
        let a = stats();
        let mut b = stats();
        b.shards[1].traffic.lookups += 1;
        b.shards[1].observed.insert_load.record(9);
        let diffs = a.divergences(&b);
        assert!(!a.matches(&b));
        assert!(
            diffs.iter().any(|d| d.starts_with("shard 1: traffic")),
            "{diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("per-op observations")),
            "{diffs:?}"
        );
        assert!(
            diffs.iter().all(|d| !d.starts_with("shard 0")),
            "shard 0 is identical: {diffs:?}"
        );
    }

    #[test]
    fn shard_count_mismatch_short_circuits() {
        let a = stats();
        let b = EngineStats::new(Vec::new());
        let diffs = a.divergences(&b);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("shard count"), "{diffs:?}");
    }

    #[test]
    fn merge_empty_into_nonempty_is_identity() {
        let mut populated = OnlinePercentiles::new();
        for v in [2u32, 5, 5, 9] {
            populated.record(v);
        }
        let reference = populated.clone();
        populated.merge(&OnlinePercentiles::new());
        assert_eq!(populated, reference);
        assert_eq!(populated.count(), 4);
        assert_eq!(populated.percentile(50.0), 5);
    }

    #[test]
    fn merge_nonempty_into_empty_copies_everything() {
        let mut populated = OnlinePercentiles::new();
        for v in [0u32, 3, 3, 7] {
            populated.record(v);
        }
        let mut empty = OnlinePercentiles::new();
        empty.merge(&populated);
        assert_eq!(empty, populated);
        assert_eq!(empty.max(), 7);
        assert_eq!(empty.counts().len(), populated.counts().len());
    }

    #[test]
    fn merge_differing_counts_lengths_both_directions() {
        // Short-into-long must not truncate; long-into-short must grow.
        let mut short = OnlinePercentiles::new();
        short.record(1);
        let mut long = OnlinePercentiles::new();
        long.record(10);
        long.record(2);

        let mut a = short.clone();
        a.merge(&long);
        let mut b = long.clone();
        b.merge(&short);
        assert_eq!(a, b, "merge must commute on contents");
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 10);
        assert_eq!(a.counts().len(), 11);
        assert_eq!(a.percentile(100.0), 10);
        assert_eq!(a.percentile(0.0), 1);
    }

    #[test]
    fn divergences_are_sorted_by_shard_then_metric() {
        // Differences planted in every field of both shards must come out
        // grouped by shard index with metric names alphabetical inside
        // each group — the deterministic-ordering contract CI diffs rely
        // on.
        let a = stats();
        let mut b = stats();
        for shard in [1usize, 0] {
            b.shards[shard].balls += 1;
            b.shards[shard].max_load += 1;
            b.shards[shard].traffic.inserts += 1;
            b.shards[shard].observed.insert_load.record(3);
        }
        let diffs = a.divergences(&b);
        let expected_prefixes = [
            "shard 0: balls",
            "shard 0: max load",
            "shard 0: per-op observations",
            "shard 0: traffic",
            "shard 1: balls",
            "shard 1: max load",
            "shard 1: per-op observations",
            "shard 1: traffic",
        ];
        assert_eq!(diffs.len(), expected_prefixes.len(), "{diffs:?}");
        for (line, prefix) in diffs.iter().zip(expected_prefixes) {
            assert!(line.starts_with(prefix), "{line:?} !~ {prefix:?}");
        }
    }

    #[test]
    fn engine_stats_merge_reassembles_a_split_snapshot() {
        // The cross-node aggregation contract: splitting per-shard stats
        // into two EngineStats and merging reproduces the whole, shard
        // order restored by id.
        let whole = stats();
        let mut left = EngineStats::new(vec![whole.shards()[1].clone()]);
        let right = EngineStats::new(vec![whole.shards()[0].clone()]);
        left.merge(&right);
        assert!(left.matches(&whole), "{:?}", left.divergences(&whole));
        assert_eq!(left.total_balls(), whole.total_balls());
        assert_eq!(
            left.merged_observations().insert_load.counts(),
            whole.merged_observations().insert_load.counts()
        );
    }

    #[test]
    fn engine_stats_merge_keeps_duplicate_ids_as_separate_snapshots() {
        // Two engines can both have a shard 0; aggregates must sum over
        // both rather than collapse them.
        let mut a = stats();
        let b = stats();
        let before = a.total_balls();
        a.merge(&b);
        assert_eq!(a.shards().len(), 4);
        assert_eq!(a.total_balls(), 2 * before);
        let ids: Vec<usize> = a.shards().iter().map(|s| s.shard).collect();
        assert_eq!(ids, vec![0, 0, 1, 1], "sorted by shard id");
    }

    #[test]
    fn to_sketch_percentiles_match_the_exact_tracker() {
        let mut tracker = OnlinePercentiles::new();
        for i in 0..500u32 {
            tracker.record((i * 13) % 23);
        }
        let sketch = tracker.to_sketch().expect("tracker has observations");
        assert_eq!(sketch.count(), tracker.count());
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(
                sketch.percentile(p),
                f64::from(tracker.percentile(p)),
                "p{p}: unit-bin sketch must be exact"
            );
        }
        assert_eq!(sketch.max(), f64::from(tracker.max()));
        // An empty tracker has no percentiles to export: no sketch.
        assert!(OnlinePercentiles::new().to_sketch().is_none());
    }
}
