//! `ba-engine` — a sharded, concurrent balanced-allocation engine.
//!
//! The paper ("Balanced Allocations and Double Hashing", Mitzenmacher,
//! SPAA 2014) validates its claim with single-trial, single-threaded
//! simulations. This crate turns the same placement processes into a
//! data-plane: live bin tables served by shards, ingesting batched
//! insert/delete/lookup traffic in parallel, with any
//! [`ba_hash::ChoiceScheme`] supplying the d choices per ball.
//!
//! Design:
//!
//! * **Sharding** — keys route to shards by a fixed SplitMix64 hash
//!   ([`route`]); each shard owns an independent bin table, so shards never
//!   contend and the engine scales linearly with cores.
//! * **Choice sources** — [`ChoiceMode::Stream`] draws fresh choices from
//!   each shard's RNG stream (the paper's process model);
//!   [`ChoiceMode::Keyed`] derives them from `hash(key, shard_salt)` (the
//!   hash-table model), so deleting and re-inserting a key replays its
//!   exact `f + k·g` probe sequence. The generator family behind the
//!   stream is selectable via [`EngineConfig::rng`] (the paper's PRNG
//!   ablation, served live).
//! * **Determinism** — shard `i` draws all randomness from
//!   `SeedSequence::new(seed).child(i)`, and only inserts consume the
//!   stream, so the final state is a pure function of `(config,
//!   op stream)`: sequential, scoped, and persistent-worker application
//!   agree bit-for-bit, and an insert-only shard reproduces
//!   `ba_core::run_process` (or `run_process_keys` in keyed mode) exactly.
//! * **Persistent workers** — [`Engine::serve`] chunks an op stream into
//!   batches; each batch is partitioned per shard (order-preserving,
//!   into reusable scratch buffers — the hot path allocates nothing
//!   after warm-up) and fanned out to one long-lived worker thread per
//!   shard over in-repo MPSC channels ([`WorkerMode::Persistent`]),
//!   avoiding a thread spawn per batch; workers join gracefully when the
//!   engine drops.
//! * **Pipelined ingestion** — [`Engine::serve_pipelined`] (or
//!   [`IngestMode::Pipelined`] via [`EngineConfig::ingest`]) overlaps
//!   production with application: the producer stage partitions the op
//!   stream and ships per-shard batches into *bounded* backpressured
//!   lock-free SPSC rings ([`spsc`]) while the persistent workers apply
//!   earlier batches; drained batch buffers recycle back to the
//!   producer. [`Engine::serve_pipelined_producers`] fans routing out to
//!   N producer threads, each shipping sequence-stamped batches that
//!   every shard worker merges in deterministic (producer, seq) order.
//!   Bit-identical results to phased serving for any producer count,
//!   strictly better producer/worker overlap.
//! * **Round-based bulk-parallel ingestion** — [`IngestMode::Rounds`]
//!   (module [`rounds`]) resolves each batch's inserts in synchronized
//!   propose/resolve rounds over the *global* bin space: bins accept
//!   proposals below a load threshold in salted-key-hash tie order,
//!   losers re-propose. Placement is a pure function of *(batch
//!   contents as a multiset, seed)* — independent of op order, worker
//!   mode, producer count, and shard count — and each batch yields a
//!   [`RoundReport`] (rounds taken, re-proposals per round, max load).
//! * **Replay** — [`Engine::serve_replay`] ingests an op *iterator* in
//!   batch-sized chunks, so captured workload files (the `ba-workload`
//!   replay module's `.baops` format) replay at live-serving memory cost,
//!   and [`EngineStats::divergences`] diffs two stats snapshots field by
//!   field for differential runs.
//! * **Metrics** — [`EngineStats`] snapshots per-shard load histograms
//!   (via [`ba_stats::LoadHistogram`]), max loads, traffic counters, and
//!   online per-op-kind load/probe percentiles
//!   ([`OnlinePercentiles`]); snapshots from different engines (or
//!   nodes) combine via [`EngineStats::merge`].
//! * **Clustering** — [`cluster::Cluster`] fronts many engines behind a
//!   consistent-hash ring ([`cluster::HashRing`], [`NODE_VNODES`] virtual
//!   nodes per node): keys route to a *fixed* set of partitions
//!   ([`cluster::partition_of`]), partitions map to nodes via the ring,
//!   so node add/remove moves only ~1/N of keys and a 1-node vs N-node
//!   cluster serves any stream bit-identically. Live rebalance moves
//!   affected partitions wholesale ([`RebalanceMode::Transfer`]) or
//!   drains them key by key through keyed delete→re-insert
//!   ([`RebalanceMode::Drain`]), logging explainable divergences;
//!   cluster-wide stats merge via [`EngineStats::merge`].
//! * **Telemetry** — attaching a [`MetricsSink`] via [`Engine::set_sink`]
//!   emits one [`MetricRecord`] per applied batch (size, op mix, apply
//!   latency, and — on the pipelined path — bounded-queue occupancy and
//!   backpressure stall count/duration). [`WindowedAggregator`] rolls
//!   records into per-window summaries whose distributions are
//!   bounded-memory [`ba_stats::HistogramSketch`]es, and
//!   [`JsonLinesExporter`] streams one JSON line per closed window.
//!   Sinks observe, never steer: results stay bit-identical with or
//!   without one attached.
//!
//! # Example
//!
//! ```
//! use ba_engine::{Engine, EngineConfig, Op};
//!
//! let mut engine = Engine::by_name("double", EngineConfig::new(4, 1 << 10, 3).seed(9))
//!     .expect("known scheme");
//! let ops: Vec<Op> = (0..4096u64).map(Op::Insert).collect();
//! let summary = engine.serve(&ops, 512);
//! assert_eq!(summary.inserts, 4096);
//! assert_eq!(engine.total_balls(), 4096);
//! // Four choices-of-3 tables at load factor 1: max load stays tiny.
//! assert!(engine.max_load() <= 5, "max load {}", engine.max_load());
//! println!("{}", engine.stats().render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
pub mod cluster;
mod engine;
pub mod index;
mod metrics;
mod op;
pub mod rounds;
mod shard;
mod sink;
pub mod spsc;

pub use cluster::{
    Cluster, ClusterConfig, HashRing, Placement, RebalanceMode, RebalanceReport, NODE_VNODES,
};
pub use engine::{route, ChoiceMode, ConfigError, Engine, EngineConfig, IngestMode, WorkerMode};
pub use index::KeyIndex;
pub use metrics::{EngineStats, OnlinePercentiles, OpObservations, ShardStats};
pub use op::{BatchSummary, Op};
pub use rounds::RoundReport;
pub use shard::Shard;
pub use sink::{
    JsonLinesExporter, MetricRecord, MetricsSink, SharedSink, WindowSummary, WindowedAggregator,
};
