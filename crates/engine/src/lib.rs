//! `ba-engine` — a sharded, concurrent balanced-allocation engine.
//!
//! The paper ("Balanced Allocations and Double Hashing", Mitzenmacher,
//! SPAA 2014) validates its claim with single-trial, single-threaded
//! simulations. This crate turns the same placement processes into a
//! data-plane: live bin tables served by shards, ingesting batched
//! insert/delete/lookup traffic in parallel, with any
//! [`ba_hash::ChoiceScheme`] supplying the d choices per ball.
//!
//! Design:
//!
//! * **Sharding** — keys route to shards by a fixed SplitMix64 hash
//!   ([`route`]); each shard owns an independent bin table, so shards never
//!   contend and the engine scales linearly with cores.
//! * **Determinism** — shard `i` draws all randomness from
//!   `SeedSequence::new(seed).child(i)`, and only inserts consume the
//!   stream, so the final state is a pure function of `(seed, scheme,
//!   op stream)`: parallel and sequential application agree bit-for-bit,
//!   and an insert-only shard reproduces `ba_core::run_process` exactly.
//! * **Batched ingestion** — [`Engine::serve`] chunks an op stream into
//!   batches; each batch is partitioned per shard (order-preserving) and
//!   applied by scoped worker threads.
//! * **Metrics** — [`EngineStats`] snapshots per-shard load histograms
//!   (via [`ba_stats::LoadHistogram`]), max loads, and traffic counters.
//!
//! # Example
//!
//! ```
//! use ba_engine::{Engine, EngineConfig, Op};
//!
//! let mut engine = Engine::by_name("double", EngineConfig::new(4, 1 << 10, 3).seed(9))
//!     .expect("known scheme");
//! let ops: Vec<Op> = (0..4096u64).map(Op::Insert).collect();
//! let summary = engine.serve(&ops, 512);
//! assert_eq!(summary.inserts, 4096);
//! assert_eq!(engine.total_balls(), 4096);
//! // Four choices-of-3 tables at load factor 1: max load stays tiny.
//! assert!(engine.max_load() <= 5, "max load {}", engine.max_load());
//! println!("{}", engine.stats().render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod metrics;
mod op;
mod shard;

pub use engine::{route, Engine, EngineConfig};
pub use metrics::{EngineStats, ShardStats};
pub use op::{BatchSummary, Op};
pub use shard::Shard;
