//! Property tests for the cluster tier's two routing contracts:
//!
//! 1. **Ring stability** — `Cluster::node_for` only changes for keys
//!    owned by the node being added or removed: an add steals keys
//!    exclusively for the new node, and removing it restores every
//!    ownership exactly.
//! 2. **Node-count invariance** — an N-node cluster serving a capture
//!    produces merged [`EngineStats`] (and per-key placement) equal to
//!    the 1-node cluster over the same capture: topology decides
//!    ownership, never placement.

use ba_engine::cluster::{partition_of, ring_position};
use ba_engine::{Cluster, ClusterConfig, EngineConfig, HashRing, Op};
use proptest::prelude::*;

/// Sampled node ids, deduplicated (the ring rejects duplicates).
fn distinct_nodes(raw: Vec<u64>) -> Vec<u64> {
    let mut nodes = raw;
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// Decodes a sampled `(key, kind)` pair into an op over a small keyspace
/// so deletes and lookups actually hit live keys.
fn decode_op(key: u64, kind: u8) -> Op {
    let key = key % 512;
    match kind % 4 {
        0 | 1 => Op::Insert(key),
        2 => Op::Delete(key),
        _ => Op::Lookup(key),
    }
}

fn cluster_at(nodes: &[u64], partitions: usize) -> Cluster<ba_hash::AnyScheme> {
    let engine = EngineConfig::new(2, 64, 3).seed(2014).keyed().sequential();
    let config = ClusterConfig::new(engine).partitions(partitions);
    Cluster::by_name("double", config, nodes).expect("known scheme")
}

proptest! {
    #[test]
    fn node_add_remove_moves_only_the_touched_nodes_keys(
        raw_nodes in proptest::collection::vec(0u64..1_000, 1..8),
        extra in 1_000u64..2_000,
        keys in proptest::collection::vec(any::<u64>(), 1..128),
    ) {
        let nodes = distinct_nodes(raw_nodes);
        let partitions = 64usize;
        let mut ring = HashRing::new(16);
        for &node in &nodes {
            ring.add_node(node);
        }
        let owner = |ring: &HashRing, key: u64| {
            ring.owner(ring_position(partition_of(key, partitions)))
        };
        let before: Vec<u64> = keys.iter().map(|&k| owner(&ring, k)).collect();

        // Adding a node steals keys only for itself.
        prop_assert!(ring.add_node(extra));
        for (&key, &was) in keys.iter().zip(&before) {
            let now = owner(&ring, key);
            prop_assert!(
                now == was || now == extra,
                "key {key} moved {was} -> {now}, not to the added node {extra}"
            );
        }

        // Removing it restores every ownership exactly.
        prop_assert!(ring.remove_node(extra));
        for (&key, &was) in keys.iter().zip(&before) {
            prop_assert_eq!(owner(&ring, key), was);
        }

        // Removing an original member only moves that member's keys.
        if nodes.len() > 1 {
            let victim = nodes[0];
            prop_assert!(ring.remove_node(victim));
            for (&key, &was) in keys.iter().zip(&before) {
                let now = owner(&ring, key);
                if was == victim {
                    prop_assert!(now != victim, "key {key} still owned by removed {victim}");
                } else {
                    prop_assert_eq!(now, was);
                }
            }
        }
    }

    #[test]
    fn n_node_stats_equal_single_node_stats(
        encoded in proptest::collection::vec((any::<u64>(), any::<u8>()), 1..300),
        node_count in 2usize..5,
    ) {
        let ops: Vec<Op> = encoded.into_iter().map(|(k, kind)| decode_op(k, kind)).collect();
        let mut single = cluster_at(&[0], 8);
        let nodes: Vec<u64> = (0..node_count as u64).collect();
        let mut spread = cluster_at(&nodes, 8);

        let a = single.serve(&ops, 32);
        let b = spread.serve(&ops, 32);
        prop_assert_eq!(a, b);

        let divergences = single.stats().divergences(&spread.stats());
        prop_assert!(divergences.is_empty(), "{:?}", divergences);
        prop_assert!(single.placement_divergences(&spread).is_empty());

        // Per-node stats partition the whole: their merge equals the
        // cluster-wide snapshot ball count.
        let per_node: u64 = nodes
            .iter()
            .map(|&n| spread.node_stats(n).total_balls())
            .sum();
        prop_assert_eq!(per_node, spread.total_balls());
    }
}
