//! Property tests: [`KeyIndex`] is observationally equivalent to the
//! `HashMap<u64, Vec<u64>>` it replaced on the shard hot path.

use ba_engine::KeyIndex;
use proptest::prelude::*;
use std::collections::HashMap;

/// The reference model: exactly the structure `Shard` used before.
#[derive(Default)]
struct Model {
    map: HashMap<u64, Vec<u64>>,
}

impl Model {
    fn push(&mut self, key: u64, bin: u64) {
        self.map.entry(key).or_default().push(bin);
    }

    fn pop(&mut self, key: u64) -> Option<u64> {
        let stack = self.map.get_mut(&key)?;
        let bin = stack.pop().expect("model never holds empty stacks");
        if stack.is_empty() {
            self.map.remove(&key);
        }
        Some(bin)
    }

    fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

proptest! {
    /// Every interleaving of pushes and pops over a colliding key pool
    /// leaves the index and the model observationally identical: pop
    /// results (LIFO), stack contents, depths, lengths, enumeration.
    #[test]
    fn key_index_matches_hashmap_model(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u64..24, any::<u64>(), 0u8..3), 1..400),
    ) {
        let mut idx = KeyIndex::with_seed(seed);
        let mut model = Model::default();
        for &(key, bin, kind) in &ops {
            match kind {
                0 | 1 => {
                    // Twice the weight on pushes so stacks actually deepen
                    // through the inline -> spilled -> inline transitions.
                    idx.push(key, bin);
                    model.push(key, bin);
                }
                _ => {
                    prop_assert_eq!(idx.pop(key), model.pop(key), "pop({})", key);
                }
            }
            prop_assert_eq!(idx.len(), model.map.len());
            prop_assert_eq!(idx.is_empty(), model.map.is_empty());
        }
        prop_assert_eq!(idx.sorted_keys(), model.sorted_keys());
        for (&key, stack) in &model.map {
            prop_assert_eq!(idx.get(key), Some(stack.as_slice()), "get({})", key);
            prop_assert_eq!(idx.depth(key), stack.len());
        }
        // Absent keys answer absent, even after backward-shift deletions
        // rearranged the probe runs around their home slots.
        for key in 24u64..48 {
            prop_assert_eq!(idx.get(key), None);
            prop_assert_eq!(idx.depth(key), 0);
            prop_assert_eq!(idx.pop(key), None);
        }
    }

    /// Draining a grown index key by key exercises backward-shift
    /// deletion across resize boundaries; every key must stay reachable
    /// until its own last pop.
    #[test]
    fn key_index_survives_full_drain(
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut idx = KeyIndex::with_seed(seed);
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for &key in &keys {
            idx.push(key, key ^ 1);
            *expect.entry(key).or_insert(0) += 1;
        }
        prop_assert_eq!(idx.len(), expect.len());
        let mut order = idx.sorted_keys();
        // Drain high-to-low so deletion order differs from insertion order.
        order.reverse();
        for key in order {
            for _ in 0..expect[&key] {
                prop_assert_eq!(idx.pop(key), Some(key ^ 1));
            }
            prop_assert_eq!(idx.pop(key), None);
        }
        prop_assert!(idx.is_empty());
    }
}
