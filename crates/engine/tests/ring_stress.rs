//! Shuffle-schedule stress tests for the SPSC ring (`ba_engine::spsc`).
//!
//! The ring's unit tests cover each empty/full/disconnect edge once,
//! deterministically. This suite hammers the same edges under *many
//! different thread interleavings*: each iteration derives a schedule
//! from a seeded xorshift stream and perturbs the producer and consumer
//! with seed-dependent yields, spins, and sleeps, so the park/unpark
//! handshake, the drop paths, and the wraparound arithmetic get exercised
//! at shifted phases instead of whatever one interleaving the scheduler
//! happens to produce. A lost wakeup shows up as a test that hangs (and
//! trips the harness timeout); a broken handshake shows up as reordered,
//! duplicated, or dropped values.
//!
//! Iteration counts scale with the `RING_STRESS` env var (a multiplier;
//! CI's dedicated ring-stress job sets it and runs `--include-ignored`
//! to pick up the heavy variants).

use ba_engine::spsc::{self, RecvError};
use std::time::Duration;

/// Deterministic schedule noise: xorshift64*, one stream per iteration.
struct Schedule(u64);

impl Schedule {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(2_685_821_657_736_338_717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Perturb the calling thread according to the stream: mostly run
    /// hot, sometimes yield, rarely sleep — enough jitter to shift which
    /// side hits the empty/full edge first.
    fn perturb(&mut self) {
        match self.next() % 16 {
            0..=11 => {}
            12 | 13 => std::thread::yield_now(),
            14 => std::hint::spin_loop(),
            _ => std::thread::sleep(Duration::from_micros(self.next() % 50)),
        }
    }
}

/// Iterations for a test: `base × RING_STRESS` (default multiplier 1).
fn iterations(base: u64) -> u64 {
    let mult = std::env::var("RING_STRESS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    base * mult
}

/// One full producer/consumer run over a fresh ring: `n` values, both
/// sides perturbed by their own schedule stream; asserts exact FIFO
/// delivery of every value.
fn fifo_run(capacity: usize, n: u64, seed: u64) {
    let (tx, rx) = spsc::ring::<u64>(capacity);
    let producer = std::thread::spawn(move || {
        let mut schedule = Schedule::new(seed);
        for i in 0..n {
            schedule.perturb();
            tx.send(i).expect("consumer alive for the whole stream");
        }
    });
    let mut schedule = Schedule::new(seed ^ 0xDEAD_BEEF);
    for expected in 0..n {
        schedule.perturb();
        assert_eq!(
            rx.recv(),
            Ok(expected),
            "cap {capacity} seed {seed}: reordered, dropped, or duplicated"
        );
    }
    assert_eq!(rx.recv(), Err(RecvError), "stream must end after n values");
    producer.join().unwrap();
}

#[test]
fn fifo_integrity_across_schedules() {
    // Capacity 1 forces every send/recv through the full/empty edges;
    // larger capacities mix fast-path and edge traffic.
    for capacity in [1usize, 2, 8] {
        for round in 0..iterations(20) {
            fifo_run(capacity, 400, round * 31 + capacity as u64);
        }
    }
}

#[test]
#[ignore = "heavy schedule sweep; CI's ring-stress job runs it via --include-ignored"]
fn fifo_integrity_heavy() {
    for capacity in [1usize, 2, 8, 64] {
        for round in 0..iterations(60) {
            fifo_run(capacity, 2_000, round * 131 + capacity as u64);
        }
    }
}

#[test]
fn producer_drop_while_full_always_drains() {
    // The producer dies (thread exit drops the RingProducer) at a
    // schedule-dependent point, frequently while the ring is full and
    // it is blocked in send. The consumer must always receive exactly
    // the prefix that send() accepted, then see the disconnect.
    for round in 0..iterations(40) {
        let capacity = 1usize << (round % 4); // 1, 2, 4, 8
        let (tx, rx) = spsc::ring::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            let mut schedule = Schedule::new(round * 7 + 1);
            let quota = schedule.next() % 40;
            let mut sent = 0u64;
            while sent < quota {
                schedule.perturb();
                if tx.send(sent).is_err() {
                    break;
                }
                sent += 1;
            }
            sent // how many the consumer must observe
        });
        let mut schedule = Schedule::new(round * 13 + 5);
        // Let the producer run ahead (often filling the ring) before the
        // consumer starts draining — schedule-dependent.
        if round % 3 == 0 {
            std::thread::sleep(Duration::from_micros(schedule.next() % 200));
        }
        let mut received = 0u64;
        while let Ok(value) = rx.recv() {
            assert_eq!(value, received, "round {round}: gap in drained prefix");
            received += 1;
            schedule.perturb();
        }
        let sent = producer.join().unwrap();
        assert_eq!(received, sent, "round {round}: drain lost values");
        assert_eq!(rx.recv(), Err(RecvError), "round {round}: not sticky");
    }
}

#[test]
fn receiver_drop_wakes_blocked_producer_with_value() {
    // The consumer dies at a schedule-dependent point while the producer
    // pushes as fast as it can; the producer must always terminate (no
    // lost wakeup while parked on a full ring) and get its value back on
    // the failing send.
    for round in 0..iterations(40) {
        let capacity = 1usize << (round % 3); // 1, 2, 4
        let (tx, rx) = spsc::ring::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            let mut schedule = Schedule::new(round * 29 + 3);
            let mut i = 0u64;
            loop {
                schedule.perturb();
                match tx.send(i) {
                    Ok(()) => i += 1,
                    Err(err) => return (i, err.0),
                }
            }
        });
        let mut schedule = Schedule::new(round * 17 + 11);
        let drain = schedule.next() % 30;
        let mut expected = 0u64;
        for _ in 0..drain {
            schedule.perturb();
            match rx.recv() {
                Ok(v) => {
                    assert_eq!(v, expected, "round {round}");
                    expected += 1;
                }
                Err(_) => break,
            }
        }
        drop(rx); // often while the producer is parked on a full ring
        let (next, bounced) = producer.join().unwrap();
        assert_eq!(
            bounced, next,
            "round {round}: SendError must return the unsent value"
        );
        assert!(
            next >= expected,
            "round {round}: producer cannot be behind the consumer"
        );
    }
}

#[test]
fn depth_one_ping_pong_over_many_laps() {
    // Capacity 1: every exchange is an empty edge for one side and a
    // full edge for the other — the tightest possible park/unpark loop.
    // Values are round-trip verified (consumer echoes through a second
    // ring), doubling the edge pressure.
    let laps = iterations(2_000);
    let (req_tx, req_rx) = spsc::ring::<u64>(1);
    let (resp_tx, resp_rx) = spsc::ring::<u64>(1);
    let echo = std::thread::spawn(move || {
        while let Ok(v) = req_rx.recv() {
            if resp_tx.send(v.wrapping_mul(3)).is_err() {
                break;
            }
        }
    });
    for i in 0..laps {
        req_tx.send(i).unwrap();
        assert_eq!(resp_rx.recv(), Ok(i.wrapping_mul(3)), "lap {i}");
    }
    drop(req_tx);
    echo.join().unwrap();
    assert_eq!(resp_rx.recv(), Err(RecvError));
}

#[test]
#[ignore = "heavy drop-edge sweep; CI's ring-stress job runs it via --include-ignored"]
fn drop_edges_heavy() {
    // Same drop-path coverage as the default tests, at a round count
    // that makes rare interleavings (drop exactly between the parked
    // flag store and the condvar wait) overwhelmingly likely to occur.
    for round in 0..iterations(400) {
        let (tx, rx) = spsc::ring::<u64>(1);
        let producer = std::thread::spawn(move || {
            let mut i = 0u64;
            while tx.send(i).is_ok() {
                i += 1;
            }
            i
        });
        let mut schedule = Schedule::new(round + 1);
        let drain = schedule.next() % 5;
        for _ in 0..drain {
            let _ = rx.recv();
        }
        if schedule.next().is_multiple_of(2) {
            std::thread::yield_now();
        }
        drop(rx);
        let _ = producer.join().unwrap();
    }
}
