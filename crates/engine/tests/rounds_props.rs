//! Property tests for the rounds-mode determinism contract
//! ([`IngestMode::Rounds`]): over a single batch, the final global bin
//! vector and the [`BatchSummary`] are a pure function of *(batch
//! contents as a multiset, seed)* — invariant under arbitrary in-batch
//! op permutations, worker mode, propose-thread (producer) count, and
//! even shard count at a fixed global bin total.

use ba_engine::{Engine, EngineConfig, Op, WorkerMode};
use proptest::prelude::*;

/// Global bin total held constant while the shard axis varies.
const TOTAL_BINS: u64 = 1024;

/// Decodes a sampled `(key, kind)` pair into an op over a small
/// keyspace, so deletes and lookups hit live keys and batches carry
/// duplicate inserts of the same key.
fn decode_op(key: u64, kind: u8) -> Op {
    let key = key % 512;
    match kind % 5 {
        0..=2 => Op::Insert(key),
        3 => Op::Delete(key),
        _ => Op::Lookup(key),
    }
}

fn rounds_engine(
    shards: usize,
    workers: WorkerMode,
    producers: usize,
) -> Engine<ba_hash::AnyScheme> {
    let config = EngineConfig::new(shards, TOTAL_BINS / shards as u64, 3)
        .seed(2014)
        .workers(workers)
        .rounds_producers(producers);
    Engine::by_name("double", config).expect("known scheme")
}

/// The global per-bin load vector — the object the purity contract is
/// stated over (shard layout flattened away).
fn global_loads(engine: &Engine<ba_hash::AnyScheme>) -> Vec<u32> {
    engine
        .shards()
        .iter()
        .flat_map(|s| s.allocation().loads().iter().copied())
        .collect()
}

/// A deterministic permutation from the sampled `(rotation, reverse)`
/// pair — rotations compose with reversal to reach orders far from both
/// the original and sorted sequences.
fn permute(ops: &[Op], rotation: u64, reverse: bool) -> Vec<Op> {
    let mut out = ops.to_vec();
    if !out.is_empty() {
        let mid = (rotation % out.len() as u64) as usize;
        out.rotate_left(mid);
    }
    if reverse {
        out.reverse();
    }
    out
}

proptest! {
    /// One batch, every axis at once: a permuted stream served by
    /// engines at shard counts {1, 2, 8}, all three worker modes, and
    /// producer counts {1, 4} reproduces the (1-shard, sequential,
    /// 1-producer) baseline's global bin vector and summary exactly.
    #[test]
    fn placement_is_pure_in_the_batch_set_and_seed(
        encoded in proptest::collection::vec((any::<u64>(), any::<u8>()), 1..300),
        rotation in any::<u64>(),
        reverse in 0u8..2,
    ) {
        let ops: Vec<Op> = encoded.into_iter().map(|(k, kind)| decode_op(k, kind)).collect();
        let batch = ops.len(); // a single batch: in-batch order must not matter
        let mut reference = rounds_engine(1, WorkerMode::Sequential, 1);
        let baseline_summary = reference.serve(&ops, batch);
        let baseline = global_loads(&reference);
        prop_assert_eq!(baseline.len() as u64, TOTAL_BINS);

        let permuted = permute(&ops, rotation, reverse == 1);
        for (shards, workers, producers) in [
            (1, WorkerMode::Sequential, 4),
            (2, WorkerMode::Scoped, 1),
            (8, WorkerMode::Persistent, 4),
        ] {
            let mut engine = rounds_engine(shards, workers, producers);
            let summary = engine.serve(&permuted, batch);
            prop_assert_eq!(
                &summary,
                &baseline_summary,
                "summary diverged at {} shards / {:?} / {} producers",
                shards,
                workers,
                producers
            );
            prop_assert_eq!(
                global_loads(&engine),
                baseline.clone(),
                "global bin vector diverged at {} shards / {:?} / {} producers",
                shards,
                workers,
                producers
            );
        }
    }

    /// Consecutive batches are barriers, not a blender: the same stream
    /// cut at the same batch boundaries is reproducible whatever the
    /// in-batch order, even when deletes and lookups interleave with
    /// earlier batches' placements.
    #[test]
    fn multi_batch_streams_are_pure_per_batch(
        encoded in proptest::collection::vec((any::<u64>(), any::<u8>()), 2..240),
        rotation in any::<u64>(),
    ) {
        let ops: Vec<Op> = encoded.into_iter().map(|(k, kind)| decode_op(k, kind)).collect();
        let batch = (ops.len() / 2).max(1);
        let mut reference = rounds_engine(2, WorkerMode::Sequential, 1);
        let baseline_summary = reference.serve(&ops, batch);

        // Permute strictly *within* each batch-sized chunk (crossing a
        // boundary legitimately changes batch multisets).
        let mut permuted = ops.clone();
        for chunk in permuted.chunks_mut(batch) {
            let len = chunk.len() as u64;
            chunk.rotate_left((rotation % len) as usize);
        }
        let mut engine = rounds_engine(8, WorkerMode::Persistent, 4);
        let summary = engine.serve(&permuted, batch);
        prop_assert_eq!(summary, baseline_summary);
        prop_assert_eq!(global_loads(&engine), global_loads(&reference));
    }
}
