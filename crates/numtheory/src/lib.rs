//! Number-theoretic utilities for double hashing on arbitrary table sizes.
//!
//! Double hashing for a table of size `n` draws the stride `g(j)` uniformly
//! from the residues *coprime to n* so that the probe sequence
//! `f + k·g mod n` visits `n` distinct bins. The paper notes the two easy
//! cases — `n` prime (every nonzero residue works) and `n` a power of two
//! (every odd residue works) — but a production library must serve any `n`.
//! This crate provides the pieces:
//!
//! * [`gcd`], [`extended_gcd`], [`mod_inverse`] — basic modular arithmetic;
//! * [`mul_mod`], [`pow_mod`] — overflow-free 64-bit modular ops;
//! * [`is_prime`] — deterministic Miller–Rabin for all `u64`;
//! * [`next_prime`], [`prev_prime`] — prime search for choosing table sizes;
//! * [`factorize`], [`euler_totient`] — Pollard-rho factorization and φ(n),
//!   the count of valid double-hashing strides;
//! * [`CoprimeSampler`] — uniform sampling of residues coprime to `n`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ba_rng::Rng64;

/// Greatest common divisor (Euclid's algorithm).
///
/// `gcd(0, 0) == 0` by convention.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` with `g = gcd(a, b)` and `a·x + b·y = g` (over signed
/// 128-bit integers, so no overflow for any `u64` inputs).
pub fn extended_gcd(a: u64, b: u64) -> (u64, i128, i128) {
    let (mut old_r, mut r) = (a as i128, b as i128);
    let (mut old_x, mut x) = (1i128, 0i128);
    let (mut old_y, mut y) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_x, x) = (x, old_x - q * x);
        (old_y, y) = (y, old_y - q * y);
    }
    (old_r as u64, old_x, old_y)
}

/// Modular inverse of `a` modulo `m`, if it exists (i.e. `gcd(a, m) == 1`).
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    if m == 1 {
        return Some(0);
    }
    let (g, x, _) = extended_gcd(a % m, m);
    if g != 1 {
        return None;
    }
    Some((x.rem_euclid(m as i128)) as u64)
}

/// `(a * b) mod m` without overflow.
///
/// # Panics
///
/// Panics if `m == 0`.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `(a + b) mod m` without overflow.
///
/// # Panics
///
/// Panics if `m == 0`.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    ((a as u128 + b as u128) % m as u128) as u64
}

/// `a^e mod m` by square-and-multiply.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut result = 1u64;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            result = mul_mod(result, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    result
}

/// Deterministic Miller–Rabin primality test, correct for all `u64`.
///
/// Uses the seven-witness set {2, 325, 9375, 28178, 450775, 9780504,
/// 1795265022}, proven sufficient for n < 2^64 (Sinclair / Feitsma–Galway).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n - 1 = d · 2^s with d odd.
    let mut d = n - 1;
    let s = d.trailing_zeros();
    d >>= s;
    'witness: for a in [2u64, 325, 9375, 28178, 450775, 9780504, 1795265022] {
        let a = a % n;
        if a == 0 {
            continue;
        }
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Smallest prime `>= n` (`None` if the search would exceed `u64::MAX`).
pub fn next_prime(n: u64) -> Option<u64> {
    let mut c = n.max(2);
    loop {
        if is_prime(c) {
            return Some(c);
        }
        c = c.checked_add(1)?;
    }
}

/// Largest prime `<= n` (`None` if `n < 2`).
pub fn prev_prime(n: u64) -> Option<u64> {
    let mut c = n;
    loop {
        if c < 2 {
            return None;
        }
        if is_prime(c) {
            return Some(c);
        }
        c -= 1;
    }
}

/// Prime factorization of `n` as sorted `(prime, exponent)` pairs.
///
/// Trial division by small primes, then Pollard's rho for the remaining
/// cofactor. Handles all `u64` comfortably.
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    let mut factors: Vec<(u64, u32)> = Vec::new();
    if n <= 1 {
        return factors;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            let mut e = 0;
            while n.is_multiple_of(p) {
                n /= p;
                e += 1;
            }
            factors.push((p, e));
        }
    }
    // Recursively split the cofactor with Pollard rho.
    let mut stack = Vec::new();
    if n > 1 {
        stack.push(n);
    }
    let mut found: Vec<u64> = Vec::new();
    while let Some(m) = stack.pop() {
        if is_prime(m) {
            found.push(m);
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    found.sort_unstable();
    let mut i = 0;
    while i < found.len() {
        let p = found[i];
        let mut e = 0;
        while i < found.len() && found[i] == p {
            e += 1;
            i += 1;
        }
        factors.push((p, e));
    }
    factors.sort_unstable();
    factors
}

/// Pollard's rho (Floyd cycle detection). `n` must be composite and free of
/// the small primes stripped by [`factorize`].
fn pollard_rho(n: u64) -> u64 {
    debug_assert!(!is_prime(n) && n > 1);
    // Deterministic parameter walk: try c = 1, 2, ... until a factor drops.
    for c in 1u64.. {
        let f = |x: u64| add_mod(mul_mod(x, x, n), c, n);
        let (mut x, mut y, mut d) = (2u64, 2u64, 1u64);
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
    }
    unreachable!("pollard_rho exhausted parameter space")
}

/// Euler's totient φ(n): the number of residues in `[1, n)` coprime to `n` —
/// i.e. the number of valid double-hashing strides for table size `n`.
pub fn euler_totient(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut phi = n;
    for (p, _) in factorize(n) {
        phi = phi / p * (p - 1);
    }
    phi
}

/// Uniform sampler over residues in `[1, n)` coprime to `n`.
///
/// Strategy depends on the structure of `n`:
/// * `n` prime → draw uniform in `[1, n)` directly;
/// * `n` a power of two → draw a uniform odd residue directly;
/// * otherwise → rejection-sample against the distinct prime divisors of
///   `n`. The acceptance probability is `φ(n)/n = Ω(1/log log n)`, so
///   rejection terminates after O(1) expected draws.
#[derive(Debug, Clone)]
pub struct CoprimeSampler {
    n: u64,
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    /// n prime: all of [1, n) is coprime.
    Prime,
    /// n = 2^k: odd residues are coprime.
    PowerOfTwo,
    /// General n: rejection against the distinct prime divisors.
    Rejection { primes: Vec<u64> },
}

impl CoprimeSampler {
    /// Builds a sampler for modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no stride in `[1, n)` exists for n < 2).
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "coprime sampling needs modulus >= 2, got {n}");
        let kind = if is_prime(n) {
            SamplerKind::Prime
        } else if n.is_power_of_two() {
            SamplerKind::PowerOfTwo
        } else {
            SamplerKind::Rejection {
                primes: factorize(n).into_iter().map(|(p, _)| p).collect(),
            }
        };
        Self { n, kind }
    }

    /// The modulus.
    pub fn modulus(&self) -> u64 {
        self.n
    }

    /// Number of valid strides, φ(n).
    pub fn count(&self) -> u64 {
        match &self.kind {
            SamplerKind::Prime => self.n - 1,
            SamplerKind::PowerOfTwo => self.n / 2,
            SamplerKind::Rejection { .. } => euler_totient(self.n),
        }
    }

    /// Draws a uniform residue in `[1, n)` coprime to `n`.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        match &self.kind {
            SamplerKind::Prime => 1 + rng.gen_range(self.n - 1),
            SamplerKind::PowerOfTwo => {
                if self.n == 2 {
                    1
                } else {
                    // Uniform odd residue in [1, n): 2k+1 for k in [0, n/2).
                    2 * rng.gen_range(self.n / 2) + 1
                }
            }
            SamplerKind::Rejection { primes } => loop {
                let cand = 1 + rng.gen_range(self.n - 1);
                if primes.iter().all(|&p| !cand.is_multiple_of(p)) {
                    return cand;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(240u64, 46u64), (17, 13), (0, 7), (7, 0), (1 << 40, 3)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(g, gcd(a, b));
            assert_eq!(a as i128 * x + b as i128 * y, g as i128);
        }
    }

    #[test]
    fn mod_inverse_roundtrip() {
        let m = 1_000_003; // prime
        for a in [1u64, 2, 999, 1_000_002] {
            let inv = mod_inverse(a, m).unwrap();
            assert_eq!(mul_mod(a, inv, m), 1);
        }
        assert_eq!(mod_inverse(4, 8), None);
        assert_eq!(mod_inverse(3, 1), Some(0));
        assert_eq!(mod_inverse(3, 0), None);
    }

    #[test]
    fn mul_mod_no_overflow() {
        let big = u64::MAX - 58;
        assert_eq!(mul_mod(big - 1, big - 1, big), 1); // (-1)^2 ≡ 1
    }

    #[test]
    fn pow_mod_fermat_little() {
        let p = 1_000_000_007u64;
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(pow_mod(a, p - 1, p), 1);
        }
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(5, 3, 1), 0);
    }

    #[test]
    fn primality_small_values() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn primality_known_large() {
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(1_000_000_009));
        assert!(!is_prime(1_000_000_007u64.wrapping_mul(3)));
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime 2^61 - 1
        assert!(!is_prime(u64::MAX));
        assert!(is_prime(18_446_744_073_709_551_557)); // largest prime < 2^64
    }

    #[test]
    fn primality_strong_pseudoprimes() {
        // Strong pseudoprimes to base 2 must be rejected.
        for n in [2047u64, 3277, 4033, 4681, 8321, 15841, 29341] {
            assert!(!is_prime(n), "{n} is composite");
        }
        // Carmichael numbers.
        for n in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime(n), "{n} is a Carmichael number");
        }
    }

    #[test]
    fn prime_search() {
        assert_eq!(next_prime(0), Some(2));
        assert_eq!(next_prime(14), Some(17));
        assert_eq!(next_prime(17), Some(17));
        assert_eq!(next_prime(1 << 14), Some(16411));
        assert_eq!(prev_prime(1 << 14), Some(16381));
        assert_eq!(prev_prime(2), Some(2));
        assert_eq!(prev_prime(1), None);
        assert_eq!(next_prime(u64::MAX), None);
    }

    #[test]
    fn factorize_matches_reconstruction() {
        for n in [
            1u64,
            2,
            12,
            97,
            360,
            1 << 20,
            1_000_000_007,
            600_851_475_143,
        ] {
            let f = factorize(n);
            if n <= 1 {
                assert!(f.is_empty());
            } else {
                let prod: u64 = f.iter().map(|&(p, e)| p.pow(e)).product();
                assert_eq!(prod, n, "factors of {n}: {f:?}");
                for &(p, _) in &f {
                    assert!(is_prime(p), "non-prime factor {p} of {n}");
                }
            }
        }
    }

    #[test]
    fn factorize_semiprime() {
        // Product of two large primes exercises Pollard rho.
        let p = 1_000_000_007u64;
        let q = 998_244_353u64;
        let mut expected = vec![(q, 1), (p, 1)];
        expected.sort_unstable();
        assert_eq!(factorize(p * q), expected);
    }

    #[test]
    fn totient_known_values() {
        assert_eq!(euler_totient(0), 0);
        assert_eq!(euler_totient(1), 1);
        assert_eq!(euler_totient(2), 1);
        assert_eq!(euler_totient(9), 6);
        assert_eq!(euler_totient(10), 4);
        assert_eq!(euler_totient(1 << 14), 1 << 13);
        assert_eq!(euler_totient(97), 96);
        assert_eq!(euler_totient(360), 96);
    }

    #[test]
    fn totient_brute_force_agreement() {
        for n in 1u64..=300 {
            let brute = (1..=n).filter(|&k| gcd(k, n) == 1).count() as u64;
            assert_eq!(euler_totient(n), brute, "φ({n})");
        }
    }

    #[test]
    fn coprime_sampler_prime_modulus() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let s = CoprimeSampler::new(16411);
        assert_eq!(s.count(), 16410);
        for _ in 0..1000 {
            let g = s.sample(&mut rng);
            assert!((1..16411).contains(&g));
        }
    }

    #[test]
    fn coprime_sampler_power_of_two() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let s = CoprimeSampler::new(1 << 14);
        assert_eq!(s.count(), 1 << 13);
        for _ in 0..1000 {
            let g = s.sample(&mut rng);
            assert_eq!(g % 2, 1, "stride must be odd for power-of-two modulus");
            assert!(g < (1 << 14));
        }
    }

    #[test]
    fn coprime_sampler_modulus_two() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let s = CoprimeSampler::new(2);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn coprime_sampler_general_modulus() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let n = 360u64; // 2^3 · 3^2 · 5
        let s = CoprimeSampler::new(n);
        assert_eq!(s.count(), 96);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let g = s.sample(&mut rng);
            assert_eq!(gcd(g, n), 1, "sampled {g} not coprime to {n}");
            seen.insert(g);
        }
        // All 96 coprime residues should appear in 20k draws.
        assert_eq!(seen.len(), 96);
    }

    #[test]
    fn coprime_sampler_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let s = CoprimeSampler::new(15); // φ(15) = 8: {1,2,4,7,8,11,13,14}
        let mut counts = std::collections::HashMap::new();
        let n = 80_000;
        for _ in 0..n {
            *counts.entry(s.sample(&mut rng)).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 8);
        let expect = n as f64 / 8.0;
        for (&g, &c) in &counts {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "residue {g}: count {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "modulus >= 2")]
    fn coprime_sampler_rejects_tiny_modulus() {
        CoprimeSampler::new(1);
    }
}
