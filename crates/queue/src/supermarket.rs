//! The supermarket model simulator.

use crate::event::EventQueue;
use ba_hash::ChoiceScheme;
use ba_rng::{Exponential, Rng64};
use ba_stats::Welford;
use std::collections::VecDeque;

/// What happens next in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A new customer arrives (the next arrival is scheduled on pop).
    Arrival,
    /// The customer in service at this queue departs.
    Departure(u32),
}

/// Mean time-in-system statistics from one simulation run.
#[derive(Debug, Clone)]
pub struct SojournStats {
    sojourn: Welford,
    completed_total: u64,
    arrivals_total: u64,
}

impl SojournStats {
    /// Mean sojourn time over customers counted after burn-in.
    pub fn mean(&self) -> f64 {
        self.sojourn.mean()
    }

    /// Sample standard deviation of the counted sojourn times.
    pub fn std_dev(&self) -> f64 {
        self.sojourn.std_dev()
    }

    /// Number of counted (post-burn-in) completions.
    pub fn counted(&self) -> u64 {
        self.sojourn.count()
    }

    /// Total completions, including during burn-in.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Total arrivals over the run.
    pub fn arrivals_total(&self) -> u64 {
        self.arrivals_total
    }

    /// The underlying accumulator (for merging across trials).
    pub fn welford(&self) -> &Welford {
        &self.sojourn
    }
}

/// The supermarket model: `n` FIFO queues, Poisson(λn) arrivals,
/// exponential(1) service, join-the-shortest of the `d` queues offered by a
/// [`ChoiceScheme`].
///
/// The scheme's "bins" are queue indices, so passing
/// [`ba_hash::FullyRandom`] reproduces the classical model and
/// [`ba_hash::DoubleHashing`] the paper's variant.
#[derive(Debug, Clone)]
pub struct SupermarketSim<S> {
    scheme: S,
    lambda: f64,
}

impl<S: ChoiceScheme> SupermarketSim<S> {
    /// Creates the simulator. `lambda` is the per-queue arrival rate; the
    /// system is stable for `λ < 1`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < λ < 1`.
    pub fn new(scheme: S, lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda < 1.0,
            "per-queue arrival rate must satisfy 0 < λ < 1, got {lambda}"
        );
        Self { scheme, lambda }
    }

    /// The number of queues.
    pub fn n(&self) -> u64 {
        self.scheme.n()
    }

    /// The per-queue arrival rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Runs the simulation from an empty system until `horizon` (simulated
    /// seconds). Sojourn times are recorded for customers **arriving**
    /// after `burn_in`, matching the paper's Table 8 protocol ("recording
    /// the average time over all packets after time 1000").
    ///
    /// # Panics
    ///
    /// Panics if `burn_in >= horizon` or either is not finite/positive.
    pub fn run<R: Rng64>(&self, horizon: f64, burn_in: f64, rng: &mut R) -> SojournStats {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive and finite"
        );
        assert!(
            burn_in.is_finite() && burn_in >= 0.0 && burn_in < horizon,
            "burn-in must lie in [0, horizon)"
        );
        let n = self.scheme.n();
        let d = self.scheme.d();
        let arrival_gap = Exponential::new(self.lambda * n as f64);
        let service = Exponential::new(1.0);

        // Per-queue FIFO of arrival timestamps; head is in service.
        let mut queues: Vec<VecDeque<f64>> = (0..n).map(|_| VecDeque::new()).collect();
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut choices = vec![0u64; d];
        let mut stats = SojournStats {
            sojourn: Welford::new(),
            completed_total: 0,
            arrivals_total: 0,
        };

        events.push(arrival_gap.sample(rng), Event::Arrival);
        while let Some(ev) = events.pop() {
            let now = ev.time;
            if now > horizon {
                break;
            }
            match ev.event {
                Event::Arrival => {
                    stats.arrivals_total += 1;
                    // Schedule the next arrival first so that RNG
                    // consumption per event is fixed (aids reproducibility
                    // reasoning; not required for correctness).
                    events.push(now + arrival_gap.sample(rng), Event::Arrival);
                    self.scheme.fill_choices(rng, &mut choices);
                    // Join the shortest sampled queue; ties at random.
                    let mut best = choices[0];
                    let mut best_len = queues[best as usize].len();
                    let mut ties = 1u64;
                    for &c in &choices[1..] {
                        let len = queues[c as usize].len();
                        if len < best_len {
                            best = c;
                            best_len = len;
                            ties = 1;
                        } else if len == best_len {
                            ties += 1;
                            if rng.gen_range(ties) == 0 {
                                best = c;
                            }
                        }
                    }
                    let q = &mut queues[best as usize];
                    q.push_back(now);
                    if q.len() == 1 {
                        // Idle server: the customer enters service now.
                        events.push(now + service.sample(rng), Event::Departure(best as u32));
                    }
                }
                Event::Departure(qi) => {
                    let q = &mut queues[qi as usize];
                    let arrived = q
                        .pop_front()
                        .expect("departure from an empty queue is a scheduling bug");
                    stats.completed_total += 1;
                    if arrived >= burn_in {
                        stats.sojourn.push(now - arrived);
                    }
                    if !q.is_empty() {
                        events.push(now + service.sample(rng), Event::Departure(qi));
                    }
                }
            }
        }
        stats
    }

    /// Snapshot helper used by tests: runs to `horizon` and returns the
    /// final tail fractions `s_i` (fraction of queues with ≥ i customers)
    /// for `i = 1..=levels`.
    pub fn final_tail_fractions<R: Rng64>(
        &self,
        horizon: f64,
        levels: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        // Re-run internally, tracking queue lengths only at the end. To keep
        // one code path, reconstruct from the run by recording lengths: we
        // simulate again with the same structure but capture the state.
        // (The run itself is cheap relative to the analysis needs.)
        let n = self.scheme.n();
        let d = self.scheme.d();
        let arrival_gap = Exponential::new(self.lambda * n as f64);
        let service = Exponential::new(1.0);
        let mut lengths = vec![0u32; n as usize];
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut choices = vec![0u64; d];
        events.push(arrival_gap.sample(rng), Event::Arrival);
        while let Some(ev) = events.pop() {
            let now = ev.time;
            if now > horizon {
                break;
            }
            match ev.event {
                Event::Arrival => {
                    events.push(now + arrival_gap.sample(rng), Event::Arrival);
                    self.scheme.fill_choices(rng, &mut choices);
                    let mut best = choices[0];
                    let mut best_len = lengths[best as usize];
                    let mut ties = 1u64;
                    for &c in &choices[1..] {
                        let len = lengths[c as usize];
                        if len < best_len {
                            best = c;
                            best_len = len;
                            ties = 1;
                        } else if len == best_len {
                            ties += 1;
                            if rng.gen_range(ties) == 0 {
                                best = c;
                            }
                        }
                    }
                    lengths[best as usize] += 1;
                    if lengths[best as usize] == 1 {
                        events.push(now + service.sample(rng), Event::Departure(best as u32));
                    }
                }
                Event::Departure(qi) => {
                    lengths[qi as usize] -= 1;
                    if lengths[qi as usize] > 0 {
                        events.push(now + service.sample(rng), Event::Departure(qi));
                    }
                }
            }
        }
        (1..=levels)
            .map(|i| lengths.iter().filter(|&&l| l as usize >= i).count() as f64 / n as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fluid::SupermarketOde;
    use ba_hash::{DoubleHashing, FullyRandom, Replacement};
    use ba_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn conserves_customers() {
        let sim = SupermarketSim::new(FullyRandom::new(64, 2, Replacement::Without), 0.5);
        let stats = sim.run(200.0, 0.0, &mut rng(1));
        assert!(stats.arrivals_total() > 0);
        // Completions never exceed arrivals; most complete at λ = 0.5.
        assert!(stats.completed_total() <= stats.arrivals_total());
        assert!(stats.completed_total() as f64 >= 0.9 * stats.arrivals_total() as f64);
    }

    #[test]
    fn sojourn_exceeds_service_floor() {
        // Every sojourn includes at least the service time, so the mean must
        // exceed 1 (the mean service requirement).
        let sim = SupermarketSim::new(FullyRandom::new(128, 3, Replacement::Without), 0.7);
        let stats = sim.run(500.0, 100.0, &mut rng(2));
        assert!(stats.mean() > 1.0, "mean sojourn {}", stats.mean());
        assert!(stats.counted() > 1000);
    }

    #[test]
    fn matches_fluid_limit_d2() {
        // n = 1024 queues, λ = 0.7, d = 2: the mean sojourn should approach
        // the fluid prediction within a few percent.
        let n = 1u64 << 10;
        let sim = SupermarketSim::new(FullyRandom::new(n, 2, Replacement::Without), 0.7);
        let stats = sim.run(2_000.0, 500.0, &mut rng(3));
        let fluid = SupermarketOde::new(0.7, 2, 40).equilibrium_sojourn_time();
        let rel = (stats.mean() - fluid).abs() / fluid;
        assert!(
            rel < 0.05,
            "sim {} vs fluid {fluid} (rel {rel})",
            stats.mean()
        );
    }

    #[test]
    fn double_hashing_matches_fully_random() {
        // The paper's Table 8 claim at small scale: the two schemes' mean
        // sojourn times agree within a couple of percent.
        let n = 1u64 << 10;
        let lambda = 0.9;
        let fr = SupermarketSim::new(FullyRandom::new(n, 3, Replacement::Without), lambda).run(
            2_000.0,
            500.0,
            &mut rng(4),
        );
        let dh =
            SupermarketSim::new(DoubleHashing::new(n, 3), lambda).run(2_000.0, 500.0, &mut rng(5));
        let rel = (fr.mean() - dh.mean()).abs() / fr.mean();
        assert!(
            rel < 0.03,
            "random {} vs double {} (rel {rel})",
            fr.mean(),
            dh.mean()
        );
    }

    #[test]
    fn more_choices_shorter_sojourn() {
        let n = 1u64 << 9;
        let lambda = 0.9;
        let w2 = SupermarketSim::new(FullyRandom::new(n, 2, Replacement::Without), lambda)
            .run(1_500.0, 300.0, &mut rng(6))
            .mean();
        let w4 = SupermarketSim::new(FullyRandom::new(n, 4, Replacement::Without), lambda)
            .run(1_500.0, 300.0, &mut rng(7))
            .mean();
        assert!(w4 < w2, "w4 = {w4} should beat w2 = {w2}");
    }

    #[test]
    fn final_tails_close_to_equilibrium() {
        let n = 1u64 << 10;
        let sim = SupermarketSim::new(FullyRandom::new(n, 2, Replacement::Without), 0.8);
        let tails = sim.final_tail_fractions(1_000.0, 4, &mut rng(8));
        let eq = SupermarketOde::new(0.8, 2, 4).equilibrium_tails();
        for (i, (s, e)) in tails.iter().zip(&eq).enumerate() {
            assert!(
                (s - e).abs() < 0.05,
                "level {}: sim {s} vs equilibrium {e}",
                i + 1
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = SupermarketSim::new(DoubleHashing::new(64, 3), 0.6);
        let a = sim.run(100.0, 10.0, &mut rng(9));
        let b = sim.run(100.0, 10.0, &mut rng(9));
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.counted(), b.counted());
    }

    #[test]
    #[should_panic(expected = "0 < λ < 1")]
    fn rejects_unstable_lambda() {
        SupermarketSim::new(FullyRandom::new(8, 2, Replacement::Without), 1.2);
    }

    #[test]
    #[should_panic(expected = "burn-in")]
    fn rejects_burn_in_past_horizon() {
        let sim = SupermarketSim::new(FullyRandom::new(8, 2, Replacement::Without), 0.5);
        sim.run(10.0, 10.0, &mut rng(0));
    }
}
