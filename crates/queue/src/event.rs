//! A deterministic future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulation time.
///
/// Ordering is by time, then by insertion sequence — so two events at the
/// same instant fire in the order they were scheduled, making the whole
/// simulation deterministic for a fixed RNG stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent<E> {
    /// Simulation time at which the event fires.
    pub time: f64,
    /// Insertion sequence number (assigned by [`EventQueue::push`]).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: PartialEq> Eq for TimedEvent<E> {}

impl<E: PartialEq> PartialOrd for TimedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for TimedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timed events with FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E: PartialEq> {
    heap: BinaryHeap<TimedEvent<E>>,
    next_seq: u64,
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: PartialEq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(TimedEvent { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<TimedEvent<E>> {
        self.heap.pop()
    }

    /// The time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1u32);
        q.push(1.0, 2u32);
        q.push(1.0, 3u32);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.push(5.5, ());
        q.push(2.5, ());
        assert_eq!(q.peek_time(), Some(2.5));
        assert_eq!(q.pop().unwrap().time, 2.5);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(10.0, "late");
        q.push(1.0, "early");
        assert_eq!(q.pop().unwrap().event, "early");
        q.push(5.0, "middle");
        assert_eq!(q.pop().unwrap().event, "middle");
        assert_eq!(q.pop().unwrap().event, "late");
    }
}
