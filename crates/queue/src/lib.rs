//! Discrete-event simulation of the supermarket model.
//!
//! Table 8 of the paper runs the continuous variant of balanced allocation:
//! customers arrive as a Poisson process of rate `λn` to a bank of `n` FIFO
//! queues with exponential(1) service, each joining the shortest of `d`
//! sampled queues — where the `d` samples come from either fully random
//! hashing or double hashing. This crate is that simulator:
//!
//! * [`EventQueue`] — a deterministic binary-heap future-event list;
//! * [`SupermarketSim`] — the model itself, generic over
//!   [`ba_hash::ChoiceScheme`];
//! * [`SojournStats`] — mean time-in-system with burn-in, the quantity the
//!   paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod supermarket;

pub use event::{EventQueue, TimedEvent};
pub use supermarket::{SojournStats, SupermarketSim};
