//! Property tests for [`HistogramSketch`]: percentiles within one bin of
//! exact, and merge associativity/losslessness.

use ba_stats::HistogramSketch;
use proptest::collection::vec;
use proptest::prelude::*;

/// Exact nearest-rank percentile over a sorted sample — the oracle the
/// sketch is measured against.
fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    /// The headline accuracy contract: for arbitrary integer-valued
    /// observations and an arbitrary uniform bin width, every sketch
    /// percentile is within one bin width of the exact nearest-rank
    /// value.
    #[test]
    fn percentiles_within_one_bin_of_exact(
        raw in vec(0u32..400, 1..300),
        width in 1u32..16,
    ) {
        let width = f64::from(width);
        // Edges cover the full observed range so only the documented
        // bin-resolution error remains (no overflow truncation).
        let bins = (400.0 / width).ceil() as usize + 1;
        let mut sketch = HistogramSketch::uniform(0.0, width * bins as f64, bins);
        let mut values: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
        for &v in &values {
            sketch.record(v);
        }
        values.sort_by(f64::total_cmp);
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let exact = exact_percentile(&values, p);
            let approx = sketch.percentile(p);
            prop_assert!(
                (approx - exact).abs() <= width,
                "p{}: sketch {} vs exact {} exceeds bin width {}",
                p, approx, exact, width
            );
        }
        // Extrema and mean are tracked exactly, not at bin resolution.
        prop_assert_eq!(sketch.max(), *values.last().unwrap());
        prop_assert_eq!(sketch.min(), values[0]);
        prop_assert_eq!(sketch.count(), values.len() as u64);
    }

    /// Splitting a stream across two sketches and merging equals
    /// recording the whole stream into one — the cross-shard/cross-node
    /// aggregation contract.
    #[test]
    fn merge_is_lossless(
        raw in vec(0u32..200, 1..200),
        split in 0u32..100,
    ) {
        let mk = || HistogramSketch::log2_bins(9);
        let (mut whole, mut left, mut right) = (mk(), mk(), mk());
        let pivot = (raw.len() as u64 * u64::from(split) / 100) as usize;
        for (i, &v) in raw.iter().enumerate() {
            let v = f64::from(v);
            whole.record(v);
            if i < pivot {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        prop_assert_eq!(&left, &whole);
        for p in [0.0, 50.0, 99.0, 100.0] {
            prop_assert_eq!(left.percentile(p), whole.percentile(p));
        }
    }

    /// Unit-width integer bins make percentiles exact, not merely
    /// one-bin-close — the shape `OnlinePercentiles::to_sketch` uses.
    #[test]
    fn unit_bins_are_exact_on_integers(raw in vec(0u32..64, 1..200)) {
        let mut sketch = HistogramSketch::unit_bins(64);
        let mut values: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
        for &v in &values {
            sketch.record(v);
        }
        values.sort_by(f64::total_cmp);
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            prop_assert_eq!(sketch.percentile(p), exact_percentile(&values, p));
        }
    }
}
