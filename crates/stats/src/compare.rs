//! Two-sample comparison tests.
//!
//! The paper's claim is *negative*: double hashing and fully random hashing
//! are statistically indistinguishable. To make that claim checkable by the
//! harness (and by CI), we compute standard test statistics and assert they
//! stay below detection thresholds.

/// Two-proportion z-statistic.
///
/// Given `x1` successes of `n1` and `x2` of `n2`, returns the pooled
/// z-statistic for the null hypothesis that both proportions are equal.
/// |z| < 1.96 means the difference is within 95% sampling noise.
///
/// Returns 0 when a variance of 0 makes the statistic undefined (both
/// proportions 0 or both 1 — identical by construction).
///
/// # Panics
///
/// Panics if `x1 > n1`, `x2 > n2`, or either sample is empty.
pub fn two_proportion_z(x1: u64, n1: u64, x2: u64, n2: u64) -> f64 {
    assert!(n1 > 0 && n2 > 0, "samples must be non-empty");
    assert!(x1 <= n1 && x2 <= n2, "successes cannot exceed sample size");
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    let var = pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64);
    if var <= 0.0 {
        return 0.0;
    }
    (p1 - p2) / var.sqrt()
}

/// Pearson chi-square statistic between two count vectors over the same
/// categories (homogeneity test with pooled expectation).
///
/// Categories where both samples have zero counts contribute nothing.
/// Degrees of freedom for interpretation: (non-empty categories − 1).
///
/// # Panics
///
/// Panics if the vectors differ in length or either sums to zero.
pub fn chi_square_statistic(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "count vectors must align");
    let ta: u64 = a.iter().sum();
    let tb: u64 = b.iter().sum();
    assert!(ta > 0 && tb > 0, "both samples must be non-empty");
    let (ta, tb) = (ta as f64, tb as f64);
    let grand = ta + tb;
    let mut chi2 = 0.0;
    for (&ca, &cb) in a.iter().zip(b) {
        let row = (ca + cb) as f64;
        if row == 0.0 {
            continue;
        }
        let ea = row * ta / grand;
        let eb = row * tb / grand;
        let da = ca as f64 - ea;
        let db = cb as f64 - eb;
        chi2 += da * da / ea + db * db / eb;
    }
    chi2
}

/// Welch's t-statistic for two samples with unequal variances.
///
/// Returns `(t, degrees_of_freedom)` using the Welch–Satterthwaite
/// approximation. Suitable for comparing mean sojourn times (Table 8).
///
/// Returns `(0, large)` when both variances are zero and the means are
/// equal; `(inf, ...)` when variances are zero but means differ.
///
/// # Panics
///
/// Panics if either sample has fewer than 2 observations.
pub fn welch_t(mean1: f64, var1: f64, n1: u64, mean2: f64, var2: f64, n2: u64) -> (f64, f64) {
    assert!(
        n1 >= 2 && n2 >= 2,
        "Welch's t needs at least 2 observations"
    );
    let s1 = var1 / n1 as f64;
    let s2 = var2 / n2 as f64;
    let se2 = s1 + s2;
    if se2 == 0.0 {
        return if mean1 == mean2 {
            (0.0, f64::INFINITY)
        } else {
            (f64::INFINITY, f64::INFINITY)
        };
    }
    let t = (mean1 - mean2) / se2.sqrt();
    let df = se2 * se2 / (s1 * s1 / (n1 as f64 - 1.0) + s2 * s2 / (n2 as f64 - 1.0));
    (t, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_zero_for_identical_proportions() {
        assert_eq!(two_proportion_z(50, 100, 500, 1000), 0.0);
    }

    #[test]
    fn z_zero_when_degenerate() {
        assert_eq!(two_proportion_z(0, 100, 0, 100), 0.0);
        assert_eq!(two_proportion_z(100, 100, 100, 100), 0.0);
    }

    #[test]
    fn z_known_value() {
        // p1 = 0.6 (60/100), p2 = 0.5 (50/100); pooled = 0.55.
        // se = sqrt(0.55·0.45·(0.01+0.01)) ≈ 0.070356; z ≈ 1.4213.
        let z = two_proportion_z(60, 100, 50, 100);
        assert!((z - 1.4213).abs() < 1e-3, "z = {z}");
    }

    #[test]
    fn z_sign_reflects_direction() {
        assert!(two_proportion_z(70, 100, 50, 100) > 0.0);
        assert!(two_proportion_z(30, 100, 50, 100) < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn z_rejects_empty_sample() {
        two_proportion_z(0, 0, 1, 10);
    }

    #[test]
    fn chi_square_zero_for_proportional_samples() {
        let a = [10u64, 20, 30];
        let b = [100u64, 200, 300];
        assert!(chi_square_statistic(&a, &b) < 1e-12);
    }

    #[test]
    fn chi_square_positive_for_differing_samples() {
        let a = [10u64, 90];
        let b = [90u64, 10];
        let chi2 = chi_square_statistic(&a, &b);
        // Strongly significant: expected ~64 per cell deviation.
        assert!(chi2 > 50.0, "chi2 = {chi2}");
    }

    #[test]
    fn chi_square_ignores_jointly_empty_categories() {
        let a = [10u64, 0, 20];
        let b = [12u64, 0, 18];
        let chi2 = chi_square_statistic(&a, &b);
        assert!(chi2.is_finite());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn chi_square_rejects_mismatched_lengths() {
        chi_square_statistic(&[1, 2], &[1, 2, 3]);
    }

    #[test]
    fn welch_t_zero_for_equal_means() {
        let (t, df) = welch_t(5.0, 1.0, 100, 5.0, 1.0, 100);
        assert_eq!(t, 0.0);
        assert!(df > 100.0);
    }

    #[test]
    fn welch_t_known_direction_and_scale() {
        // Means differ by 1, se = sqrt(1/100 + 1/100) ≈ 0.1414 → t ≈ 7.07.
        let (t, _) = welch_t(6.0, 1.0, 100, 5.0, 1.0, 100);
        assert!((t - 7.071).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn welch_t_degenerate_variances() {
        let (t, _) = welch_t(5.0, 0.0, 10, 5.0, 0.0, 10);
        assert_eq!(t, 0.0);
        let (t, _) = welch_t(6.0, 0.0, 10, 5.0, 0.0, 10);
        assert!(t.is_infinite());
    }
}
