//! Load histograms and cross-trial aggregation.

use crate::Welford;

/// Counts of bins at each integer load for a single trial.
///
/// Index `i` holds the number of bins containing exactly `i` balls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadHistogram {
    counts: Vec<u64>,
}

impl LoadHistogram {
    /// Builds a histogram from per-bin loads.
    pub fn from_loads(loads: &[u32]) -> Self {
        let max = loads.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u64; max + 1];
        for &l in loads {
            counts[l as usize] += 1;
        }
        Self { counts }
    }

    /// Builds a histogram directly from counts (index = load).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Number of bins with load exactly `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Number of bins with load at least `i` (the tail the fluid limit
    /// tracks as `X_i`).
    pub fn tail_count(&self, i: usize) -> u64 {
        if i >= self.counts.len() {
            return 0;
        }
        self.counts[i..].iter().sum()
    }

    /// Total number of bins.
    pub fn total_bins(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total number of balls (Σ i · count(i)).
    pub fn total_balls(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum()
    }

    /// The maximum load (0 for an empty histogram).
    pub fn max_load(&self) -> u32 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i as u32)
            .unwrap_or(0)
    }

    /// Fraction of bins with load exactly `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total_bins();
        if total == 0 {
            0.0
        } else {
            self.count(i) as f64 / total as f64
        }
    }

    /// Fraction of bins with load at least `i`.
    pub fn tail_fraction(&self, i: usize) -> f64 {
        let total = self.total_bins();
        if total == 0 {
            0.0
        } else {
            self.tail_count(i) as f64 / total as f64
        }
    }

    /// The raw count vector (index = load).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Highest load index stored (length of the count vector).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the histogram has no bins at all.
    pub fn is_empty(&self) -> bool {
        self.total_bins() == 0
    }
}

/// Per-load summary across trials: min/avg/max/stddev of the bin count,
/// exactly the columns of the paper's Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSummary {
    /// The load value this row describes.
    pub load: u32,
    /// Minimum count over trials.
    pub min: f64,
    /// Mean count over trials.
    pub avg: f64,
    /// Maximum count over trials.
    pub max: f64,
    /// Sample standard deviation over trials.
    pub std_dev: f64,
}

/// Aggregates load histograms across independent trials.
///
/// Tracks, for every load value, a [`Welford`] accumulator of the per-trial
/// bin count, plus the distribution of per-trial maximum loads — enough to
/// regenerate every load-distribution table in the paper.
#[derive(Debug, Clone, Default)]
pub struct TrialAccumulator {
    per_load: Vec<Welford>,
    max_load_counts: Vec<u64>,
    trials: u64,
    bins_per_trial: u64,
}

impl TrialAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one trial's histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histogram's bin count differs from previous trials
    /// (mixed-size trials indicate a harness bug).
    pub fn push(&mut self, hist: &LoadHistogram) {
        let bins = hist.total_bins();
        if self.trials == 0 {
            self.bins_per_trial = bins;
        } else {
            assert_eq!(
                bins, self.bins_per_trial,
                "all trials must use the same number of bins"
            );
        }
        if hist.len() > self.per_load.len() {
            // New load levels were never observed before: every earlier
            // trial contributed a count of 0 at those levels.
            self.per_load.resize(hist.len(), zero_welford(self.trials));
        }
        for (load, acc) in self.per_load.iter_mut().enumerate() {
            acc.push(hist.count(load) as f64);
        }
        let max = hist.max_load() as usize;
        if max >= self.max_load_counts.len() {
            self.max_load_counts.resize(max + 1, 0);
        }
        self.max_load_counts[max] += 1;
        self.trials += 1;
    }

    /// Merges another accumulator (for parallel trial runners).
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators ran different bin counts.
    pub fn merge(&mut self, other: &TrialAccumulator) {
        if other.trials == 0 {
            return;
        }
        if self.trials == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.bins_per_trial, other.bins_per_trial,
            "cannot merge accumulators with different bin counts"
        );
        // Align lengths. A trial in which no bin reached load L contributes
        // count 0 for L, so pad shorter accumulators with zero observations.
        let len = self.per_load.len().max(other.per_load.len());
        self.per_load.resize(len, zero_welford(self.trials));
        let mut other_load = other.per_load.clone();
        other_load.resize(len, zero_welford(other.trials));
        for (mine, theirs) in self.per_load.iter_mut().zip(&other_load) {
            mine.merge(theirs);
        }
        if other.max_load_counts.len() > self.max_load_counts.len() {
            self.max_load_counts.resize(other.max_load_counts.len(), 0);
        }
        for (i, &c) in other.max_load_counts.iter().enumerate() {
            self.max_load_counts[i] += c;
        }
        self.trials += other.trials;
    }

    /// Number of trials aggregated.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of bins per trial.
    pub fn bins_per_trial(&self) -> u64 {
        self.bins_per_trial
    }

    /// Mean fraction of bins with load exactly `i`, averaged over trials —
    /// the numbers in the paper's Tables 1, 3, 6, 7.
    pub fn mean_fraction(&self, load: usize) -> f64 {
        if self.trials == 0 || self.bins_per_trial == 0 {
            return 0.0;
        }
        self.per_load
            .get(load)
            .map(|w| w.mean() / self.bins_per_trial as f64)
            .unwrap_or(0.0)
    }

    /// Mean fraction of bins with load at least `i` (Table 2's tail form).
    pub fn mean_tail_fraction(&self, load: usize) -> f64 {
        (load..self.per_load.len().max(load))
            .map(|l| self.mean_fraction(l))
            .sum()
    }

    /// Fraction of trials whose maximum load was exactly `m` (Table 4).
    pub fn max_load_fraction(&self, m: usize) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.max_load_counts.get(m).copied().unwrap_or(0) as f64 / self.trials as f64
    }

    /// Fraction of trials whose maximum load was at least `m`.
    pub fn max_load_tail_fraction(&self, m: usize) -> f64 {
        if self.trials == 0 || m >= self.max_load_counts.len() {
            return 0.0;
        }
        self.max_load_counts[m..].iter().sum::<u64>() as f64 / self.trials as f64
    }

    /// Largest load observed in any trial.
    pub fn overall_max_load(&self) -> u32 {
        self.max_load_counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i as u32)
            .unwrap_or(0)
    }

    /// Per-load min/avg/max/stddev rows (Table 5), for loads `0..len`.
    pub fn summaries(&self) -> Vec<LoadSummary> {
        self.per_load
            .iter()
            .enumerate()
            .map(|(load, w)| LoadSummary {
                load: load as u32,
                min: w.min(),
                avg: w.mean(),
                max: w.max(),
                std_dev: w.std_dev(),
            })
            .collect()
    }

    /// The per-load Welford accumulators (index = load).
    pub fn per_load(&self) -> &[Welford] {
        &self.per_load
    }
}

/// A Welford accumulator representing `trials` observations of exactly 0 —
/// what a load level that never appeared in any of those trials looks like.
fn zero_welford(trials: u64) -> Welford {
    let mut w = Welford::new();
    for _ in 0..trials {
        w.push(0.0);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_from_loads() {
        let h = LoadHistogram::from_loads(&[0, 1, 1, 2, 0, 0]);
        assert_eq!(h.count(0), 3);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.total_bins(), 6);
        assert_eq!(h.total_balls(), 4);
        assert_eq!(h.max_load(), 2);
    }

    #[test]
    fn histogram_tail_counts() {
        let h = LoadHistogram::from_loads(&[0, 1, 1, 2, 3]);
        assert_eq!(h.tail_count(0), 5);
        assert_eq!(h.tail_count(1), 4);
        assert_eq!(h.tail_count(2), 2);
        assert_eq!(h.tail_count(3), 1);
        assert_eq!(h.tail_count(4), 0);
        assert_eq!(h.tail_count(100), 0);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let h = LoadHistogram::from_loads(&[0, 0, 1, 2, 2, 2, 5]);
        let total: f64 = (0..=5).map(|i| h.fraction(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = LoadHistogram::from_loads(&[]);
        assert!(h.is_empty());
        assert_eq!(h.max_load(), 0);
        assert_eq!(h.fraction(0), 0.0);
        assert_eq!(h.tail_fraction(3), 0.0);
    }

    #[test]
    fn accumulator_mean_fraction() {
        let mut acc = TrialAccumulator::new();
        acc.push(&LoadHistogram::from_loads(&[0, 1, 1, 2])); // 1/4 at load 0
        acc.push(&LoadHistogram::from_loads(&[0, 0, 1, 1])); // 2/4 at load 0
        assert_eq!(acc.trials(), 2);
        assert_eq!(acc.bins_per_trial(), 4);
        assert!((acc.mean_fraction(0) - 0.375).abs() < 1e-12);
        assert!((acc.mean_fraction(1) - 0.5).abs() < 1e-12);
        assert!((acc.mean_fraction(2) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn accumulator_tail_fraction_consistent() {
        let mut acc = TrialAccumulator::new();
        acc.push(&LoadHistogram::from_loads(&[0, 1, 2, 2]));
        let sum_parts = acc.mean_fraction(1) + acc.mean_fraction(2);
        assert!((acc.mean_tail_fraction(1) - sum_parts).abs() < 1e-12);
    }

    #[test]
    fn accumulator_max_load_fractions() {
        let mut acc = TrialAccumulator::new();
        acc.push(&LoadHistogram::from_loads(&[1, 1, 2])); // max 2
        acc.push(&LoadHistogram::from_loads(&[1, 3, 0])); // max 3
        acc.push(&LoadHistogram::from_loads(&[2, 1, 1])); // max 2
        assert!((acc.max_load_fraction(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.max_load_fraction(3) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(acc.max_load_fraction(1), 0.0);
        assert!((acc.max_load_tail_fraction(2) - 1.0).abs() < 1e-12);
        assert!((acc.max_load_tail_fraction(3) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(acc.overall_max_load(), 3);
    }

    #[test]
    fn merge_equals_sequential_pushes() {
        let h1 = LoadHistogram::from_loads(&[0, 1, 1, 2]);
        let h2 = LoadHistogram::from_loads(&[3, 0, 1, 0]);
        let h3 = LoadHistogram::from_loads(&[1, 1, 1, 1]);

        let mut seq = TrialAccumulator::new();
        seq.push(&h1);
        seq.push(&h2);
        seq.push(&h3);

        let mut a = TrialAccumulator::new();
        a.push(&h1);
        let mut b = TrialAccumulator::new();
        b.push(&h2);
        b.push(&h3);
        a.merge(&b);

        assert_eq!(a.trials(), seq.trials());
        for load in 0..4 {
            assert!(
                (a.mean_fraction(load) - seq.mean_fraction(load)).abs() < 1e-12,
                "load {load}"
            );
            let (sa, ss) = (&a.per_load()[load], &seq.per_load()[load]);
            assert!((sa.std_dev() - ss.std_dev()).abs() < 1e-9, "load {load}");
        }
        for m in 0..4 {
            assert_eq!(a.max_load_fraction(m), seq.max_load_fraction(m));
        }
    }

    #[test]
    fn merge_pads_missing_high_loads_with_zeros() {
        // First accumulator saw a load-5 bin; second never did. After the
        // merge, the load-5 Welford must count the second's trials as zeros.
        let mut a = TrialAccumulator::new();
        a.push(&LoadHistogram::from_counts(vec![1, 0, 0, 0, 0, 1]));
        let mut b = TrialAccumulator::new();
        b.push(&LoadHistogram::from_counts(vec![1, 1]));
        b.push(&LoadHistogram::from_counts(vec![2, 0]));
        a.merge(&b);
        assert_eq!(a.per_load()[5].count(), 3);
        assert!((a.mean_fraction(5) - (1.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn summaries_match_table5_shape() {
        let mut acc = TrialAccumulator::new();
        acc.push(&LoadHistogram::from_loads(&[0, 1, 1, 2]));
        acc.push(&LoadHistogram::from_loads(&[1, 1, 1, 1]));
        let rows = acc.summaries();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].load, 1);
        assert_eq!(rows[1].min, 2.0);
        assert_eq!(rows[1].max, 4.0);
        assert!((rows[1].avg - 3.0).abs() < 1e-12);
        assert!(rows[1].std_dev > 0.0);
    }

    #[test]
    #[should_panic(expected = "same number of bins")]
    fn mismatched_bin_counts_rejected() {
        let mut acc = TrialAccumulator::new();
        acc.push(&LoadHistogram::from_loads(&[0, 1]));
        acc.push(&LoadHistogram::from_loads(&[0, 1, 2]));
    }
}
