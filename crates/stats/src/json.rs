//! Minimal JSON serialization shared by the bench trajectory files and
//! the engine's metrics exporter.
//!
//! The workspace takes no serialization dependency, and two subsystems
//! emit machine-read JSON: `ba-bench`'s `BENCH_*.json` perf-trajectory
//! documents and `ba-engine`'s JSON-lines metrics exporter. Hand-rolling
//! both invites the two escaping/formatting paths to drift, so this
//! module is the single writer they share: a tiny order-preserving
//! [`JsonObject`] builder plus the [`escape_json`]/[`f64_token`]
//! primitives it is built from.

use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Handles the two mandatory escapes (`"` and `\`), the named
/// control escapes, and `\u00XX` for the remaining control bytes.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number token. JSON has no NaN/Infinity, so
/// non-finite values render as `null` — a visibly absent measurement
/// beats a document no parser accepts.
pub fn f64_token(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// An order-preserving JSON object builder with one formatting
/// convention: `"key": value` pairs joined by `", "`.
///
/// The builder is consuming (`field_*` methods take and return `self`)
/// so objects compose as chains, and [`JsonObject::field_raw`] nests
/// pre-rendered objects/arrays without re-escaping.
///
/// # Example
///
/// ```
/// use ba_stats::json::JsonObject;
///
/// let line = JsonObject::new()
///     .field_str("scenario", "zipf")
///     .field_u64("ops", 1024)
///     .field_bool("identical", true)
///     .finish();
/// assert_eq!(line, r#"{"scenario": "zipf", "ops": 1024, "identical": true}"#);
/// ```
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push_str(", ");
        }
        self.empty = false;
        let _ = write!(self.buf, "\"{}\": ", escape_json(key));
    }

    /// Appends a string field (value escaped and quoted).
    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape_json(value));
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a signed integer field.
    pub fn field_i64(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float field (non-finite values render as `null`, see
    /// [`f64_token`]).
    pub fn field_f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&f64_token(value));
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-rendered JSON value verbatim — the nesting hook for
    /// sub-objects, arrays, and `null`. The caller vouches that `raw` is
    /// itself valid JSON.
    pub fn field_raw(mut self, key: &str, raw: &str) -> Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape_json(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(escape_json("\u{01}"), "\\u0001");
        assert_eq!(escape_json("plain ünïcode"), "plain ünïcode");
    }

    #[test]
    fn numbers_render_as_json_tokens() {
        assert_eq!(f64_token(1.5), "1.5");
        assert_eq!(f64_token(3.0), "3");
        assert_eq!(f64_token(f64::NAN), "null");
        assert_eq!(f64_token(f64::INFINITY), "null");
    }

    #[test]
    fn object_builder_preserves_order_and_nests() {
        let inner = JsonObject::new().field_u64("n", 3).finish();
        let outer = JsonObject::new()
            .field_str("name", "x")
            .field_f64("rate", 2.5)
            .field_i64("delta", -4)
            .field_raw("stats", &inner)
            .field_raw("depth", "null")
            .finish();
        assert_eq!(
            outer,
            r#"{"name": "x", "rate": 2.5, "delta": -4, "stats": {"n": 3}, "depth": null}"#
        );
    }

    #[test]
    fn empty_object_renders() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonObject::default().finish(), "{}");
    }

    #[test]
    fn keys_are_escaped_too() {
        let text = JsonObject::new().field_u64("a\"b", 1).finish();
        assert_eq!(text, "{\"a\\\"b\": 1}");
    }
}
