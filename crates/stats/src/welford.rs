//! Welford's online algorithm for mean and variance.

/// Numerically stable streaming accumulator for mean, variance, min, max.
///
/// Welford's update avoids the catastrophic cancellation of the naive
/// sum-of-squares formula, which matters when aggregating ~10⁴ trials whose
/// per-load counts differ only in the fourth decimal place — precisely the
/// regime of the paper's tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel-friendly,
    /// Chan et al. combination formula).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The unbiased sample variance (needs ≥ 2 observations; otherwise 0).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The population variance (divides by n; 0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// The minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// A symmetric normal-approximation confidence half-width at the given
    /// z-score (1.96 ≈ 95%).
    pub fn ci_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.population_variance() - 4.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn single_observation_zero_variance() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 42.0);
        assert_eq!(w.max(), 42.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..333] {
            left.push(x);
        }
        for &x in &data[333..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        let snapshot = w.clone();
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);

        let mut empty = Welford::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Data with a huge common offset: naive sum-of-squares would lose
        // all precision; Welford keeps the variance accurate.
        let mut w = Welford::new();
        let offset = 1e12;
        for x in [offset + 1.0, offset + 2.0, offset + 3.0] {
            w.push(x);
        }
        assert!((w.variance() - 1.0).abs() < 1e-6, "var {}", w.variance());
    }

    #[test]
    fn ci_half_width_scales_with_z() {
        let mut w = Welford::new();
        for i in 0..100 {
            w.push(i as f64);
        }
        let half_95 = w.ci_half_width(1.96);
        let half_99 = w.ci_half_width(2.58);
        assert!(half_99 > half_95);
        assert!(half_95 > 0.0);
    }
}
