//! Whole-distribution comparisons: Kolmogorov–Smirnov and quantiles.
//!
//! The sojourn-time experiments (Table 8) compare *means*; a stronger
//! check — used in the integration tests — is that the entire sojourn-time
//! distributions under fully random and double hashing coincide. The
//! two-sample KS statistic provides that, with `ks_critical_value` giving
//! the rejection threshold.

/// The two-sample Kolmogorov–Smirnov statistic: the maximum absolute
/// difference between the two empirical CDFs.
///
/// Inputs are sorted internally (hence `&mut`). NaNs are rejected.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
pub fn ks_statistic(a: &mut [f64], b: &mut [f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    assert!(
        a.iter().chain(b.iter()).all(|x| !x.is_nan()),
        "samples must not contain NaN"
    );
    a.sort_unstable_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    b.sort_unstable_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d_max = 0.0f64;
    while i < a.len() && j < b.len() {
        // Step past the next observation value in *both* samples, so ties
        // contribute a single CDF evaluation point.
        let t = if a[i] < b[j] { a[i] } else { b[j] };
        while i < a.len() && a[i] <= t {
            i += 1;
        }
        while j < b.len() && b[j] <= t {
            j += 1;
        }
        let d = (i as f64 / na - j as f64 / nb).abs();
        d_max = d_max.max(d);
    }
    d_max
}

/// Approximate critical value for the two-sample KS test at significance
/// `alpha` (e.g. 0.05): `c(α) · sqrt((n+m)/(n·m))` with
/// `c(α) = sqrt(−ln(α/2)/2)`.
///
/// # Panics
///
/// Panics unless `0 < alpha < 1` and both sizes are positive.
pub fn ks_critical_value(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    assert!(n > 0 && m > 0, "sample sizes must be positive");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / (n as f64 * m as f64)).sqrt()
}

/// The `q`-quantile of `sorted` (ascending) by linear interpolation
/// (type-7, the R/NumPy default).
///
/// # Panics
///
/// Panics if `sorted` is empty, unsorted, or `q` outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "need at least one observation");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_zero_for_identical_samples() {
        let mut a = vec![1.0, 2.0, 3.0, 4.0];
        let mut b = a.clone();
        assert_eq!(ks_statistic(&mut a, &mut b), 0.0);
    }

    #[test]
    fn ks_one_for_disjoint_supports() {
        let mut a = vec![0.0, 1.0, 2.0];
        let mut b = vec![10.0, 11.0, 12.0];
        assert_eq!(ks_statistic(&mut a, &mut b), 1.0);
    }

    #[test]
    fn ks_known_half_shift() {
        // a = {0..n}, b = a + large shift on half the mass.
        let mut a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut b: Vec<f64> = (0..100).map(|i| i as f64 + 50.0).collect();
        let d = ks_statistic(&mut a, &mut b);
        assert!((d - 0.5).abs() < 0.02, "d = {d}");
    }

    #[test]
    fn ks_detects_scale_difference() {
        use ba_rng_for_tests::*;
        let mut a: Vec<f64> = sample_uniform(2000, 1, 1.0);
        let mut b: Vec<f64> = sample_uniform(2000, 2, 2.0);
        let d = ks_statistic(&mut a, &mut b);
        assert!(d > ks_critical_value(2000, 2000, 0.01), "d = {d}");
    }

    #[test]
    fn ks_accepts_same_distribution() {
        use ba_rng_for_tests::*;
        let mut a: Vec<f64> = sample_uniform(2000, 3, 1.0);
        let mut b: Vec<f64> = sample_uniform(2000, 4, 1.0);
        let d = ks_statistic(&mut a, &mut b);
        assert!(
            d < ks_critical_value(2000, 2000, 0.001),
            "false alarm: d = {d}"
        );
    }

    /// Tiny local LCG so ba-stats stays dependency-free even in tests.
    mod ba_rng_for_tests {
        pub fn sample_uniform(n: usize, seed: u64, scale: f64) -> Vec<f64> {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    scale * (state >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect()
        }
    }

    #[test]
    fn critical_value_shrinks_with_n() {
        assert!(ks_critical_value(100, 100, 0.05) > ks_critical_value(10_000, 10_000, 0.05));
        assert!(ks_critical_value(100, 100, 0.01) > ks_critical_value(100, 100, 0.05));
    }

    #[test]
    fn quantile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 0.25), 2.0);
        // Interpolated point.
        assert!((quantile(&v, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ks_empty_panics() {
        ks_statistic(&mut [], &mut [1.0]);
    }
}
