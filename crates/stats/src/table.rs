//! Plain-text table rendering for the experiment harness.
//!
//! The harness prints tables shaped like the paper's (load column followed
//! by one column per scheme). This is a tiny fixed-width renderer — no
//! external dependency is warranted for right-aligned monospace columns.

use std::fmt::Write as _;

/// A simple fixed-width text table.
///
/// ```
/// use ba_stats::Table;
///
/// let mut t = Table::new(&["Load", "Fully Random", "Double Hashing"]);
/// t.row(&["0", "0.17693", "0.17691"]);
/// t.row(&["1", "0.64664", "0.64670"]);
/// let rendered = t.render();
/// assert!(rendered.contains("Fully Random"));
/// assert!(rendered.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with right-aligned columns and a header rule.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a fraction the way the paper prints it: five decimal places for
/// ordinary magnitudes, scientific notation with two decimals below 1e-4,
/// and a bare `0` for exact zero.
pub fn format_fraction(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() < 1e-4 {
        format!("{x:.2e}")
    } else {
        format!("{x:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["123456", "1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[2].ends_with("   1"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["x", "y"]);
        let r = t.render();
        assert_eq!(r.lines().count(), 2);
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["a"]);
        t.row_owned(vec!["v".to_string()]);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn format_fraction_modes() {
        assert_eq!(format_fraction(0.0), "0");
        assert_eq!(format_fraction(0.17693), "0.17693");
        assert_eq!(format_fraction(2.25e-5), "2.25e-5");
        assert_eq!(format_fraction(0.00051), "0.00051");
    }
}
