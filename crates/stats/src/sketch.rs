//! A mergeable bounded-memory quantile summary: the fixed-bin histogram
//! accumulator.
//!
//! The exact per-value trackers in `ba-engine` (`OnlinePercentiles`) cost
//! `O(observed range)` memory and only merge when both sides enumerate
//! the same value domain. For an indefinitely-running server — and for
//! cross-process aggregation — telemetry needs a summary whose memory is
//! fixed at construction and whose `merge` is a vector add. This module
//! provides exactly that: a histogram over *configurable bin edges* that
//! records `f64` observations, merges losslessly with any same-shaped
//! sketch, and answers percentile queries with a documented resolution
//! bound of **one bin width**.

use std::fmt;

/// A mergeable fixed-bin histogram accumulator over `f64` observations.
///
/// Construction fixes a strictly ascending sequence of *upper* bin edges
/// `e_0 < e_1 < … < e_{k-1}`; an observation `v` lands in the first bin
/// whose edge satisfies `v <= e_i` (so bin `i` covers `(e_{i-1}, e_i]`,
/// with bin 0 covering `(-inf, e_0]`). Values above the last edge land in
/// a dedicated overflow bin. Alongside the bins the sketch tracks exact
/// `count`, `sum`, `min`, and `max`, so mean and extrema carry no
/// resolution error at all.
///
/// # Accuracy
///
/// [`HistogramSketch::percentile`] answers with the upper edge of the bin
/// holding the nearest-rank observation (clamped to the exact tracked
/// maximum). Since the true value lies inside that same bin, the absolute
/// error is bounded by that bin's width `e_i - e_{i-1}`; with
/// [`HistogramSketch::unit_bins`] edges (width 1 over integers) sketch
/// percentiles are *exact*. Observations in the overflow bin report the
/// exact maximum.
///
/// # Merging
///
/// [`HistogramSketch::merge`] requires both sketches to share identical
/// edges (the intended deployment: every process constructs its sketches
/// from the same config) and is then lossless — merging per-shard or
/// per-node sketches equals having recorded every observation into one.
///
/// # Example
///
/// ```
/// use ba_stats::HistogramSketch;
///
/// let mut a = HistogramSketch::uniform(0.0, 100.0, 20); // width-5 bins
/// let mut b = a.clone();
/// for v in 0..50 {
///     a.record(v as f64);
/// }
/// for v in 50..100 {
///     b.record(v as f64);
/// }
/// a.merge(&b);
/// assert_eq!(a.count(), 100);
/// let p50 = a.percentile(50.0);
/// assert!((p50 - 49.0).abs() <= 5.0, "within one bin of exact: {p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSketch {
    /// Strictly ascending upper bin edges.
    edges: Vec<f64>,
    /// `edges.len() + 1` counters; the last is the overflow bin for
    /// observations above the final edge.
    bins: Vec<u64>,
    count: u64,
    sum: f64,
    /// Exact extrema; meaningful only while `count > 0`.
    min: f64,
    max: f64,
}

impl HistogramSketch {
    /// Creates a sketch over the given strictly ascending, finite upper
    /// bin edges. Memory is fixed at `edges.len() + 1` counters forever.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty, contains a non-finite value, or is not
    /// strictly ascending.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "sketch needs at least one bin edge");
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "bin edges must be finite"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bin edges must be strictly ascending"
        );
        let bins = vec![0u64; edges.len() + 1];
        Self {
            edges,
            bins,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A sketch with `bins` equal-width bins spanning `(start, end]` —
    /// the micromegas-style uniform accumulator. Values at or below
    /// `start` land in the first bin; values above `end` overflow.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `start >= end` (or either is
    /// non-finite).
    pub fn uniform(start: f64, end: f64, bins: usize) -> Self {
        assert!(bins > 0, "sketch needs at least one bin");
        assert!(
            start.is_finite() && end.is_finite() && start < end,
            "uniform sketch needs a finite ascending span"
        );
        let width = (end - start) / bins as f64;
        Self::new((1..=bins).map(|i| start + width * i as f64).collect())
    }

    /// A sketch with unit-width integer bins `0, 1, …, max_value` — the
    /// shape that makes small-integer percentiles (bin loads, probe
    /// indices) exact.
    pub fn unit_bins(max_value: u32) -> Self {
        Self::new((0..=max_value).map(f64::from).collect())
    }

    /// A sketch with power-of-two edges `1, 2, 4, …, 2^max_exponent` —
    /// the log-spaced shape suited to latency-style observations whose
    /// interesting structure spans orders of magnitude. Relative
    /// percentile error is bounded by 2x (one octave bin).
    pub fn log2_bins(max_exponent: u32) -> Self {
        Self::new((0..=max_exponent).map(|e| (1u64 << e) as f64).collect())
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations at once (the bulk path used
    /// when converting exact histograms into sketches).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — a NaN would silently poison
    /// `sum`/`min`/`max` while landing in the overflow bin.
    pub fn record_n(&mut self, value: f64, n: u64) {
        assert!(value.is_finite(), "sketch observations must be finite");
        if n == 0 {
            return;
        }
        // First edge >= value; edges.len() means overflow.
        let idx = self.edges.partition_point(|&e| e < value);
        self.bins[idx] += n;
        self.count += n;
        self.sum += value * n as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The exact mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// The exact minimum observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.min
    }

    /// The exact maximum observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.max
    }

    /// The configured upper bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bin counts; one longer than [`HistogramSketch::edges`], the
    /// final slot being the overflow bin.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The nearest-rank `p`-th percentile (`p` in `[0, 100]`), resolved
    /// to bin granularity: the upper edge of the bin containing the
    /// rank-`ceil(p/100 · count)` observation, clamped to the exact
    /// maximum. Returns 0 if empty.
    ///
    /// The absolute error versus the exact nearest-rank value is bounded
    /// by the width of the answering bin (see the type-level docs);
    /// overflow-bin answers are the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return match self.edges.get(idx) {
                    Some(&edge) => edge.min(self.max),
                    None => self.max, // overflow bin: exact tracked max
                };
            }
        }
        self.max
    }

    /// Merges another sketch into this one. Lossless: bins, count, sum,
    /// and extrema all add/compose exactly.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built over different bin edges —
    /// cross-shape merging would silently misattribute mass, so it is a
    /// configuration error, not a best-effort path.
    pub fn merge(&mut self, other: &HistogramSketch) {
        assert!(
            self.edges == other.edges,
            "sketch merge requires identical bin edges"
        );
        for (slot, &count) in self.bins.iter_mut().zip(&other.bins) {
            *slot += count;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for HistogramSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sketch[{} bins, n={}, mean={:.3}, p50={:.3}, p99={:.3}, max={:.3}]",
            self.bins.len(),
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn unit_bins_make_integer_percentiles_exact() {
        let mut sketch = HistogramSketch::unit_bins(16);
        let mut values: Vec<f64> = (0..100u32).map(|i| f64::from((i * 7) % 13)).collect();
        for &v in &values {
            sketch.record(v);
        }
        values.sort_by(f64::total_cmp);
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(sketch.percentile(p), exact_percentile(&values, p), "p{p}");
        }
        assert_eq!(sketch.max(), 12.0);
        assert_eq!(sketch.min(), 0.0);
    }

    #[test]
    fn percentile_error_is_bounded_by_bin_width() {
        let width = 8.0;
        let mut sketch = HistogramSketch::uniform(0.0, 256.0, 32);
        let mut values: Vec<f64> = (0..500u32).map(|i| f64::from((i * 37) % 250)).collect();
        for &v in &values {
            sketch.record(v);
        }
        values.sort_by(f64::total_cmp);
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let exact = exact_percentile(&values, p);
            let approx = sketch.percentile(p);
            assert!(
                (approx - exact).abs() <= width,
                "p{p}: |{approx} - {exact}| > {width}"
            );
        }
    }

    #[test]
    fn overflow_bin_reports_exact_max() {
        let mut sketch = HistogramSketch::uniform(0.0, 10.0, 10);
        sketch.record(3.0);
        sketch.record(1_000_000.5);
        assert_eq!(sketch.bins().last(), Some(&1));
        assert_eq!(sketch.percentile(100.0), 1_000_000.5);
        assert_eq!(sketch.max(), 1_000_000.5);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mk = || HistogramSketch::log2_bins(10);
        let (mut whole, mut left, mut right) = (mk(), mk(), mk());
        for i in 0..200u32 {
            let v = f64::from((i * 31) % 700);
            whole.record(v);
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(left.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut populated = HistogramSketch::unit_bins(8);
        for v in [1.0, 2.0, 2.0, 5.0] {
            populated.record(v);
        }
        let reference = populated.clone();
        populated.merge(&HistogramSketch::unit_bins(8));
        assert_eq!(populated, reference);
        let mut empty = HistogramSketch::unit_bins(8);
        empty.merge(&reference);
        assert_eq!(empty, reference);
    }

    #[test]
    #[should_panic(expected = "identical bin edges")]
    fn merge_rejects_mismatched_edges() {
        let mut a = HistogramSketch::unit_bins(4);
        a.merge(&HistogramSketch::unit_bins(5));
    }

    #[test]
    fn empty_sketch_is_all_zeros() {
        let sketch = HistogramSketch::uniform(0.0, 1.0, 4);
        assert!(sketch.is_empty());
        assert_eq!(sketch.percentile(50.0), 0.0);
        assert_eq!(sketch.mean(), 0.0);
        assert_eq!(sketch.min(), 0.0);
        assert_eq!(sketch.max(), 0.0);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut bulk = HistogramSketch::unit_bins(8);
        let mut single = HistogramSketch::unit_bins(8);
        bulk.record_n(3.0, 5);
        bulk.record_n(7.0, 0); // no-op
        for _ in 0..5 {
            single.record(3.0);
        }
        assert_eq!(bulk, single);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_edges_rejected() {
        let _ = HistogramSketch::new(vec![1.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_observation_rejected() {
        HistogramSketch::unit_bins(2).record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        HistogramSketch::unit_bins(2).percentile(-1.0);
    }

    #[test]
    fn display_is_compact_and_total() {
        let mut sketch = HistogramSketch::unit_bins(4);
        sketch.record(2.0);
        let text = format!("{sketch}");
        assert!(text.contains("n=1"), "{text}");
    }
}
