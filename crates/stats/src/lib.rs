//! Statistics utilities for the balanced-allocations experiment harness.
//!
//! Everything the paper's tables report is a function of per-trial load
//! histograms: fractions of bins at each load (Tables 1, 3, 6, 7), the
//! fraction of trials reaching a maximum load (Table 4), per-load
//! min/avg/max/standard deviation across trials (Table 5), and mean sojourn
//! times (Table 8). This crate provides those aggregations plus the
//! two-sample tests used to assert "essentially indistinguishable"
//! quantitatively:
//!
//! * [`Welford`] — numerically stable streaming mean/variance;
//! * [`LoadHistogram`] — counts of bins at each integer load;
//! * [`TrialAccumulator`] — cross-trial aggregation of histograms;
//! * [`two_proportion_z`], [`chi_square_statistic`] — comparison tests;
//! * [`ks_statistic`], [`quantile`] — whole-distribution comparisons;
//! * [`Table`] — plain-text table rendering for the harness output.
//!
//! For long-running telemetry the crate also provides:
//!
//! * [`HistogramSketch`] — a mergeable bounded-memory quantile summary
//!   over configurable bin edges, with percentile error bounded by one
//!   bin width;
//! * [`json`] — the minimal JSON writer shared by the bench trajectory
//!   files and the engine's metrics exporter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod distribution;
mod histogram;
pub mod json;
mod sketch;
mod table;
mod welford;

pub use compare::{chi_square_statistic, two_proportion_z, welch_t};
pub use distribution::{ks_critical_value, ks_statistic, quantile};
pub use histogram::{LoadHistogram, LoadSummary, TrialAccumulator};
pub use sketch::HistogramSketch;
pub use table::{format_fraction, Table};
pub use welford::Welford;
