//! `ba-workload` — production-shaped traffic scenarios for the engine.
//!
//! The paper's experiments throw uniform balls at empty tables. Real
//! allocators face skew, flash crowds, deletions, and adversaries. This
//! crate generates that traffic as deterministic [`Op`] streams and drives
//! any [`ba_engine::Engine`] with them through one shared driver API, so
//! every [`ba_hash::ChoiceScheme`] answers the same question the paper
//! asks — "does double hashing lose anything?" — under every scenario:
//!
//! * [`UniformWorkload`] — independent uniform inserts (the paper's model);
//! * [`ZipfWorkload`] — power-law keys with an insert/lookup mix;
//! * [`BurstyWorkload`] — flash crowds hammering small key neighbourhoods;
//! * [`ChurnWorkload`] — constant-population insert/delete mix, the
//!   op-stream twin of `ba_core::ChurnProcess`'s deletion setting;
//! * [`AdversarialWorkload`] — correlated delete/re-insert attack traffic
//!   on a small working set of recently deleted keys.
//!
//! Any scenario's stream can also be captured once into a versioned
//! `.baops` file and replayed byte-identically later — across schemes,
//! choice/worker modes, and code versions: see the [`replay`] module
//! ([`ReplayFile`], [`ReplayWorkload`], [`differential_replay`]).
//!
//! # Example
//!
//! ```
//! use ba_engine::EngineConfig;
//! use ba_workload::{run_scenario, Scenario};
//!
//! let report = run_scenario(
//!     "double",
//!     &Scenario::Zipf { theta: 0.9 },
//!     EngineConfig::new(4, 1 << 10, 3).seed(7),
//!     1 << 12,  // keyspace
//!     20_000,   // ops
//!     1 << 10,  // batch size
//! )
//! .expect("known scheme");
//! assert_eq!(report.summary.total_ops(), 20_000);
//! assert!(report.stats.max_load() < 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generators;
pub mod replay;
mod zipf;

pub use generators::{
    AdversarialWorkload, BurstyWorkload, ChurnWorkload, UniformWorkload, Workload, ZipfWorkload,
};
pub use replay::{
    differential_replay, golden_capture, run_replay, DifferentialOutcome, ReplayError, ReplayFile,
    ReplayHeader, ReplayRun, ReplayWorkload,
};
pub use zipf::Zipf;

use ba_engine::{BatchSummary, Engine, EngineConfig, EngineStats, IngestMode, Op};
use ba_hash::{AnyScheme, ChoiceScheme};

/// A named, parameterized scenario that can build its generator.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// Independent uniform inserts.
    Uniform,
    /// Zipf-skewed keys (exponent `theta` in `(0,1)`), 25% lookups.
    Zipf {
        /// The skew exponent.
        theta: f64,
    },
    /// Flash crowds: bursts of 64 inserts over 8 adjacent keys.
    Bursty,
    /// Constant-population insert/delete churn.
    Churn {
        /// Fraction of post-warmup ops that delete (the rest insert).
        delete_fraction: f64,
    },
    /// Delete-then-re-insert attack traffic.
    Adversarial,
}

impl Scenario {
    /// Every scenario at its default parameters, in canonical order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::Uniform,
            Scenario::Zipf { theta: 0.9 },
            Scenario::Bursty,
            Scenario::Churn {
                delete_fraction: 0.5,
            },
            Scenario::Adversarial,
        ]
    }

    /// Parses a scenario by name: `uniform`, `zipf`, `bursty`, `churn`,
    /// or `adversarial` (default parameters).
    pub fn by_name(name: &str) -> Option<Scenario> {
        Some(match name {
            "uniform" => Scenario::Uniform,
            "zipf" => Scenario::Zipf { theta: 0.9 },
            "bursty" => Scenario::Bursty,
            "churn" => Scenario::Churn {
                delete_fraction: 0.5,
            },
            "adversarial" => Scenario::Adversarial,
            _ => return None,
        })
    }

    /// The names accepted by [`Scenario::by_name`].
    pub fn names() -> &'static [&'static str] {
        &["uniform", "zipf", "bursty", "churn", "adversarial"]
    }

    /// This scenario's short name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Uniform => "uniform",
            Scenario::Zipf { .. } => "zipf",
            Scenario::Bursty => "bursty",
            Scenario::Churn { .. } => "churn",
            Scenario::Adversarial => "adversarial",
        }
    }

    /// Builds the generator for this scenario.
    ///
    /// `keyspace` bounds uniform/Zipf/bursty key draws and sets the target
    /// population for churn/adversarial traffic.
    pub fn build(&self, keyspace: u64, seed: u64) -> Box<dyn Workload> {
        match *self {
            Scenario::Uniform => Box::new(UniformWorkload::new(keyspace, seed)),
            Scenario::Zipf { theta } => Box::new(ZipfWorkload::new(keyspace, theta, 0.25, seed)),
            Scenario::Bursty => Box::new(BurstyWorkload::new(keyspace, 64, 8, seed)),
            Scenario::Churn { delete_fraction } => {
                Box::new(ChurnWorkload::new(keyspace, delete_fraction, seed))
            }
            Scenario::Adversarial => Box::new(AdversarialWorkload::new(keyspace, 256, seed)),
        }
    }
}

/// What a driven scenario produced.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// The scenario's name.
    pub scenario: &'static str,
    /// Aggregate op counts.
    pub summary: BatchSummary,
    /// Engine state after the run.
    pub stats: EngineStats,
    /// Wall-clock time the engine spent serving batches. Under phased
    /// ingestion this excludes workload generation (so
    /// [`DriveReport::ops_per_sec`] is a serve rate); under
    /// [`IngestMode::Pipelined`] generation and application overlap by
    /// design, so the whole generate+serve wall clock is measured — the
    /// honest number, since the overlap is exactly what the pipeline
    /// buys.
    pub elapsed: std::time::Duration,
}

impl DriveReport {
    /// Operations per second over the drive's wall clock.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.summary.total_ops() as f64 / secs
    }
}

/// Pulls exactly `remaining` ops from a generator as an iterator — the
/// adapter that lets a [`Workload`] feed [`Engine::serve_pipelined`]
/// without materializing the stream.
struct WorkloadOps<'a> {
    workload: &'a mut dyn Workload,
    remaining: u64,
}

impl Iterator for WorkloadOps<'_> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.workload.next_op())
    }
}

/// The shared driver: streams `total_ops` operations from `workload` into
/// `engine` in `batch_size` chunks. Works with any scheme and any
/// generator — every scenario/scheme pairing goes through this one path.
///
/// The engine's [`IngestMode`] decides how the stream flows: phased
/// engines alternate generate/apply (one batch buffered at a time);
/// pipelined engines pull ops straight from the generator on the driving
/// thread while shard workers apply earlier batches concurrently. Results
/// are bit-identical either way. Rounds-mode engines
/// ([`IngestMode::Rounds`]) take the phased path too — each batch-sized
/// chunk resolves as one synchronized propose/resolve bulk, so
/// `batch_size` sets the bulk granularity the determinism contract is
/// stated over.
pub fn drive<S: ChoiceScheme + 'static>(
    engine: &mut Engine<S>,
    workload: &mut dyn Workload,
    total_ops: u64,
    batch_size: usize,
) -> DriveReport {
    assert!(batch_size > 0, "batch size must be positive");
    // Engine construction already validates, but drive is the boundary
    // where generated traffic meets the engine: re-check here so no ops
    // can ever flow into a structurally invalid config, whatever
    // constructor produced it.
    if let Err(err) = engine.config().validate() {
        panic!("invalid EngineConfig: {err}");
    }
    if let IngestMode::Pipelined {
        queue_depth,
        producers,
    } = engine.config().ingest
    {
        let start = std::time::Instant::now();
        let summary = engine.serve_pipelined_producers(
            WorkloadOps {
                workload,
                remaining: total_ops,
            },
            batch_size,
            queue_depth,
            producers,
        );
        let elapsed = start.elapsed();
        return DriveReport {
            scenario: workload.name(),
            summary,
            stats: engine.stats(),
            elapsed,
        };
    }
    let mut serving = std::time::Duration::ZERO;
    let mut summary = BatchSummary::default();
    let mut buf: Vec<Op> = Vec::with_capacity(batch_size);
    let mut remaining = total_ops;
    while remaining > 0 {
        let chunk = batch_size.min(remaining as usize);
        workload.fill(&mut buf, chunk);
        let start = std::time::Instant::now();
        summary.absorb(&engine.apply_batch(&buf));
        serving += start.elapsed();
        remaining -= chunk as u64;
    }
    DriveReport {
        scenario: workload.name(),
        summary,
        stats: engine.stats(),
        elapsed: serving,
    }
}

/// Convenience one-shot: builds an engine for the named scheme (see
/// [`AnyScheme::by_name`]), builds the scenario's generator, and drives
/// it. Returns `None` for an unknown scheme name.
pub fn run_scenario(
    scheme: &str,
    scenario: &Scenario,
    config: EngineConfig,
    keyspace: u64,
    total_ops: u64,
    batch_size: usize,
) -> Option<DriveReport> {
    let seed = config.seed;
    let mut engine: Engine<AnyScheme> = Engine::by_name(scheme, config)?;
    let mut workload = scenario.build(keyspace, seed);
    Some(drive(&mut engine, workload.as_mut(), total_ops, batch_size))
}

/// [`run_scenario`] with a metrics sink attached to the engine for the
/// duration of the drive: every applied batch emits one
/// [`ba_engine::MetricRecord`] into `sink` (see
/// [`ba_engine::Engine::set_sink`]), and the sink is flushed before the
/// report returns. Attaching a sink never changes allocation results —
/// the report is bit-identical to the sink-free run.
pub fn run_scenario_with_sink(
    scheme: &str,
    scenario: &Scenario,
    config: EngineConfig,
    keyspace: u64,
    total_ops: u64,
    batch_size: usize,
    sink: Box<dyn ba_engine::MetricsSink + Send>,
) -> Option<DriveReport> {
    let seed = config.seed;
    let mut engine: Engine<AnyScheme> = Engine::by_name(scheme, config)?;
    engine.set_sink(sink);
    let mut workload = scenario.build(keyspace, seed);
    let report = drive(&mut engine, workload.as_mut(), total_ops, batch_size);
    engine.take_sink(); // flush (e.g. an exporter's final partial window)
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for &name in Scenario::names() {
            let s = Scenario::by_name(name).unwrap();
            assert_eq!(s.name(), name);
        }
        assert_eq!(Scenario::by_name("warp"), None);
        assert_eq!(Scenario::all().len(), Scenario::names().len());
    }

    #[test]
    fn driver_serves_exact_op_count() {
        let mut engine = Engine::by_name("double", EngineConfig::new(4, 256, 3).seed(3)).unwrap();
        let mut workload = Scenario::Uniform.build(1 << 12, 3);
        let report = drive(&mut engine, workload.as_mut(), 10_000, 512);
        assert_eq!(report.summary.total_ops(), 10_000);
        assert_eq!(report.summary.inserts, 10_000);
        assert_eq!(engine.total_balls(), 10_000);
        assert!(report.ops_per_sec() > 0.0);
    }

    #[test]
    fn every_scenario_runs_against_every_scheme() {
        // The acceptance matrix: 5 scenarios × every AnyScheme name.
        for &scheme in AnyScheme::names() {
            for scenario in Scenario::all() {
                let d = if scheme == "one" { 1 } else { 4 };
                let config = EngineConfig::new(2, 64, d).seed(1);
                let report = run_scenario(scheme, &scenario, config, 128, 2_000, 256)
                    .unwrap_or_else(|| panic!("{scheme} should build"));
                assert_eq!(
                    report.summary.total_ops(),
                    2_000,
                    "{scheme}/{}",
                    scenario.name()
                );
            }
        }
    }

    #[test]
    fn pipelined_drive_matches_phased_drive() {
        // The driver's ingest dispatch: a Pipelined engine pulls ops
        // straight from the generator, and the outcome is bit-identical
        // to phased driving — summary, stats, exact op count.
        for scenario in [Scenario::Uniform, Scenario::Adversarial] {
            let phased = run_scenario(
                "double",
                &scenario,
                EngineConfig::new(4, 256, 3).seed(8),
                512,
                12_000,
                512,
            )
            .unwrap();
            let pipelined = run_scenario(
                "double",
                &scenario,
                EngineConfig::new(4, 256, 3).seed(8).pipelined(4),
                512,
                12_000,
                512,
            )
            .unwrap();
            assert_eq!(pipelined.summary.total_ops(), 12_000);
            assert_eq!(pipelined.summary, phased.summary, "{}", scenario.name());
            assert!(
                pipelined.stats.matches(&phased.stats),
                "{}: {:?}",
                scenario.name(),
                pipelined.stats.divergences(&phased.stats)
            );
        }
    }

    #[test]
    fn rounds_drive_is_deterministic_and_serves_exact_op_count() {
        // The driver's rounds dispatch: each batch resolves as one
        // synchronized bulk; two runs at different propose-thread counts
        // agree exactly.
        for scenario in [Scenario::Uniform, Scenario::by_name("churn").unwrap()] {
            let a = run_scenario(
                "double",
                &scenario,
                EngineConfig::new(4, 256, 3).seed(8).rounds_producers(2),
                512,
                8_000,
                512,
            )
            .unwrap();
            let b = run_scenario(
                "double",
                &scenario,
                EngineConfig::new(4, 256, 3).seed(8).rounds(),
                512,
                8_000,
                512,
            )
            .unwrap();
            assert_eq!(a.summary.total_ops(), 8_000, "{}", scenario.name());
            assert_eq!(a.summary, b.summary, "{}", scenario.name());
            assert!(
                a.stats.matches(&b.stats),
                "{}: {:?}",
                scenario.name(),
                a.stats.divergences(&b.stats)
            );
        }
    }

    #[test]
    #[should_panic(expected = "EngineConfig::pipelined(3)")]
    fn drive_path_rejects_non_power_of_two_queue_depth_at_construction() {
        // One validation contract everywhere: the driver's construction
        // path hard-errors exactly like direct Engine construction —
        // no rounding-up anywhere.
        let _ = run_scenario(
            "double",
            &Scenario::Uniform,
            EngineConfig::new(4, 256, 3).seed(8).pipelined(3),
            512,
            1_000,
            256,
        );
    }

    #[test]
    #[should_panic(expected = "EngineConfig::rounds_producers(0)")]
    fn drive_path_rejects_zero_rounds_producers_at_construction() {
        let _ = run_scenario(
            "double",
            &Scenario::Uniform,
            EngineConfig::new(4, 256, 3).seed(8).rounds_producers(0),
            512,
            1_000,
            256,
        );
    }

    #[test]
    fn unknown_scheme_yields_none() {
        assert!(run_scenario(
            "warp",
            &Scenario::Uniform,
            EngineConfig::new(1, 16, 2),
            16,
            10,
            4
        )
        .is_none());
    }

    #[test]
    fn churn_traffic_never_misses_deletes() {
        let report = run_scenario(
            "double",
            &Scenario::Churn {
                delete_fraction: 0.5,
            },
            EngineConfig::new(4, 512, 3).seed(9),
            1_024,
            30_000,
            1_024,
        )
        .unwrap();
        assert_eq!(
            report.summary.missed_deletes, 0,
            "generator and engine disagree about live keys"
        );
        // Every surviving ball is accounted for.
        assert_eq!(
            report.stats.total_balls(),
            report.summary.inserts - report.summary.deletes
        );
    }

    #[test]
    fn keyed_adversarial_traffic_respects_fixed_probe_sets() {
        // The fixed-probe re-insertion claim, end to end: after serving
        // correlated delete/re-insert attack traffic in keyed mode, every
        // live ball sits in one of its key's d derived probe bins.
        let mut engine =
            Engine::by_name("double", EngineConfig::new(4, 1 << 10, 3).seed(77).keyed()).unwrap();
        let mut workload = Scenario::Adversarial.build(512, 77);
        let report = drive(&mut engine, workload.as_mut(), 50_000, 1_024);
        assert_eq!(report.summary.missed_deletes, 0);
        let mut checked = 0u64;
        let mut probes = Vec::new();
        for shard in engine.shards() {
            for key in 0..512u64 {
                let Some(bins) = shard.bins_of(key) else {
                    continue;
                };
                shard.probes_into(key, &mut probes);
                for &bin in bins {
                    assert!(
                        probes.contains(&bin),
                        "key {key} held in bin {bin} outside its probe set {probes:?}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked >= 400, "too few live balls checked ({checked})");
    }

    #[test]
    fn stream_adversarial_traffic_wanders_off_probe_sets() {
        // The contrast that motivates keyed mode: under the process model
        // re-inserted balls do not stay inside the keyed probe sets.
        let mut engine =
            Engine::by_name("double", EngineConfig::new(4, 1 << 10, 3).seed(77)).unwrap();
        let mut workload = Scenario::Adversarial.build(512, 77);
        drive(&mut engine, workload.as_mut(), 50_000, 1_024);
        let mut outside = 0u64;
        let mut probes = Vec::new();
        for shard in engine.shards() {
            for key in 0..512u64 {
                let Some(bins) = shard.bins_of(key) else {
                    continue;
                };
                shard.probes_into(key, &mut probes);
                outside += bins.iter().filter(|b| !probes.contains(b)).count() as u64;
            }
        }
        assert!(outside > 0, "stream mode stayed inside keyed probe sets");
    }

    #[test]
    fn keyed_and_stream_scenarios_share_load_statistics() {
        // The paper's indistinguishability claim across choice sources at
        // the serving layer, for traffic that inserts each key once:
        // fresh-key churn and uniform draws over a keyspace much larger
        // than the op count. (Repeat-key traffic — Zipf hot keys,
        // adversarial re-insertion — is *supposed* to differ across the
        // models; the companion tests assert how.)
        for scenario in [
            Scenario::Uniform,
            Scenario::Churn {
                delete_fraction: 0.5,
            },
        ] {
            let keyspace = match scenario {
                Scenario::Uniform => 1u64 << 24,
                _ => 4_096,
            };
            let run = |config: EngineConfig| {
                run_scenario("double", &scenario, config, keyspace, 60_000, 1_024).unwrap()
            };
            let stream = run(EngineConfig::new(4, 1 << 10, 3).seed(5));
            let keyed = run(EngineConfig::new(4, 1 << 10, 3).seed(5).keyed());
            assert_eq!(stream.summary, keyed.summary, "{}", scenario.name());
            let (hs, hk) = (
                stream.stats.merged_histogram(),
                keyed.stats.merged_histogram(),
            );
            for load in 0..3usize {
                let (a, b) = (hs.fraction(load), hk.fraction(load));
                assert!(
                    (a - b).abs() < 0.05,
                    "{}: load {load} stream {a} vs keyed {b}",
                    scenario.name()
                );
            }
        }
    }

    #[test]
    fn keyed_mode_concentrates_repeated_hot_keys() {
        // The flip side of replayability: a key inserted k times in keyed
        // mode lands all k balls inside its fixed d-bin probe set, so
        // hot-key (Zipf) traffic concentrates — stream mode spreads the
        // same inserts over the whole table. This is the defining
        // behavioural difference between the two models, asserted rather
        // than papered over.
        let run = |config: EngineConfig| {
            run_scenario(
                "double",
                &Scenario::Zipf { theta: 0.9 },
                config,
                4_096,
                60_000,
                1_024,
            )
            .unwrap()
        };
        let stream = run(EngineConfig::new(4, 1 << 10, 3).seed(5));
        let keyed = run(EngineConfig::new(4, 1 << 10, 3).seed(5).keyed());
        assert_eq!(stream.summary, keyed.summary);
        assert!(
            keyed.stats.max_load() > stream.stats.max_load(),
            "hot keys should pile up under keyed replay: keyed {} vs stream {}",
            keyed.stats.max_load(),
            stream.stats.max_load()
        );
    }

    #[test]
    fn keyed_adversarial_max_load_stays_bounded() {
        // Fixed-probe re-insertion is the attack the keyed mode exists to
        // study: even when the adversary replays the same probe sequences
        // forever, each key holds one ball, so the max load must stay at
        // two-choice scale rather than blowing up.
        let report = run_scenario(
            "double",
            &Scenario::Adversarial,
            EngineConfig::new(4, 1 << 10, 3).seed(41).keyed(),
            1 << 10,
            200_000,
            2_048,
        )
        .unwrap();
        assert_eq!(report.summary.missed_deletes, 0);
        assert!(
            report.stats.max_load() <= 6,
            "fixed-probe attack blew up max load: {}",
            report.stats.max_load()
        );
    }

    #[test]
    fn run_scenario_with_sink_matches_plain_run() {
        // Observability must be free: same summary/stats as the sink-free
        // run, with every served op accounted for in the records — on
        // both ingestion paths.
        use ba_engine::SharedSink;
        for pipelined in [false, true] {
            let cfg = || {
                let c = EngineConfig::new(4, 256, 3).seed(21);
                if pipelined {
                    c.pipelined(2)
                } else {
                    c
                }
            };
            let plain =
                run_scenario("double", &Scenario::Uniform, cfg(), 1 << 12, 10_000, 512).unwrap();
            let sink = SharedSink::new();
            let observed = run_scenario_with_sink(
                "double",
                &Scenario::Uniform,
                cfg(),
                1 << 12,
                10_000,
                512,
                Box::new(sink.clone()),
            )
            .unwrap();
            assert_eq!(observed.summary, plain.summary, "pipelined={pipelined}");
            assert!(
                observed.stats.matches(&plain.stats),
                "pipelined={pipelined}"
            );
            let records = sink.records();
            assert_eq!(
                records.iter().map(|r| u64::from(r.ops)).sum::<u64>(),
                10_000,
                "pipelined={pipelined}"
            );
            assert_eq!(
                records.iter().all(|r| r.shard.is_some()),
                pipelined,
                "shard attribution follows the ingest mode"
            );
        }
    }

    #[test]
    fn reports_are_reproducible_modulo_time() {
        let cfg = || EngineConfig::new(4, 256, 3).seed(21);
        let a = run_scenario("double", &Scenario::Adversarial, cfg(), 512, 20_000, 512).unwrap();
        let b = run_scenario("double", &Scenario::Adversarial, cfg(), 512, 20_000, 512).unwrap();
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.stats.max_loads(), b.stats.max_loads());
        assert_eq!(
            a.stats.merged_histogram().counts(),
            b.stats.merged_histogram().counts()
        );
    }
}
