//! Workload replay: capture [`Op`] streams into versioned `.baops` files
//! and replay them byte-identically across schemes, modes, and versions.
//!
//! Every cross-scheme or cross-version comparison in this workspace is
//! only as trustworthy as its ability to feed two configurations the
//! *exact same* operation sequence. Generators are already deterministic
//! under a fixed seed, but determinism is a property of the current code:
//! any future change to a generator, the Zipf sampler, or the RNG tree
//! silently changes what "seed 2014" means. A capture file freezes the
//! stream itself, so experiments become reproducible artifacts:
//!
//! * [`ReplayFile::capture`] pulls a scenario's ops once and wraps them
//!   with a header (format version, scenario name, master seed, keyspace,
//!   op count) and a trailing checksum;
//! * [`ReplayFile::encode`] / [`ReplayFile::decode`] are the `.baops`
//!   codec — ops are delta/varint encoded, so million-op captures stay
//!   small, and every way a file can be malformed maps to a typed
//!   [`ReplayError`], never a panic;
//! * [`ReplayWorkload`] implements [`Workload`], so a decoded capture
//!   drops into [`drive`] or an engine unchanged;
//! * [`differential_replay`] applies one capture across `{schemes} ×
//!   {ChoiceMode} × {WorkerMode}` and diffs the final engine shard states
//!   and [`EngineStats`](ba_engine::EngineStats) — worker modes must agree
//!   bit-for-bit, and the report renders the per-cell outcomes side by
//!   side.
//!
//! # File format (version 1)
//!
//! ```text
//! magic   b"BAOPS"                          5 bytes
//! version u16 LE                            2 bytes
//! name    u16 LE length + UTF-8 bytes       variable
//! seed    u64 LE (master seed)              8 bytes
//! keyspace u64 LE                           8 bytes
//! ops     u64 LE (op count)                 8 bytes
//! body    one varint per op                 variable
//! check   u64 LE FNV-1a over all prior      8 bytes
//! ```
//!
//! Each op is one LEB128 varint of `(zigzag(key - prev_key) << 2) | tag`
//! with tag 0 = insert, 1 = delete, 2 = lookup; `prev_key` starts at 0 and
//! deltas wrap mod 2^64. Sequential and clustered key streams (bursty,
//! churn warm-up) encode in one or two bytes per op.
//!
//! # Example
//!
//! ```
//! use ba_engine::EngineConfig;
//! use ba_workload::{ReplayFile, Scenario, drive};
//! use ba_engine::Engine;
//!
//! let capture = ReplayFile::capture(&Scenario::Uniform, 1 << 12, 7, 4_096);
//! let bytes = capture.encode();
//! let reopened = ReplayFile::decode(&bytes).expect("fresh capture decodes");
//! let mut engine = Engine::by_name("double", EngineConfig::new(4, 1 << 10, 3).seed(7)).unwrap();
//! let mut workload = reopened.workload();
//! let report = drive(&mut engine, &mut workload, 4_096, 512);
//! assert_eq!(report.summary.inserts, 4_096);
//! ```

use crate::{drive, DriveReport, Scenario, Workload};
use ba_engine::{ChoiceMode, Engine, EngineConfig, Op, WorkerMode};
use ba_hash::AnyScheme;
use ba_stats::Table;
use std::fmt;
use std::path::Path;

/// The `.baops` format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Magic bytes opening every `.baops` file.
const MAGIC: &[u8; 5] = b"BAOPS";

/// Bytes of trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Fixed header bytes before the scenario name: magic + version.
const PREFIX_LEN: usize = MAGIC.len() + 2;

/// A varint for `(zigzag << 2) | tag` spans at most 66 significant bits,
/// i.e. 10 LEB128 bytes; an 11th continuation byte is malformed.
const MAX_VARINT_BYTES: usize = 10;

/// Master seed pinning the checked-in golden capture corpus.
pub const GOLDEN_SEED: u64 = 2014;

/// Keyspace (population for churn/adversarial) of the golden corpus.
pub const GOLDEN_KEYSPACE: u64 = 1024;

/// Op count of each golden capture.
pub const GOLDEN_OPS: u64 = 2048;

/// Everything that can be wrong with a `.baops` file.
///
/// Decoding never panics: truncated, bit-flipped, hand-edited, or
/// future-versioned files all land on one of these variants.
#[derive(Debug)]
pub enum ReplayError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the `BAOPS` magic.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u16),
    /// The file ends mid-field.
    Truncated,
    /// The scenario name is not valid UTF-8.
    BadScenarioName,
    /// An op carries a tag outside `{insert, delete, lookup}`.
    BadOpTag(u8),
    /// A varint ran past its maximum width.
    OverlongVarint,
    /// A decoded key delta does not fit in 64 bits.
    KeyOutOfRange,
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the file's bytes.
        computed: u64,
    },
    /// Bytes remain after the declared op count was decoded.
    TrailingBytes(usize),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "i/o error: {e}"),
            ReplayError::BadMagic => write!(f, "not a .baops file (bad magic)"),
            ReplayError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .baops version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            ReplayError::Truncated => write!(f, "file truncated mid-field"),
            ReplayError::BadScenarioName => write!(f, "scenario name is not valid UTF-8"),
            ReplayError::BadOpTag(t) => write!(f, "unknown op tag {t}"),
            ReplayError::OverlongVarint => write!(f, "overlong varint"),
            ReplayError::KeyOutOfRange => write!(f, "decoded key delta exceeds 64 bits"),
            ReplayError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#018x}, contents hash to {computed:#018x}"
            ),
            ReplayError::TrailingBytes(n) => {
                write!(f, "{n} unexpected trailing byte(s) after the final op")
            }
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReplayError {
    fn from(e: std::io::Error) -> Self {
        ReplayError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the file checksum. Multiplication by the odd FNV
/// prime is a bijection mod 2^64, so any single-byte change to the covered
/// region changes the digest.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[inline]
fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn op_tag(op: Op) -> u8 {
    match op {
        Op::Insert(_) => 0,
        Op::Delete(_) => 1,
        Op::Lookup(_) => 2,
    }
}

fn op_from(tag: u8, key: u64) -> Result<Op, ReplayError> {
    Ok(match tag {
        0 => Op::Insert(key),
        1 => Op::Delete(key),
        2 => Op::Lookup(key),
        other => return Err(ReplayError::BadOpTag(other)),
    })
}

/// A bounds-checked reader over the decoded body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ReplayError> {
        let end = self.pos.checked_add(n).ok_or(ReplayError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ReplayError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16_le(&mut self) -> Result<u16, ReplayError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64_le(&mut self) -> Result<u64, ReplayError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes taken")))
    }

    fn varint(&mut self) -> Result<u128, ReplayError> {
        let mut value = 0u128;
        for i in 0..MAX_VARINT_BYTES {
            let byte = self.take(1)?[0];
            value |= ((byte & 0x7F) as u128) << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(ReplayError::OverlongVarint)
    }
}

/// The metadata block of a `.baops` capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayHeader {
    /// Format version the file was written with.
    pub version: u16,
    /// Scenario name the stream was captured from (e.g. `"zipf"`).
    pub scenario: String,
    /// Master seed the generator was built with.
    pub seed: u64,
    /// Keyspace (population target for churn/adversarial traffic).
    pub keyspace: u64,
    /// Number of operations in the capture.
    pub op_count: u64,
}

impl ReplayHeader {
    /// The [`Scenario`] (at default parameters) this capture's name maps
    /// to, if it names one of the built-in scenarios.
    pub fn matching_scenario(&self) -> Option<Scenario> {
        Scenario::by_name(&self.scenario)
    }
}

/// A decoded (or freshly captured) `.baops` file: header plus op stream.
///
/// The header records where the stream *came from*; the ops themselves are
/// the artifact. Scenario parameters (e.g. a non-default Zipf `theta`) are
/// not stored — they are already baked into the captured ops.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayFile {
    header: ReplayHeader,
    ops: Vec<Op>,
}

impl ReplayFile {
    /// Wraps an explicit op stream in a capture.
    ///
    /// # Panics
    ///
    /// Panics if `scenario` exceeds `u16::MAX` bytes.
    pub fn from_ops(scenario: &str, seed: u64, keyspace: u64, ops: Vec<Op>) -> Self {
        assert!(
            scenario.len() <= u16::MAX as usize,
            "scenario name too long to serialize"
        );
        Self {
            header: ReplayHeader {
                version: FORMAT_VERSION,
                scenario: scenario.to_string(),
                seed,
                keyspace,
                op_count: ops.len() as u64,
            },
            ops,
        }
    }

    /// Captures `total_ops` operations from a scenario's generator.
    ///
    /// The resulting file replays the exact stream
    /// `scenario.build(keyspace, seed)` would produce today, even after
    /// the generator's implementation changes.
    pub fn capture(scenario: &Scenario, keyspace: u64, seed: u64, total_ops: u64) -> Self {
        let mut workload = scenario.build(keyspace, seed);
        let mut ops = Vec::with_capacity(total_ops as usize);
        for _ in 0..total_ops {
            ops.push(workload.next_op());
        }
        Self::from_ops(scenario.name(), seed, keyspace, ops)
    }

    /// The capture's header.
    pub fn header(&self) -> &ReplayHeader {
        &self.header
    }

    /// The captured operations, in arrival order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Serializes to `.baops` bytes (delta/varint body, trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let name = self.header.scenario.as_bytes();
        let mut out = Vec::with_capacity(PREFIX_LEN + 26 + name.len() + 2 * self.ops.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.header.seed.to_le_bytes());
        out.extend_from_slice(&self.header.keyspace.to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        let mut prev = 0u64;
        for &op in &self.ops {
            let delta = op.key().wrapping_sub(prev) as i64;
            prev = op.key();
            let word = ((zigzag(delta) as u128) << 2) | op_tag(op) as u128;
            push_varint(&mut out, word);
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses `.baops` bytes.
    ///
    /// # Errors
    ///
    /// Returns the specific [`ReplayError`] for any malformed input —
    /// wrong magic or version, truncation, checksum mismatch, bad op
    /// encoding, or trailing garbage. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, ReplayError> {
        if bytes.len() < PREFIX_LEN {
            return Err(ReplayError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ReplayError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[5], bytes[6]]);
        if version != FORMAT_VERSION {
            return Err(ReplayError::UnsupportedVersion(version));
        }
        if bytes.len() < PREFIX_LEN + CHECKSUM_LEN {
            return Err(ReplayError::Truncated);
        }
        let body = &bytes[..bytes.len() - CHECKSUM_LEN];
        let stored = u64::from_le_bytes(
            bytes[bytes.len() - CHECKSUM_LEN..]
                .try_into()
                .expect("checksum slice is 8 bytes"),
        );
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(ReplayError::ChecksumMismatch { stored, computed });
        }
        let mut cur = Cursor {
            bytes: body,
            pos: PREFIX_LEN,
        };
        let name_len = cur.u16_le()? as usize;
        let scenario = std::str::from_utf8(cur.take(name_len)?)
            .map_err(|_| ReplayError::BadScenarioName)?
            .to_string();
        let seed = cur.u64_le()?;
        let keyspace = cur.u64_le()?;
        let op_count = cur.u64_le()?;
        // Each op is at least one byte; a count beyond the remaining bytes
        // is truncation (and guards the allocation below).
        let remaining = body.len() - cur.pos;
        if op_count > remaining as u64 {
            return Err(ReplayError::Truncated);
        }
        let mut ops = Vec::with_capacity(op_count as usize);
        let mut prev = 0u64;
        for _ in 0..op_count {
            let word = cur.varint()?;
            let tag = (word & 0b11) as u8;
            let zig = word >> 2;
            if zig > u64::MAX as u128 {
                return Err(ReplayError::KeyOutOfRange);
            }
            let key = prev.wrapping_add(unzigzag(zig as u64) as u64);
            prev = key;
            ops.push(op_from(tag, key)?);
        }
        if cur.pos != body.len() {
            return Err(ReplayError::TrailingBytes(body.len() - cur.pos));
        }
        Ok(Self {
            header: ReplayHeader {
                version,
                scenario,
                seed,
                keyspace,
                op_count,
            },
            ops,
        })
    }

    /// Writes the encoded capture to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ReplayError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes a capture from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Io`] if the file cannot be read, or the
    /// decoding error for malformed contents.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ReplayError> {
        Self::decode(&std::fs::read(path)?)
    }

    /// A [`Workload`] over a copy of the captured ops, ready for
    /// [`drive`] or [`Engine::serve_replay`].
    pub fn workload(&self) -> ReplayWorkload {
        ReplayWorkload::new(&self.header.scenario, self.ops.clone())
    }

    /// Consumes the capture into a [`Workload`], avoiding the op copy.
    pub fn into_workload(self) -> ReplayWorkload {
        ReplayWorkload::new(&self.header.scenario, self.ops)
    }
}

/// A [`Workload`] that replays a captured op stream verbatim.
///
/// Dropping a `ReplayWorkload` into [`drive`] makes any
/// existing scenario/scheme comparison run over a frozen stream instead of
/// a live generator — the rest of the pipeline cannot tell the difference.
#[derive(Debug, Clone)]
pub struct ReplayWorkload {
    name: &'static str,
    ops: Vec<Op>,
    pos: usize,
}

impl ReplayWorkload {
    fn new(scenario: &str, ops: Vec<Op>) -> Self {
        // The Workload trait hands out 'static names; map the stored name
        // back to its scenario's static name, or the generic "replay".
        let name = Scenario::by_name(scenario).map_or("replay", |s| s.name());
        Self { name, ops, pos: 0 }
    }

    /// Operations not yet replayed.
    pub fn remaining(&self) -> u64 {
        (self.ops.len() - self.pos) as u64
    }
}

impl Workload for ReplayWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Produces the next captured operation.
    ///
    /// # Panics
    ///
    /// Panics if the capture is exhausted — drive a replay for at most
    /// [`ReplayHeader::op_count`] (or [`ReplayWorkload::remaining`]) ops.
    fn next_op(&mut self) -> Op {
        let op = *self
            .ops
            .get(self.pos)
            .unwrap_or_else(|| panic!("replay capture exhausted after {} ops", self.pos));
        self.pos += 1;
        op
    }
}

/// The golden-corpus capture for a scenario: the pinned
/// `(GOLDEN_KEYSPACE, GOLDEN_SEED, GOLDEN_OPS)` stream that
/// `tests/golden/<scenario>.baops` must equal byte-for-byte.
pub fn golden_capture(scenario: &Scenario) -> ReplayFile {
    ReplayFile::capture(scenario, GOLDEN_KEYSPACE, GOLDEN_SEED, GOLDEN_OPS)
}

/// Replays a capture through a fresh engine for the named scheme.
///
/// Returns the drive report plus every shard's final bin loads (the
/// bit-level state the differential runner diffs). `None` for an unknown
/// scheme name.
pub fn run_replay(
    scheme: &str,
    file: &ReplayFile,
    config: EngineConfig,
    batch_size: usize,
) -> Option<(DriveReport, Vec<Vec<u32>>)> {
    let mut engine: Engine<AnyScheme> = Engine::by_name(scheme, config)?;
    let mut workload = file.workload();
    let report = drive(
        &mut engine,
        &mut workload,
        file.header().op_count,
        batch_size,
    );
    let loads = engine
        .shards()
        .iter()
        .map(|s| s.allocation().loads().to_vec())
        .collect();
    Some((report, loads))
}

/// One cell of a differential replay: a capture served by one
/// `(scheme, choice mode, worker mode)` configuration.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    /// Scheme name the engine was built with.
    pub scheme: String,
    /// Choice mode the engine served under.
    pub mode: ChoiceMode,
    /// Worker mode the engine served under.
    pub workers: WorkerMode,
    /// The drive's report (summary, stats, timing).
    pub report: DriveReport,
    /// Final per-shard bin loads, indexed by shard id.
    pub shard_loads: Vec<Vec<u32>>,
}

impl ReplayRun {
    /// A 64-bit fingerprint of the final shard states: equal states hash
    /// equal, so two runs can be diffed at a glance in rendered tables.
    pub fn state_fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        for loads in &self.shard_loads {
            bytes.extend_from_slice(&(loads.len() as u64).to_le_bytes());
            for &load in loads {
                bytes.extend_from_slice(&load.to_le_bytes());
            }
        }
        fnv1a64(&bytes)
    }
}

/// What [`differential_replay`] produced: every run plus the divergence
/// log (empty when every worker mode agreed within each scheme × mode).
#[derive(Debug, Clone)]
pub struct DifferentialOutcome {
    /// Scenario name from the capture's header.
    pub scenario: String,
    /// Every `(scheme, mode, workers)` run, in execution order.
    pub runs: Vec<ReplayRun>,
    /// Human-readable mismatches between worker modes that must agree.
    pub divergences: Vec<String>,
}

impl DifferentialOutcome {
    /// Whether every worker mode produced bit-identical shard states and
    /// stats within each scheme × choice-mode group.
    pub fn is_consistent(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Renders the per-cell table plus the divergence log.
    pub fn render(&self) -> String {
        let mut table = Table::new(&[
            "scheme",
            "mode",
            "workers",
            "balls",
            "max load",
            "state fingerprint",
        ]);
        for run in &self.runs {
            table.row_owned(vec![
                run.scheme.clone(),
                mode_tag(run.mode).to_string(),
                worker_tag(run.workers).to_string(),
                run.report.stats.total_balls().to_string(),
                run.report.stats.max_load().to_string(),
                format!("{:016x}", run.state_fingerprint()),
            ]);
        }
        let mut out = format!("differential replay of `{}` capture\n", self.scenario);
        out.push_str(&table.render());
        if self.divergences.is_empty() {
            out.push_str("worker modes agree bit-for-bit within every scheme x mode\n");
        } else {
            for d in &self.divergences {
                out.push_str(&format!("DIVERGENCE: {d}\n"));
            }
        }
        out
    }
}

fn mode_tag(mode: ChoiceMode) -> &'static str {
    match mode {
        ChoiceMode::Stream => "stream",
        ChoiceMode::Keyed => "keyed",
    }
}

fn worker_tag(workers: WorkerMode) -> &'static str {
    match workers {
        WorkerMode::Sequential => "sequential",
        WorkerMode::Scoped => "scoped",
        WorkerMode::Persistent => "persistent",
    }
}

/// Applies one capture across `{schemes} × {ChoiceMode} × {WorkerMode}`
/// and diffs the final engine shard states and stats.
///
/// Different schemes and choice modes legitimately place balls
/// differently; what must *not* differ is the outcome across worker modes
/// for a fixed scheme and mode. Each group's scoped and persistent runs
/// are therefore diffed against its sequential run — bin loads, batch
/// summaries, and full [`EngineStats`](ba_engine::EngineStats) snapshots —
/// and every mismatch lands in
/// [`DifferentialOutcome::divergences`].
///
/// `base` supplies shards, bins, `d`, tie-break, seed, and RNG kind; its
/// choice and worker modes are overridden per cell. (Schemes with a fixed
/// choice count, like `"one"`, ignore the requested `d`.) Returns `None`
/// for an unknown scheme name.
pub fn differential_replay(
    file: &ReplayFile,
    schemes: &[&str],
    base: EngineConfig,
    batch_size: usize,
) -> Option<DifferentialOutcome> {
    let mut runs = Vec::new();
    let mut divergences = Vec::new();
    for &scheme in schemes {
        for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
            let mut group: Vec<ReplayRun> = Vec::with_capacity(3);
            for workers in [
                WorkerMode::Sequential,
                WorkerMode::Scoped,
                WorkerMode::Persistent,
            ] {
                let config = base.clone().mode(mode).workers(workers);
                let (report, shard_loads) = run_replay(scheme, file, config, batch_size)?;
                group.push(ReplayRun {
                    scheme: scheme.to_string(),
                    mode,
                    workers,
                    report,
                    shard_loads,
                });
            }
            let baseline = &group[0];
            for other in &group[1..] {
                let tag = format!(
                    "{scheme}/{}: {} vs {}",
                    mode_tag(mode),
                    worker_tag(other.workers),
                    worker_tag(baseline.workers)
                );
                if other.shard_loads != baseline.shard_loads {
                    divergences.push(format!("{tag}: final shard bin loads differ"));
                }
                if other.report.summary != baseline.report.summary {
                    divergences.push(format!(
                        "{tag}: summaries differ ({:?} vs {:?})",
                        other.report.summary, baseline.report.summary
                    ));
                }
                for msg in baseline.report.stats.divergences(&other.report.stats) {
                    divergences.push(format!("{tag}: {msg}"));
                }
            }
            runs.extend(group);
        }
    }
    Some(DifferentialOutcome {
        scenario: file.header().scenario.clone(),
        runs,
        divergences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Insert(0),
            Op::Insert(u64::MAX),
            Op::Delete(u64::MAX),
            Op::Lookup(5),
            Op::Insert(6),
            Op::Insert(5),
            Op::Delete(0),
            Op::Lookup(1 << 63),
        ]
    }

    #[test]
    fn round_trip_is_identity() {
        let file = ReplayFile::from_ops("uniform", 7, 1 << 20, sample_ops());
        let decoded = ReplayFile::decode(&file.encode()).unwrap();
        assert_eq!(decoded, file);
        assert_eq!(decoded.header().op_count, 8);
        assert_eq!(decoded.header().version, FORMAT_VERSION);
    }

    #[test]
    fn empty_capture_round_trips() {
        let file = ReplayFile::from_ops("adversarial", 1, 2, Vec::new());
        let decoded = ReplayFile::decode(&file.encode()).unwrap();
        assert_eq!(decoded, file);
        assert_eq!(decoded.ops(), &[]);
    }

    #[test]
    fn sequential_keys_encode_compactly() {
        // Delta encoding: consecutive keys cost one byte each.
        let ops: Vec<Op> = (0..10_000u64).map(Op::Insert).collect();
        let file = ReplayFile::from_ops("churn", 1, 10_000, ops);
        let bytes = file.encode();
        let body = bytes.len() - PREFIX_LEN - CHECKSUM_LEN - 26 - "churn".len();
        assert!(body <= 10_000, "body {body} bytes for 10k sequential ops");
    }

    #[test]
    fn capture_freezes_the_generator_stream() {
        let scenario = Scenario::Zipf { theta: 0.9 };
        let file = ReplayFile::capture(&scenario, 512, 3, 1_000);
        let mut live = scenario.build(512, 3);
        let expected: Vec<Op> = (0..1_000).map(|_| live.next_op()).collect();
        assert_eq!(file.ops(), &expected[..]);
        assert_eq!(file.header().scenario, "zipf");
        assert_eq!(file.header().seed, 3);
        assert_eq!(file.header().keyspace, 512);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = ReplayFile::from_ops("uniform", 1, 2, sample_ops()).encode();
        bytes[0] = b'X';
        assert!(matches!(
            ReplayFile::decode(&bytes),
            Err(ReplayError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_rejected_before_checksum() {
        // A future-versioned file must report its version, not a checksum
        // mismatch — even though patching the version also stales the
        // checksum.
        let mut bytes = ReplayFile::from_ops("uniform", 1, 2, sample_ops()).encode();
        bytes[5] = 0x2A;
        bytes[6] = 0;
        assert!(matches!(
            ReplayFile::decode(&bytes),
            Err(ReplayError::UnsupportedVersion(0x2A))
        ));
    }

    #[test]
    fn every_truncation_point_rejected() {
        let bytes = ReplayFile::from_ops("bursty", 9, 64, sample_ops()).encode();
        for cut in 0..bytes.len() {
            assert!(
                ReplayFile::decode(&bytes[..cut]).is_err(),
                "decode accepted a {cut}-byte prefix of a {}-byte file",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_rejected() {
        let bytes = ReplayFile::from_ops("churn", 5, 128, sample_ops()).encode();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    ReplayFile::decode(&corrupt).is_err(),
                    "decode accepted a flip at byte {pos} bit {bit}"
                );
            }
        }
    }

    /// Builds a body with the standard header fields and a custom op
    /// section, then appends a *valid* checksum — for reaching the decode
    /// paths that sit behind the checksum gate.
    fn craft(op_count: u64, op_bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // empty scenario name
        out.extend_from_slice(&1u64.to_le_bytes()); // seed
        out.extend_from_slice(&2u64.to_le_bytes()); // keyspace
        out.extend_from_slice(&op_count.to_le_bytes());
        out.extend_from_slice(op_bytes);
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    #[test]
    fn bad_op_tag_rejected() {
        let mut op = Vec::new();
        push_varint(&mut op, (zigzag(4) as u128) << 2 | 3);
        assert!(matches!(
            ReplayFile::decode(&craft(1, &op)),
            Err(ReplayError::BadOpTag(3))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        // One op declared, two encoded: the second is trailing garbage.
        let mut ops = Vec::new();
        push_varint(&mut ops, (zigzag(1) as u128) << 2);
        let valid_one_op = ops.len();
        push_varint(&mut ops, (zigzag(1) as u128) << 2);
        let extra = ops.len() - valid_one_op;
        assert!(matches!(
            ReplayFile::decode(&craft(1, &ops)),
            Err(ReplayError::TrailingBytes(n)) if n == extra
        ));
    }

    #[test]
    fn overlong_varint_rejected() {
        let op = [0x80u8; MAX_VARINT_BYTES + 1];
        assert!(matches!(
            ReplayFile::decode(&craft(1, &op)),
            Err(ReplayError::OverlongVarint)
        ));
    }

    #[test]
    fn key_out_of_range_rejected() {
        // A 10-byte varint whose zigzag part needs 65 bits.
        let mut op = Vec::new();
        push_varint(&mut op, (u64::MAX as u128 + 1) << 2);
        assert!(matches!(
            ReplayFile::decode(&craft(1, &op)),
            Err(ReplayError::KeyOutOfRange)
        ));
    }

    #[test]
    fn op_count_beyond_body_is_truncation() {
        assert!(matches!(
            ReplayFile::decode(&craft(10, &[])),
            Err(ReplayError::Truncated)
        ));
    }

    #[test]
    fn bad_utf8_scenario_name_rejected() {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&1u16.to_le_bytes());
        out.push(0xFF); // invalid UTF-8
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&2u64.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            ReplayFile::decode(&out),
            Err(ReplayError::BadScenarioName)
        ));
    }

    #[test]
    fn replay_workload_resolves_scenario_names() {
        let file = ReplayFile::from_ops("zipf", 1, 2, vec![Op::Insert(1)]);
        assert_eq!(file.workload().name(), "zipf");
        let custom = ReplayFile::from_ops("my-trace", 1, 2, vec![Op::Insert(1)]);
        assert_eq!(custom.workload().name(), "replay");
    }

    #[test]
    fn replay_workload_streams_in_order() {
        let file = ReplayFile::from_ops("uniform", 1, 2, sample_ops());
        let mut w = file.workload();
        assert_eq!(w.remaining(), 8);
        let mut out = Vec::new();
        w.fill(&mut out, 8);
        assert_eq!(out, sample_ops());
        assert_eq!(w.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "replay capture exhausted")]
    fn exhausted_replay_panics_with_context() {
        let mut w = ReplayFile::from_ops("uniform", 1, 2, vec![Op::Insert(1)]).into_workload();
        w.next_op();
        w.next_op();
    }

    #[test]
    fn save_and_open_round_trip() {
        let file = ReplayFile::capture(&Scenario::Bursty, 256, 11, 500);
        let dir = std::env::temp_dir().join(format!("baops-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bursty.baops");
        file.save(&path).unwrap();
        let reopened = ReplayFile::open(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(reopened, file);
    }

    #[test]
    fn open_missing_file_is_io_error() {
        assert!(matches!(
            ReplayFile::open("/nonexistent/definitely/missing.baops"),
            Err(ReplayError::Io(_))
        ));
    }

    #[test]
    fn differential_replay_is_consistent_across_worker_modes() {
        let file = ReplayFile::capture(
            &Scenario::Churn {
                delete_fraction: 0.5,
            },
            256,
            13,
            4_000,
        );
        let outcome = differential_replay(
            &file,
            &["random", "double", "one"],
            EngineConfig::new(4, 128, 3).seed(13),
            512,
        )
        .unwrap();
        assert!(
            outcome.is_consistent(),
            "divergences: {:?}",
            outcome.divergences
        );
        // 3 schemes x 2 modes x 3 worker modes.
        assert_eq!(outcome.runs.len(), 18);
        let rendered = outcome.render();
        assert!(rendered.contains("churn"), "{rendered}");
        assert!(rendered.contains("agree bit-for-bit"), "{rendered}");
        // Within a scheme x mode, all three fingerprints match.
        for group in outcome.runs.chunks(3) {
            assert_eq!(group[0].state_fingerprint(), group[1].state_fingerprint());
            assert_eq!(group[0].state_fingerprint(), group[2].state_fingerprint());
        }
    }

    #[test]
    fn differential_replay_rejects_unknown_scheme() {
        let file = ReplayFile::from_ops("uniform", 1, 2, vec![Op::Insert(1)]);
        assert!(differential_replay(&file, &["warp"], EngineConfig::new(2, 64, 3), 64).is_none());
    }

    #[test]
    fn golden_capture_is_pinned() {
        let a = golden_capture(&Scenario::Uniform);
        let b = golden_capture(&Scenario::Uniform);
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.header().op_count, GOLDEN_OPS);
        assert_eq!(a.header().seed, GOLDEN_SEED);
    }
}
