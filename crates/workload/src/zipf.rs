//! Zipf-distributed key sampling (the YCSB "zipfian generator" method).

use ba_rng::Rng64;

/// Samples ranks from a Zipf distribution over `[0, n)` with exponent
/// `theta` in `(0, 1)`: rank `i` has probability proportional to
/// `1 / (i+1)^theta`. Rank 0 is the hottest key.
///
/// Uses Gray–Sundaresan inversion (the YCSB generator): an `O(n)` zeta
/// precomputation at construction, then `O(1)` per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 1` and `0 < theta < 1`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipf exponent must be in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The probability of rank 0 (the hottest key).
    pub fn top_probability(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    fn frequencies(theta: f64, n: u64, samples: u64) -> Vec<u64> {
        let zipf = Zipf::new(n, theta);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(100, 0.99);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let counts = frequencies(0.9, 1000, 200_000);
        // Rank 0 must dominate mid/tail ranks by a wide margin.
        assert!(counts[0] > 10 * counts[500].max(1), "{:?}", &counts[..3]);
        assert!(counts[0] > counts[10], "head not dominant");
        // Observed top-rank frequency tracks the analytic probability.
        let zipf = Zipf::new(1000, 0.9);
        let expected = zipf.top_probability();
        let observed = counts[0] as f64 / 200_000.0;
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed} vs expected {expected}"
        );
    }

    #[test]
    fn low_theta_is_nearly_uniform() {
        let counts = frequencies(0.05, 100, 200_000);
        let expected = 2_000.0;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) < 3.5 * expected && (c as f64) > expected / 3.5,
                "rank {rank}: count {c} far from uniform"
            );
        }
    }

    #[test]
    fn higher_theta_means_hotter_head() {
        let mild = frequencies(0.3, 500, 100_000)[0];
        let hot = frequencies(0.95, 500, 100_000)[0];
        assert!(hot > 2 * mild, "hot {hot} vs mild {mild}");
    }

    #[test]
    fn deterministic_given_seed() {
        let zipf = Zipf::new(64, 0.8);
        let mut a = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = Xoshiro256StarStar::seed_from_u64(5);
        let va: Vec<u64> = (0..100).map(|_| zipf.sample(&mut a)).collect();
        let vb: Vec<u64> = (0..100).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn single_rank_universe() {
        let zipf = Zipf::new(1, 0.5);
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_theta_of_one() {
        Zipf::new(10, 1.0);
    }
}
