//! The workload generators: one per traffic shape.

use crate::zipf::Zipf;
use ba_engine::Op;
use ba_rng::{Rng64, SeedSequence, Xoshiro256StarStar};
use std::collections::VecDeque;

/// A deterministic stream of engine operations.
///
/// Generators own their RNG (derived from a master seed), so a `(scenario,
/// seed)` pair always produces the identical op sequence — the whole
/// scenario suite is replayable against any engine/scheme combination.
pub trait Workload {
    /// The scenario's short name (`uniform`, `zipf`, ...).
    fn name(&self) -> &'static str;

    /// Produces the next operation.
    fn next_op(&mut self) -> Op;

    /// Clears `out` and fills it with the next `count` operations.
    fn fill(&mut self, out: &mut Vec<Op>, count: usize) {
        out.clear();
        out.reserve(count);
        for _ in 0..count {
            out.push(self.next_op());
        }
    }
}

fn stream(seed: u64, tag: u64) -> Xoshiro256StarStar {
    // Distinct child index per generator kind keeps scenario streams
    // independent even under the same master seed.
    SeedSequence::new(seed).child(0xBA5E_0000 ^ tag).xoshiro()
}

/// Uniform independent arrivals: every op inserts a fresh ball for a key
/// drawn uniformly from the keyspace — the paper's classic
/// "throw m balls into n bins" traffic.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    keyspace: u64,
    rng: Xoshiro256StarStar,
}

impl UniformWorkload {
    /// Uniform inserts over `[0, keyspace)`.
    pub fn new(keyspace: u64, seed: u64) -> Self {
        assert!(keyspace > 0, "keyspace must be nonempty");
        Self {
            keyspace,
            rng: stream(seed, 1),
        }
    }
}

impl Workload for UniformWorkload {
    fn name(&self) -> &'static str {
        "uniform"
    }
    fn next_op(&mut self) -> Op {
        Op::Insert(self.rng.gen_range(self.keyspace))
    }
}

/// Zipf-skewed arrivals: keys follow a power law (hot keys receive most
/// traffic), mixing inserts with lookups — cache/CDN-shaped read-write
/// traffic.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    zipf: Zipf,
    lookup_fraction: f64,
    rng: Xoshiro256StarStar,
}

impl ZipfWorkload {
    /// Zipf(`theta`) keys over `[0, keyspace)`; `lookup_fraction` of ops
    /// are lookups, the rest inserts.
    pub fn new(keyspace: u64, theta: f64, lookup_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lookup_fraction),
            "lookup fraction must be in [0,1]"
        );
        Self {
            zipf: Zipf::new(keyspace, theta),
            lookup_fraction,
            rng: stream(seed, 2),
        }
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.zipf.theta()
    }
}

impl Workload for ZipfWorkload {
    fn name(&self) -> &'static str {
        "zipf"
    }
    fn next_op(&mut self) -> Op {
        let lookup = self.rng.gen_bool(self.lookup_fraction);
        let key = self.zipf.sample(&mut self.rng);
        if lookup {
            Op::Lookup(key)
        } else {
            Op::Insert(key)
        }
    }
}

/// Bursty arrivals: traffic comes in flash crowds. Each burst picks a
/// random base key and hammers a small neighbourhood of `spread` keys for
/// `burst_len` consecutive ops before moving on.
#[derive(Debug, Clone)]
pub struct BurstyWorkload {
    keyspace: u64,
    burst_len: u32,
    spread: u64,
    remaining: u32,
    base: u64,
    rng: Xoshiro256StarStar,
}

impl BurstyWorkload {
    /// Bursts of `burst_len` inserts over `spread` adjacent keys.
    pub fn new(keyspace: u64, burst_len: u32, spread: u64, seed: u64) -> Self {
        assert!(keyspace > 0, "keyspace must be nonempty");
        assert!(burst_len > 0, "bursts must be nonempty");
        assert!(spread > 0, "burst spread must be positive");
        Self {
            keyspace,
            burst_len,
            spread: spread.min(keyspace),
            remaining: 0,
            base: 0,
            rng: stream(seed, 3),
        }
    }
}

impl Workload for BurstyWorkload {
    fn name(&self) -> &'static str {
        "bursty"
    }
    fn next_op(&mut self) -> Op {
        if self.remaining == 0 {
            self.remaining = self.burst_len;
            self.base = self.rng.gen_range(self.keyspace);
        }
        self.remaining -= 1;
        // base + offset mod keyspace, without u64 overflow near u64::MAX.
        let offset = self.rng.gen_range(self.spread);
        let space_left = self.keyspace - self.base;
        let key = if offset < space_left {
            self.base + offset
        } else {
            offset - space_left
        };
        Op::Insert(key)
    }
}

/// Constant-population churn: fill to `population` fresh keys, then mix
/// deletes of live keys with inserts of fresh ones.
///
/// The live-key count is held in `[population, population + population/10]`:
/// inserts are forced below the floor, deletes at the ceiling, and
/// `delete_fraction` decides in between. (A bounded population forces
/// equal inserts and deletes in the long run, so fractions far from 0.5
/// ride one band edge rather than changing the steady-state mix.)
///
/// This is the op-stream twin of `ba_core::ChurnProcess` (the paper's
/// "settings with deletions"): driving an engine with it reproduces the
/// same steady-state dynamics, which `tests/engine.rs` checks against
/// `ba_core::run_churn_process` directly.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    population: u64,
    delete_fraction: f64,
    next_key: u64,
    live: Vec<u64>,
    rng: Xoshiro256StarStar,
}

impl ChurnWorkload {
    /// Fills to `population` keys, then deletes with probability
    /// `delete_fraction` (inserting fresh keys otherwise), holding the
    /// live-key count within 10% above `population`.
    pub fn new(population: u64, delete_fraction: f64, seed: u64) -> Self {
        assert!(population > 0, "population must be positive");
        assert!(
            (0.0..=1.0).contains(&delete_fraction),
            "delete fraction must be in [0,1]"
        );
        Self {
            population,
            delete_fraction,
            next_key: 0,
            live: Vec::new(),
            rng: stream(seed, 4),
        }
    }

    /// Keys currently live according to the generator's own bookkeeping.
    pub fn live_keys(&self) -> u64 {
        self.live.len() as u64
    }

    fn fresh_insert(&mut self) -> Op {
        let key = self.next_key;
        self.next_key += 1;
        self.live.push(key);
        Op::Insert(key)
    }

    fn delete_random(&mut self) -> Op {
        let idx = self.rng.gen_range(self.live.len() as u64) as usize;
        Op::Delete(self.live.swap_remove(idx))
    }
}

impl Workload for ChurnWorkload {
    fn name(&self) -> &'static str {
        "churn"
    }
    fn next_op(&mut self) -> Op {
        let len = self.live.len() as u64;
        if len < self.population {
            return self.fresh_insert();
        }
        if len >= self.population + (self.population / 10).max(1) {
            return self.delete_random();
        }
        if self.rng.gen_bool(self.delete_fraction) {
            self.delete_random()
        } else {
            self.fresh_insert()
        }
    }
}

/// Adversarial re-insertion: an attacker repeatedly deletes keys and
/// re-inserts exactly those keys, maximizing delete/re-insert correlation
/// on a small working set.
///
/// What the attack exercises depends on the engine's
/// [`ba_engine::ChoiceMode`]:
///
/// * under [`ba_engine::ChoiceMode::Keyed`] every re-inserted key replays
///   its exact `f + k·g` probe sequence (choices are a pure function of
///   `hash(key, shard_salt)`), so this is the paper's fixed-probe
///   re-insertion setting — the hardest case for double hashing, since
///   the adversary revisits the *same* d-bin neighbourhoods forever;
/// * under [`ba_engine::ChoiceMode::Stream`] (the paper's process model)
///   each re-insert draws fresh choices, so the scenario stresses
///   correlated delete/re-insert dynamics instead: recently vacated bins
///   refilling under churn pressure.
///
/// The `tests/engine.rs` and `ba-workload` suites assert the keyed
/// property end-to-end: after driving this traffic, every live ball sits
/// inside its key's fixed probe set.
#[derive(Debug, Clone)]
pub struct AdversarialWorkload {
    population: u64,
    next_key: u64,
    live: Vec<u64>,
    recently_deleted: VecDeque<u64>,
    window: usize,
    rng: Xoshiro256StarStar,
}

impl AdversarialWorkload {
    /// Maintains roughly `population` live keys, re-inserting from a
    /// `window` of recently deleted keys whenever possible.
    pub fn new(population: u64, window: usize, seed: u64) -> Self {
        assert!(population > 0, "population must be positive");
        assert!(window > 0, "window must be positive");
        Self {
            population,
            next_key: 0,
            live: Vec::new(),
            recently_deleted: VecDeque::new(),
            window,
            rng: stream(seed, 5),
        }
    }
}

impl Workload for AdversarialWorkload {
    fn name(&self) -> &'static str {
        "adversarial"
    }
    fn next_op(&mut self) -> Op {
        if (self.live.len() as u64) < self.population {
            // Refill, preferring re-insertion of recently deleted keys to
            // keep the attack's working set tight.
            if let Some(key) = self.recently_deleted.pop_front() {
                self.live.push(key);
                return Op::Insert(key);
            }
            let key = self.next_key;
            self.next_key += 1;
            self.live.push(key);
            return Op::Insert(key);
        }
        // At population: delete a random victim and remember it for
        // re-insertion, keeping delete/re-insert tightly correlated.
        let idx = self.rng.gen_range(self.live.len() as u64) as usize;
        let key = self.live.swap_remove(idx);
        self.recently_deleted.push_back(key);
        if self.recently_deleted.len() > self.window {
            self.recently_deleted.pop_front();
        }
        Op::Delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(w: &mut dyn Workload, count: usize) -> Vec<Op> {
        let mut out = Vec::new();
        w.fill(&mut out, count);
        out
    }

    #[test]
    fn uniform_stays_in_keyspace() {
        let mut w = UniformWorkload::new(100, 1);
        for op in ops(&mut w, 5_000) {
            assert!(matches!(op, Op::Insert(k) if k < 100));
        }
    }

    #[test]
    fn zipf_mixes_lookups_at_requested_rate() {
        let mut w = ZipfWorkload::new(1_000, 0.9, 0.3, 2);
        let sample = ops(&mut w, 50_000);
        let lookups = sample.iter().filter(|o| matches!(o, Op::Lookup(_))).count();
        let rate = lookups as f64 / sample.len() as f64;
        assert!((rate - 0.3).abs() < 0.02, "lookup rate {rate}");
    }

    #[test]
    fn zipf_keys_are_skewed() {
        let mut w = ZipfWorkload::new(1_000, 0.9, 0.0, 3);
        let mut counts = vec![0u64; 1_000];
        for op in ops(&mut w, 100_000) {
            counts[op.key() as usize] += 1;
        }
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[500..510].iter().sum();
        assert!(head > 20 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn bursty_reuses_keys_within_bursts() {
        let mut w = BurstyWorkload::new(1 << 20, 64, 8, 4);
        let sample = ops(&mut w, 6_400);
        let mut distinct: Vec<u64> = sample.iter().map(|o| o.key()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        // 100 bursts × spread 8 ⇒ at most ~800 distinct keys for 6400 ops.
        assert!(
            distinct.len() <= 800,
            "bursty traffic too spread out: {} distinct keys",
            distinct.len()
        );
    }

    #[test]
    fn churn_holds_population_and_mix() {
        let mut w = ChurnWorkload::new(1_000, 0.5, 5);
        // Warmup: exactly the first `population` ops are inserts.
        let warmup = ops(&mut w, 1_000);
        assert!(warmup.iter().all(|o| matches!(o, Op::Insert(_))));
        let churn = ops(&mut w, 40_000);
        let deletes = churn.iter().filter(|o| matches!(o, Op::Delete(_))).count();
        let rate = deletes as f64 / churn.len() as f64;
        assert!((rate - 0.5).abs() < 0.02, "delete rate {rate}");
        // Population stays near target (random walk, but tightly held).
        assert!(
            (w.live_keys() as i64 - 1_000).abs() < 600,
            "population drifted to {}",
            w.live_keys()
        );
    }

    #[test]
    fn churn_population_bounded_even_for_insert_heavy_mix() {
        // delete_fraction < 0.5 drifts upward; the band ceiling must hold.
        let mut w = ChurnWorkload::new(1_000, 0.2, 8);
        let _ = ops(&mut w, 200_000);
        assert!(
            w.live_keys() <= 1_100,
            "population escaped the band: {}",
            w.live_keys()
        );
        assert!(w.live_keys() >= 1_000, "population fell below the floor");
    }

    #[test]
    fn bursty_survives_huge_keyspaces() {
        // base + offset must not overflow u64 near u64::MAX.
        let mut w = BurstyWorkload::new(u64::MAX, 16, 1 << 40, 9);
        for op in ops(&mut w, 10_000) {
            assert!(matches!(op, Op::Insert(_)));
        }
    }

    #[test]
    fn churn_never_deletes_dead_keys() {
        let mut w = ChurnWorkload::new(100, 0.6, 6);
        let mut live = std::collections::HashSet::new();
        for op in ops(&mut w, 20_000) {
            match op {
                Op::Insert(k) => {
                    assert!(live.insert(k), "key {k} inserted twice");
                }
                Op::Delete(k) => {
                    assert!(live.remove(&k), "deleted dead key {k}");
                }
                Op::Lookup(_) => {}
            }
        }
    }

    #[test]
    fn adversarial_reinserts_deleted_keys() {
        let mut w = AdversarialWorkload::new(500, 64, 7);
        let sample = ops(&mut w, 20_000);
        let mut deleted = std::collections::HashSet::new();
        let mut reinserted = 0u64;
        for op in &sample {
            match op {
                Op::Delete(k) => {
                    deleted.insert(*k);
                }
                Op::Insert(k) if deleted.contains(k) => reinserted += 1,
                _ => {}
            }
        }
        assert!(
            reinserted > 1_000,
            "attack never re-inserted deleted keys ({reinserted})"
        );
    }

    #[test]
    fn generators_reproducible_under_fixed_seed() {
        let builders: Vec<fn(u64) -> Box<dyn Workload>> = vec![
            |s| Box::new(UniformWorkload::new(1 << 16, s)),
            |s| Box::new(ZipfWorkload::new(1 << 16, 0.9, 0.2, s)),
            |s| Box::new(BurstyWorkload::new(1 << 16, 32, 8, s)),
            |s| Box::new(ChurnWorkload::new(512, 0.5, s)),
            |s| Box::new(AdversarialWorkload::new(512, 64, s)),
        ];
        for build in &builders {
            let mut a = build(11);
            let mut b = build(11);
            let mut c = build(12);
            let (va, vb, vc) = (
                ops(a.as_mut(), 2_000),
                ops(b.as_mut(), 2_000),
                ops(c.as_mut(), 2_000),
            );
            assert_eq!(va, vb, "{} not reproducible", a.name());
            assert_ne!(va, vc, "{} ignores its seed", a.name());
        }
    }
}
