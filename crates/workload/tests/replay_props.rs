//! Property-based tests for the `.baops` replay codec.
//!
//! The codec's contract: encode→decode is the identity for *arbitrary* op
//! streams, and every malformed input — truncation at any byte, any single
//! bit flip, any foreign format version — is rejected with a typed
//! [`ReplayError`], never a panic.

use ba_engine::Op;
use ba_workload::{ReplayError, ReplayFile};
use proptest::prelude::*;

fn to_ops(raw: &[(u8, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(tag, key)| match tag {
            0 => Op::Insert(key),
            1 => Op::Delete(key),
            _ => Op::Lookup(key),
        })
        .collect()
}

fn encoded(raw: &[(u8, u64)], seed: u64, keyspace: u64) -> Vec<u8> {
    ReplayFile::from_ops("uniform", seed, keyspace, to_ops(raw)).encode()
}

proptest! {
    /// encode→decode is the identity: header and op stream both survive.
    #[test]
    fn round_trip_is_identity(
        raw in proptest::collection::vec((0u8..3, any::<u64>()), 0..300),
        seed in any::<u64>(),
        keyspace in 1u64..u64::MAX,
    ) {
        let ops = to_ops(&raw);
        let file = ReplayFile::from_ops("zipf", seed, keyspace, ops.clone());
        let decoded = ReplayFile::decode(&file.encode()).expect("fresh encode must decode");
        prop_assert_eq!(decoded.ops(), &ops[..]);
        prop_assert_eq!(decoded.header(), file.header());
        // Encoding is canonical: re-encoding the decoded file is stable.
        prop_assert_eq!(decoded.encode(), file.encode());
    }

    /// Any strict prefix of a valid file is rejected — with an error, not
    /// a panic, no matter where the cut lands (mid-magic, mid-varint,
    /// mid-checksum).
    #[test]
    fn truncated_files_rejected(
        raw in proptest::collection::vec((0u8..3, any::<u64>()), 0..100),
        cut in any::<u64>(),
    ) {
        let bytes = encoded(&raw, 1, 64);
        let cut = (cut % bytes.len() as u64) as usize;
        prop_assert!(ReplayFile::decode(&bytes[..cut]).is_err());
    }

    /// Any single bit flip anywhere in the file is rejected: the trailing
    /// FNV-1a checksum covers every byte before it, and a flip inside the
    /// stored checksum itself mismatches the (unchanged) contents.
    #[test]
    fn single_bit_flips_rejected(
        raw in proptest::collection::vec((0u8..3, any::<u64>()), 0..100),
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut bytes = encoded(&raw, 9, 1 << 20);
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1u8 << bit;
        prop_assert!(ReplayFile::decode(&bytes).is_err());
    }

    /// A file stamped with any foreign version number reports exactly
    /// `UnsupportedVersion(v)` — version negotiation happens before the
    /// checksum gate, so future tools get a useful error.
    #[test]
    fn wrong_version_rejected_with_typed_error(
        raw in proptest::collection::vec((0u8..3, any::<u64>()), 0..50),
        version in any::<u16>(),
    ) {
        prop_assume!(version != 1);
        let mut bytes = encoded(&raw, 3, 128);
        bytes[5..7].copy_from_slice(&version.to_le_bytes());
        prop_assert!(matches!(
            ReplayFile::decode(&bytes),
            Err(ReplayError::UnsupportedVersion(v)) if v == version
        ));
    }

    /// Garbage that does not even start with the magic is BadMagic (when
    /// long enough to tell) or Truncated — never accepted, never a panic.
    #[test]
    fn arbitrary_garbage_rejected(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        // A uniformly random 5-byte magic + matching trailing checksum is
        // a ~2^-104 event; treat any Ok as a genuine failure.
        if !bytes.starts_with(b"BAOPS") {
            prop_assert!(ReplayFile::decode(&bytes).is_err());
        }
    }
}
