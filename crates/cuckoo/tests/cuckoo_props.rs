//! Property-based tests for the cuckoo table.

use ba_cuckoo::{CuckooTable, Insert};
use ba_hash::{DoubleHashing, FullyRandom, Replacement};
use ba_rng::Xoshiro256StarStar;
use proptest::prelude::*;

proptest! {
    /// Everything successfully inserted (and never displaced out) is found;
    /// the table never stores a key outside its candidate buckets.
    #[test]
    fn placed_keys_live_in_candidate_buckets(
        seed in any::<u64>(),
        n_exp in 6u32..10,
        d in 2usize..5,
        fill_percent in 10u64..70,
    ) {
        let n = 1u64 << n_exp;
        let scheme = FullyRandom::new(n, d, Replacement::Without);
        let mut table = CuckooTable::new(scheme, 1000, seed);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 1);
        let target = n * fill_percent / 100;
        let mut placed = 0u64;
        for key in 0..target {
            if matches!(table.insert(key, &mut rng), Insert::Placed { .. }) {
                placed += 1;
            }
        }
        prop_assert_eq!(table.items(), placed);
        prop_assert!(table.load_factor() <= 1.0);
        // Every key the table claims to contain must be in one of its own
        // candidate buckets (checked internally by contains()).
        let mut found = 0u64;
        for key in 0..target {
            if table.contains(key) {
                found += 1;
            }
        }
        prop_assert_eq!(found, placed, "containment count mismatch");
    }

    /// Below the d-ary threshold, insertion never fails.
    #[test]
    fn below_threshold_never_fails(seed in any::<u64>()) {
        let n = 1u64 << 10;
        let scheme = DoubleHashing::new(n, 3);
        let mut table = CuckooTable::new(scheme, 2000, seed);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 2);
        // 80% fill is comfortably below the 91.8% threshold for d = 3.
        for key in 0..(n * 8 / 10) {
            prop_assert!(
                matches!(table.insert(key, &mut rng), Insert::Placed { .. }),
                "failed at load {}",
                table.load_factor()
            );
        }
    }

    /// Candidate generation is a pure function of (table seed, key).
    #[test]
    fn candidates_stable(seed in any::<u64>(), key in any::<u64>()) {
        let scheme = DoubleHashing::new(256, 3);
        let table = CuckooTable::new(scheme, 10, seed);
        let mut a = [0u64; 3];
        let mut b = [0u64; 3];
        table.candidates(key, &mut a);
        table.candidates(key, &mut b);
        prop_assert_eq!(a, b);
        prop_assert!(a.iter().all(|&x| x < 256));
    }

    /// Double-hashing candidates are always distinct (coprime stride).
    #[test]
    fn double_hash_candidates_distinct(seed in any::<u64>(), key in any::<u64>()) {
        let scheme = DoubleHashing::new(128, 4);
        let table = CuckooTable::new(scheme, 10, seed);
        let mut c = [0u64; 4];
        table.candidates(key, &mut c);
        let mut sorted = c.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 4, "duplicates in {:?}", c);
    }
}

/// Deterministic end-to-end check usable as a doc-style smoke test.
#[test]
fn lookup_after_heavy_fill() {
    let n = 1u64 << 10;
    let scheme = DoubleHashing::new(n, 3);
    let mut table = CuckooTable::new(scheme, 2000, 99);
    let mut rng = Xoshiro256StarStar::seed_from_u64(100);
    let mut inserted = Vec::new();
    for key in 0..(n * 85 / 100) {
        if matches!(table.insert(key, &mut rng), Insert::Placed { .. }) {
            inserted.push(key);
        }
    }
    for &key in &inserted {
        assert!(table.contains(key), "lost key {key}");
    }
    assert!(!table.contains(u64::MAX));
}
