//! d-ary cuckoo hashing with pluggable choice schemes.
//!
//! The paper's conclusion points at cuckoo hashing as the next domain where
//! double hashing might be "free" (explored empirically in Mitzenmacher &
//! Thaler, Allerton 2012: "we have empirically examined double hashing for
//! other algorithms such as cuckoo hashing, and again found essentially no
//! empirical difference"). This crate makes that experiment runnable here:
//! a d-ary cuckoo table whose d candidate buckets per key come from any
//! [`ba_hash::ChoiceScheme`] — fully random or double hashing — with
//! random-walk insertion.
//!
//! The metric of interest is the *load threshold*: the fill fraction at
//! which insertion starts to fail. For d = 3 fully random choices it is
//! ≈ 0.918 (Fountoulakis–Panagiotou et al.); the claim under test is that
//! double hashing achieves the same threshold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ba_hash::ChoiceScheme;
use ba_rng::Rng64;

/// Outcome of an insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insert {
    /// The key was placed (possibly after relocations).
    Placed {
        /// Number of relocations ("kicks") performed.
        kicks: u32,
    },
    /// The random walk exceeded the kick budget; the table is effectively
    /// full for this key.
    Failed,
}

/// A d-ary cuckoo hash table with one slot per bucket.
///
/// Keys are opaque `u64`s. Each key's d candidate buckets are produced by
/// the choice scheme from a per-key deterministic stream, so the same key
/// always maps to the same buckets (as a real hash function would) while
/// the scheme decides the *structure* of the bucket set.
#[derive(Debug, Clone)]
pub struct CuckooTable<S> {
    scheme: S,
    slots: Vec<Option<u64>>,
    max_kicks: u32,
    seed: u64,
    items: u64,
}

impl<S: ChoiceScheme> CuckooTable<S> {
    /// Creates an empty table over the scheme's `n` buckets.
    ///
    /// `max_kicks` bounds the random-walk length per insertion (500 is a
    /// common engineering choice; failures then indicate genuine fullness).
    pub fn new(scheme: S, max_kicks: u32, seed: u64) -> Self {
        let n = scheme.n();
        Self {
            scheme,
            slots: vec![None; n as usize],
            max_kicks,
            seed,
            items: 0,
        }
    }

    /// The number of buckets.
    pub fn buckets(&self) -> u64 {
        self.slots.len() as u64
    }

    /// The number of stored keys.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Current fill fraction.
    pub fn load_factor(&self) -> f64 {
        self.items as f64 / self.slots.len() as f64
    }

    /// The d candidate buckets for `key`, written into `out`.
    ///
    /// Deterministic per key: the scheme is driven by a SplitMix64 stream
    /// seeded with `(table seed, key)`.
    pub fn candidates(&self, key: u64, out: &mut [u64]) {
        let mut stream = ba_rng::SplitMix64::new(self.seed ^ ba_rng::SplitMix64::mix(key));
        self.scheme.fill_choices(&mut stream, out);
    }

    /// Looks a key up.
    pub fn contains(&self, key: u64) -> bool {
        let mut buf = vec![0u64; self.scheme.d()];
        self.candidates(key, &mut buf);
        buf.iter().any(|&b| self.slots[b as usize] == Some(key))
    }

    /// Inserts `key` by a random walk: place into any empty candidate; if
    /// none, evict a uniformly random candidate and re-insert the victim.
    ///
    /// `rng` drives only the eviction choices (the walk), not the bucket
    /// candidates.
    pub fn insert<R: Rng64>(&mut self, key: u64, rng: &mut R) -> Insert {
        let d = self.scheme.d();
        let mut buf = vec![0u64; d];
        let mut current = key;
        for kicks in 0..=self.max_kicks {
            self.candidates(current, &mut buf);
            // Any empty candidate?
            if let Some(&empty) = buf.iter().find(|&&b| self.slots[b as usize].is_none()) {
                self.slots[empty as usize] = Some(current);
                self.items += 1;
                return Insert::Placed { kicks };
            }
            // Evict a random candidate and carry its key onward.
            let victim_bucket = buf[rng.gen_range(d as u64) as usize] as usize;
            let victim = self.slots[victim_bucket]
                .replace(current)
                .expect("bucket was checked non-empty");
            current = victim;
        }
        // Walk exhausted: the carried key is homeless. Undo accounting by
        // re-inserting nothing; the displaced chain is already consistent
        // (every slot holds a real key; `current` is the one that lost).
        Insert::Failed
    }

    /// Fills the table from an empty state with sequentially numbered keys
    /// until the first failure; returns the achieved load factor.
    pub fn fill_until_failure<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        let mut key = 0u64;
        loop {
            match self.insert(key, rng) {
                Insert::Placed { .. } => key += 1,
                Insert::Failed => return self.load_factor(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_hash::{DoubleHashing, FullyRandom, Replacement};
    use ba_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn insert_then_contains() {
        let scheme = FullyRandom::new(1 << 10, 3, Replacement::Without);
        let mut t = CuckooTable::new(scheme, 500, 1);
        let mut r = rng(0);
        for key in 0..500u64 {
            assert!(
                matches!(t.insert(key, &mut r), Insert::Placed { .. }),
                "half-full 3-ary table must accept key {key}"
            );
        }
        for key in 0..500u64 {
            assert!(t.contains(key), "lost key {key}");
        }
        assert!(!t.contains(10_000));
        assert_eq!(t.items(), 500);
    }

    #[test]
    fn candidates_are_deterministic_per_key() {
        let scheme = DoubleHashing::new(1 << 8, 3);
        let t = CuckooTable::new(scheme, 100, 42);
        let mut a = [0u64; 3];
        let mut b = [0u64; 3];
        t.candidates(123, &mut a);
        t.candidates(123, &mut b);
        assert_eq!(a, b);
        t.candidates(124, &mut b);
        assert_ne!(a, b, "distinct keys should almost surely differ");
    }

    #[test]
    fn fully_random_d3_threshold_near_0918() {
        let n = 1u64 << 12;
        let scheme = FullyRandom::new(n, 3, Replacement::Without);
        let mut t = CuckooTable::new(scheme, 2000, 7);
        let load = t.fill_until_failure(&mut rng(1));
        assert!(
            (0.85..=0.97).contains(&load),
            "d=3 threshold should be ~0.918, got {load}"
        );
    }

    #[test]
    fn double_hashing_d3_threshold_matches_random() {
        let n = 1u64 << 12;
        let random_load = {
            let scheme = FullyRandom::new(n, 3, Replacement::Without);
            CuckooTable::new(scheme, 2000, 7).fill_until_failure(&mut rng(2))
        };
        let double_load = {
            let scheme = DoubleHashing::new(n, 3);
            CuckooTable::new(scheme, 2000, 7).fill_until_failure(&mut rng(3))
        };
        assert!(
            (random_load - double_load).abs() < 0.03,
            "thresholds diverge: random {random_load} vs double {double_load}"
        );
    }

    #[test]
    fn d2_threshold_is_half() {
        // Classic 2-ary cuckoo: threshold 0.5.
        let n = 1u64 << 12;
        let scheme = FullyRandom::new(n, 2, Replacement::Without);
        let mut t = CuckooTable::new(scheme, 2000, 9);
        let load = t.fill_until_failure(&mut rng(4));
        assert!(
            (0.4..=0.56).contains(&load),
            "d=2 threshold ~0.5, got {load}"
        );
    }

    #[test]
    fn failed_insert_leaves_table_consistent() {
        // Tiny table, force failure, then verify every stored key is still
        // findable.
        let n = 16u64;
        let scheme = FullyRandom::new(n, 2, Replacement::Without);
        let mut t = CuckooTable::new(scheme, 20, 11);
        let mut r = rng(5);
        let mut placed = Vec::new();
        for key in 0..n * 2 {
            if let Insert::Placed { .. } = t.insert(key, &mut r) {
                placed.push(key);
            }
        }
        // After the dust settles, items() many keys must be present...
        assert_eq!(t.items() as usize, t.slots_occupied());
        // ...but eviction chains may have ejected earlier keys' ownership:
        // every slot must hold a key that maps to it.
        t.assert_slots_consistent();
    }

    impl<S: ba_hash::ChoiceScheme> CuckooTable<S> {
        fn slots_occupied(&self) -> usize {
            self.slots.iter().filter(|s| s.is_some()).count()
        }
        fn assert_slots_consistent(&self) {
            let mut buf = vec![0u64; self.scheme.d()];
            for (i, slot) in self.slots.iter().enumerate() {
                if let Some(key) = slot {
                    self.candidates(*key, &mut buf);
                    assert!(
                        buf.contains(&(i as u64)),
                        "key {key} stored in non-candidate bucket {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn kicks_increase_with_load() {
        let n = 1u64 << 10;
        let scheme = FullyRandom::new(n, 3, Replacement::Without);
        let mut t = CuckooTable::new(scheme, 2000, 13);
        let mut r = rng(6);
        let mut early_kicks = 0u64;
        for key in 0..n / 2 {
            if let Insert::Placed { kicks } = t.insert(key, &mut r) {
                early_kicks += kicks as u64;
            }
        }
        let mut late_kicks = 0u64;
        for key in n / 2..(n as f64 * 0.9) as u64 {
            if let Insert::Placed { kicks } = t.insert(key, &mut r) {
                late_kicks += kicks as u64;
            }
        }
        assert!(
            late_kicks > early_kicks,
            "late insertions should kick more: {early_kicks} -> {late_kicks}"
        );
    }
}
