//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no crates.io access, so the
//! workspace resolves `criterion` to this shim via a path dependency. It
//! implements exactly the API subset the benches in `crates/bench/benches`
//! use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `sample_size`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple adaptive
//! wall-clock timer instead of criterion's statistical machinery.
//!
//! Output is one line per benchmark:
//!
//! ```text
//! fill_choices/double/3        time: 18.4 ns/iter  (54.3 Melem/s)
//! ```
//!
//! Set `CRITERION_SHIM_BUDGET_MS` to change the per-benchmark measurement
//! budget (default 100 ms). The shim honours neither CLI filters nor
//! baselines; it exists so `cargo bench` compiles and produces usable
//! numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement throughput annotation, used to report per-element rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group, e.g. `scheme/3`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The per-benchmark timing driver handed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count to fill the
    /// measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = budget();
        // Warm-up + calibration: double the batch until it is measurable.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget / 10 || batch >= (1 << 30) {
                // Measure: run batches until the budget is spent.
                let mut total = elapsed;
                let mut iters = batch;
                while total < budget {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(f());
                    }
                    total += start.elapsed();
                    iters += batch;
                }
                self.total = total;
                self.iters = iters;
                return;
            }
            batch *= 2;
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count. Accepted for API compatibility; the shim's
    /// adaptive timer ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group. (Reporting happens eagerly; this is a no-op.)
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let full = format!("{}/{}", self.name, id);
        if b.iters == 0 {
            println!("{full:<44} (not measured)");
            return;
        }
        let ns = b.total.as_nanos() as f64 / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) => {
                format!("  ({} elem/s)", si(e as f64 * 1e9 / ns))
            }
            Some(Throughput::Bytes(n)) => format!("  ({}B/s)", si(n as f64 * 1e9 / ns)),
            None => String::new(),
        };
        println!("{full:<44} time: {} /iter{rate}", time(ns));
    }
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100);
    Duration::from_millis(ms.max(1))
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} k", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

fn time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) -> &mut Self {
        let label = id.to_string();
        self.benchmark_group(label).bench_function("", f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| std::hint::black_box(1 + 1))
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
