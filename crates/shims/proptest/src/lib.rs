//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment for this workspace has no crates.io access, so the
//! workspace resolves `proptest` to this shim via a path dependency. It
//! implements the API subset the workspace's property tests use:
//!
//! * the [`Strategy`] trait with range, tuple, [`Just`], [`any`], and
//!   [`collection::vec`] strategies plus [`Strategy::prop_filter`];
//! * the [`proptest!`] macro generating `#[test]` functions that run each
//!   property over many sampled cases;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`,
//!   and `prop_oneof!`.
//!
//! Sampling is deterministic: each test derives its stream from an FNV hash
//! of the test name, so failures reproduce across runs. `PROPTEST_CASES`
//! (default 64) controls the case count. Unlike real proptest there is no
//! shrinking — a failure panic reports the failing case's seed, and setting
//! `PROPTEST_SEED` to that value replays exactly that case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is irrelevant at test-sampling scale.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Restricts the strategy to values satisfying `pred`.
    ///
    /// Sampling retries until a value passes; panics if the predicate
    /// rejects 10 000 consecutive candidates.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 candidates", self.whence);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// The `any::<T>()` strategy over all values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span == 0 || span > u64::MAX as u128 {
                    return <$t>::arbitrary(rng);
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// A uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Self { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.variants.len() as u64) as usize;
        self.variants[idx].sample(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with length drawn from `size` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Why a test case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!`; try another.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// The most commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError,
    };
}

/// Runs `cases` sampled executions of a property. Used by [`proptest!`].
///
/// # Panics
///
/// Panics when the property fails, reporting the per-case seed. Setting
/// `PROPTEST_SEED` to that (decimal) value replays exactly that case's
/// input stream, once.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    if let Some(replay) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        // Replay mode: run the single case whose seed was reported.
        let mut rng = TestRng::new(replay);
        match case(&mut rng) {
            Ok(()) => return,
            Err(TestCaseError::Reject) => {
                panic!("{name}: replayed case (seed {replay}) was rejected by prop_assume!")
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: replayed case (seed {replay}) failed: {msg}")
            }
        }
    }
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    // FNV-1a over the test name: deterministic, distinct per test.
    let mut base = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        base = (base ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }

    let mut executed = 0u64;
    let mut attempts = 0u64;
    let max_attempts = cases.saturating_mul(64).max(1024);
    while executed < cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: prop_assume! rejected too many cases ({executed}/{cases} ran)"
        );
        let case_seed = base.wrapping_add(attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::new(case_seed);
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed at case {executed}: {msg}\n\
                     replay with PROPTEST_SEED={case_seed}"
                )
            }
        }
    }
}

/// Declares property tests. Each function body runs once per sampled case.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __ba_strategies = ( $( $strat, )+ );
                $crate::run_cases(stringify!($name), |__ba_rng| {
                    let ( $($pat,)+ ) =
                        $crate::Strategy::sample(&__ba_strategies, __ba_rng);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Discards the current case if its sampled inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// A uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 5usize..=9, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Tuple + filter strategies compose.
        #[test]
        fn filtered_tuples((a, b) in (0u32..100, 0u32..100).prop_filter("a<b", |(a, b)| a < b)) {
            prop_assert!(a < b, "{} !< {}", a, b);
        }

        #[test]
        fn assume_rejects(n in 0u64..8) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn oneof_and_collections(
            choice in prop_oneof![Just(1u8), Just(2u8)],
            v in crate::collection::vec(any::<u64>(), 1..20),
        ) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(!v.is_empty() && v.len() < 20);
        }
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        super::run_cases("det", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        super::run_cases("det", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        super::run_cases("fail", |_| Err(super::TestCaseError::Fail("boom".into())));
    }
}
