//! Property-based tests for the Bloom filter.

use ba_bloom::{BloomFilter, ProbeStrategy};
use proptest::prelude::*;

fn strategies() -> impl Strategy<Value = ProbeStrategy> {
    prop_oneof![
        Just(ProbeStrategy::Independent),
        Just(ProbeStrategy::DoubleHashing),
        Just(ProbeStrategy::EnhancedDouble),
    ]
}

proptest! {
    /// The defining guarantee: no false negatives, ever.
    #[test]
    fn no_false_negatives(
        strategy in strategies(),
        m in 64u64..10_000,
        k in 1u32..12,
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut f = BloomFilter::new(m, k, strategy, seed);
        for &key in &keys {
            f.insert(key);
        }
        for &key in &keys {
            prop_assert!(f.contains(key), "lost key {key}");
        }
        prop_assert_eq!(f.items(), keys.len() as u64);
    }

    /// Fill ratio is monotone in insertions and bounded by k·items/m.
    #[test]
    fn fill_ratio_bounded(
        strategy in strategies(),
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let m = 4096u64;
        let k = 5u32;
        let mut f = BloomFilter::new(m, k, strategy, seed);
        let mut last = 0.0;
        for &key in &keys {
            f.insert(key);
            let now = f.fill_ratio();
            prop_assert!(now >= last, "fill ratio decreased");
            last = now;
        }
        prop_assert!(last <= (k as f64 * keys.len() as f64 / m as f64).min(1.0) + 1e-12);
    }

    /// Sizing honours the standard formulas' monotonicity: smaller target
    /// rate → more bits.
    #[test]
    fn sizing_monotone(n in 100u64..100_000) {
        let loose = BloomFilter::with_rate(n, 0.1, ProbeStrategy::DoubleHashing, 0);
        let tight = BloomFilter::with_rate(n, 0.001, ProbeStrategy::DoubleHashing, 0);
        prop_assert!(tight.bits() > loose.bits());
        prop_assert!(tight.k() >= loose.k());
    }

    /// Lookups are deterministic: two filters with identical construction
    /// agree on every query.
    #[test]
    fn lookups_deterministic(
        strategy in strategies(),
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..50),
        queries in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let build = || {
            let mut f = BloomFilter::new(2048, 4, strategy, seed);
            for &key in &keys {
                f.insert(key);
            }
            f
        };
        let f1 = build();
        let f2 = build();
        for &q in &queries {
            prop_assert_eq!(f1.contains(q), f2.contains(q));
        }
    }
}
