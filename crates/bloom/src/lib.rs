//! Bloom filters: k independent hashes vs double hashing.
//!
//! The paper's related-work section singles out Kirsch & Mitzenmacher
//! ("Less hashing, same performance: Building a better Bloom filter",
//! RSA 2008): setting the k Bloom-filter probe positions by double hashing
//! (`g1 + i·g2 mod m`) costs two hash computations instead of k with
//! *asymptotically no loss* in false-positive rate — the same phenomenon
//! the paper establishes for balanced allocations. This crate implements
//! both variants so the harness can demonstrate the equivalence in a second
//! domain.
//!
//! Items are abstract `u64` keys; "hashing" a key means seeding a small
//! deterministic mixer with it, so the filter is self-contained and
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ba_rng::{Rng64, SplitMix64};

/// How a [`BloomFilter`] derives its `k` probe positions for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeStrategy {
    /// `k` independent hash values (the textbook construction).
    Independent,
    /// Double hashing: positions `h1 + i·h2 mod m` (Kirsch–Mitzenmacher).
    /// `h2` is forced odd so that, for power-of-two `m`, successive probes
    /// never collapse onto a short cycle.
    DoubleHashing,
    /// Enhanced double hashing: `h1 + i·h2 + i(i²−i)/6 ... ` — we use the
    /// triangular-increment variant `h2 += i` from Dillinger–Manolios,
    /// which breaks the arithmetic-progression structure at negligible
    /// cost.
    EnhancedDouble,
}

/// A fixed-size Bloom filter over `u64` keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: u64,
    k: u32,
    strategy: ProbeStrategy,
    seed: u64,
    items: u64,
}

impl BloomFilter {
    /// Creates a filter with `m` bits and `k` probes per key.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `k == 0`.
    pub fn new(m: u64, k: u32, strategy: ProbeStrategy, seed: u64) -> Self {
        assert!(m > 0, "need at least one bit");
        assert!(k > 0, "need at least one probe");
        Self {
            bits: vec![0u64; m.div_ceil(64) as usize],
            m,
            k,
            strategy,
            seed,
            items: 0,
        }
    }

    /// Sizes a filter for `n` expected items at false-positive target `p`
    /// using the standard formulas `m = −n ln p / (ln 2)²`, `k = m/n ln 2`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 0` and `0 < p < 1`.
    pub fn with_rate(n: u64, p: f64, strategy: ProbeStrategy, seed: u64) -> Self {
        assert!(n > 0, "need at least one expected item");
        assert!(p > 0.0 && p < 1.0, "false-positive target must be in (0,1)");
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n as f64) * p.ln() / (ln2 * ln2)).ceil().max(64.0) as u64;
        let k = ((m as f64 / n as f64) * ln2).round().max(1.0) as u32;
        Self::new(m, k, strategy, seed)
    }

    /// Number of bits `m`.
    pub fn bits(&self) -> u64 {
        self.m
    }

    /// Number of probes `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of inserted items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The probe strategy.
    pub fn strategy(&self) -> ProbeStrategy {
        self.strategy
    }

    /// Fraction of bits set (the fill ratio that determines the FPR).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.m as f64
    }

    /// Two 64-bit hash values for a key (the only "real" hashing done).
    #[inline]
    fn hash_pair(&self, key: u64) -> (u64, u64) {
        let h1 = SplitMix64::mix(key ^ self.seed);
        let h2 = SplitMix64::mix(h1 ^ 0x9E37_79B9_7F4A_7C15);
        (h1, h2)
    }

    /// Visits the k probe positions for `key`.
    #[inline]
    fn probes(&self, key: u64, mut visit: impl FnMut(u64)) {
        match self.strategy {
            ProbeStrategy::Independent => {
                // k independent values from a key-seeded stream: this is
                // the idealized construction (each probe a fresh hash).
                let mut stream = SplitMix64::new(key ^ self.seed);
                for _ in 0..self.k {
                    visit(stream.next_u64() % self.m);
                }
            }
            ProbeStrategy::DoubleHashing => {
                let (h1, h2) = self.hash_pair(key);
                let stride = h2 | 1;
                let mut pos = h1 % self.m;
                let step = stride % self.m;
                for _ in 0..self.k {
                    visit(pos);
                    pos += step;
                    if pos >= self.m {
                        pos -= self.m;
                    }
                }
            }
            ProbeStrategy::EnhancedDouble => {
                let (h1, h2) = self.hash_pair(key);
                let mut pos = h1 % self.m;
                let mut step = (h2 | 1) % self.m;
                for i in 0..self.k as u64 {
                    visit(pos);
                    pos = (pos + step) % self.m;
                    step = (step + i) % self.m;
                }
            }
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let m = self.m;
        // Collect positions first to appease the borrow checker cheaply
        // (k is tiny); set bits after.
        let mut positions = [0u64; 64];
        let mut count = 0usize;
        self.probes(key, |p| {
            debug_assert!(p < m);
            if count < positions.len() {
                positions[count] = p;
                count += 1;
            }
        });
        for &p in &positions[..count] {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
        self.items += 1;
    }

    /// Tests membership: `false` means definitely absent; `true` means
    /// present or a false positive.
    pub fn contains(&self, key: u64) -> bool {
        let mut all = true;
        self.probes(key, |p| {
            if self.bits[(p / 64) as usize] & (1u64 << (p % 64)) == 0 {
                all = false;
            }
        });
        all
    }

    /// Empirical false-positive rate measured on `queries` keys drawn from
    /// a disjoint key range (keys with the top bit set, assuming inserts
    /// used keys without it).
    pub fn measure_fpr<R: Rng64>(&self, queries: u64, rng: &mut R) -> f64 {
        assert!(queries > 0, "need at least one query");
        let mut hits = 0u64;
        for _ in 0..queries {
            let key = rng.next_u64() | (1 << 63);
            if self.contains(key) {
                hits += 1;
            }
        }
        hits as f64 / queries as f64
    }

    /// The theoretical FPR `(1 − e^{−kn/m})^k` at the current fill.
    pub fn theoretical_fpr(&self) -> f64 {
        let exponent = -(self.k as f64) * self.items as f64 / self.m as f64;
        (1.0 - exponent.exp()).powi(self.k as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    const STRATEGIES: [ProbeStrategy; 3] = [
        ProbeStrategy::Independent,
        ProbeStrategy::DoubleHashing,
        ProbeStrategy::EnhancedDouble,
    ];

    #[test]
    fn no_false_negatives() {
        for strategy in STRATEGIES {
            let mut f = BloomFilter::new(1 << 14, 5, strategy, 7);
            let keys: Vec<u64> = (0..1000).map(|i| i * 2654435761).collect();
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                assert!(f.contains(k), "{strategy:?}: lost key {k}");
            }
        }
    }

    #[test]
    fn fpr_close_to_theory_all_strategies() {
        let n = 10_000u64;
        for strategy in STRATEGIES {
            let mut f = BloomFilter::with_rate(n, 0.01, strategy, 3);
            for i in 0..n {
                f.insert(i); // top bit clear
            }
            let theory = f.theoretical_fpr();
            let mut rng = Xoshiro256StarStar::seed_from_u64(1);
            let measured = f.measure_fpr(200_000, &mut rng);
            assert!(
                (measured - theory).abs() < 0.005,
                "{strategy:?}: measured {measured} vs theory {theory}"
            );
        }
    }

    #[test]
    fn double_hashing_matches_independent_fpr() {
        // The Kirsch–Mitzenmacher claim: same FPR within noise.
        let n = 20_000u64;
        let build = |strategy| {
            let mut f = BloomFilter::with_rate(n, 0.01, strategy, 11);
            for i in 0..n {
                f.insert(i);
            }
            let mut rng = Xoshiro256StarStar::seed_from_u64(2);
            f.measure_fpr(300_000, &mut rng)
        };
        let independent = build(ProbeStrategy::Independent);
        let double = build(ProbeStrategy::DoubleHashing);
        let enhanced = build(ProbeStrategy::EnhancedDouble);
        assert!(
            (independent - double).abs() < 0.003,
            "independent {independent} vs double {double}"
        );
        assert!(
            (independent - enhanced).abs() < 0.003,
            "independent {independent} vs enhanced {enhanced}"
        );
    }

    #[test]
    fn with_rate_sizes_sensibly() {
        let f = BloomFilter::with_rate(1000, 0.01, ProbeStrategy::DoubleHashing, 0);
        // Standard sizing: ~9.6 bits/key, k ~ 7.
        assert!((9000..11000).contains(&f.bits()), "m = {}", f.bits());
        assert!((6..=8).contains(&f.k()), "k = {}", f.k());
    }

    #[test]
    fn fill_ratio_grows_with_inserts() {
        let mut f = BloomFilter::new(1 << 10, 4, ProbeStrategy::DoubleHashing, 0);
        assert_eq!(f.fill_ratio(), 0.0);
        for i in 0..100 {
            f.insert(i);
        }
        let after100 = f.fill_ratio();
        assert!(after100 > 0.0);
        for i in 100..200 {
            f.insert(i);
        }
        assert!(f.fill_ratio() > after100);
        assert_eq!(f.items(), 200);
    }

    #[test]
    fn empty_filter_contains_nothing_usually() {
        let f = BloomFilter::new(1 << 12, 5, ProbeStrategy::Independent, 9);
        let mut hits = 0;
        for i in 0..1000u64 {
            if f.contains(i) {
                hits += 1;
            }
        }
        assert_eq!(hits, 0, "empty filter must reject everything");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        BloomFilter::new(0, 3, ProbeStrategy::Independent, 0);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_rejected() {
        BloomFilter::new(64, 0, ProbeStrategy::Independent, 0);
    }

    #[test]
    fn non_multiple_of_64_bits_work() {
        let mut f = BloomFilter::new(1000, 3, ProbeStrategy::DoubleHashing, 5);
        for i in 0..100 {
            f.insert(i);
        }
        for i in 0..100 {
            assert!(f.contains(i));
        }
    }
}
