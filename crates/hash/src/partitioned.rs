//! The d-left (Vöcking) subtable layout as an adapter over any scheme.

use crate::ChoiceScheme;
use ba_rng::Rng64;

/// Maps an inner scheme over `m = n/d` bins onto Vöcking's `d`-left layout:
/// subtable `k` occupies bins `[k·m, (k+1)·m)`, and the `k`-th choice of the
/// inner scheme is placed in subtable `k`.
///
/// * `Partitioned::new(FullyRandom::new(m, d, Replacement::With), n)` is
///   exactly Vöcking's original scheme: one independent uniform choice per
///   subtable. (Replacement is irrelevant across subtables — the offsets
///   make collisions impossible — but `With` matches "independent".)
/// * `Partitioned::new(DoubleHashing::new(m, d), n)` is the paper's
///   double-hashing variant of d-left (Table 7): one `(f, g)` pair drawn
///   over the subtable size, probe `k` landing in subtable `k`.
#[derive(Debug, Clone)]
pub struct Partitioned<S> {
    inner: S,
    n: u64,
    subtable: u64,
}

impl<S: ChoiceScheme> Partitioned<S> {
    /// Wraps `inner` (a scheme over `n / inner.d()` bins) into the `d`-left
    /// layout over `n` bins.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is an exact multiple of `inner.d()` with
    /// `n / inner.d() == inner.n()`.
    pub fn new(inner: S, n: u64) -> Self {
        let d = inner.d() as u64;
        assert!(d >= 1, "inner scheme must make at least one choice");
        assert_eq!(
            n % d,
            0,
            "table size {n} must divide evenly into {d} subtables"
        );
        let subtable = n / d;
        assert_eq!(
            inner.n(),
            subtable,
            "inner scheme covers {} bins but each subtable has {subtable}",
            inner.n()
        );
        Self { inner, n, subtable }
    }

    /// The subtable size `n / d`.
    pub fn subtable_size(&self) -> u64 {
        self.subtable
    }

    /// A reference to the wrapped scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Shifts the k-th choice into subtable k.
    #[inline]
    fn offset_into_subtables(&self, out: &mut [u64]) {
        let mut offset = 0u64;
        for slot in out.iter_mut() {
            *slot += offset;
            offset += self.subtable;
        }
    }
}

impl<S: ChoiceScheme> ChoiceScheme for Partitioned<S> {
    fn n(&self) -> u64 {
        self.n
    }

    fn d(&self) -> usize {
        self.inner.d()
    }

    #[inline]
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        self.inner.fill_choices(rng, out);
        self.offset_into_subtables(out);
    }

    #[inline]
    fn choices_for(&self, key: u64, salt: u64, out: &mut [u64]) {
        // Delegate to the inner scheme's keyed form (which may be an
        // explicit override, e.g. double hashing's keyed f/g), then lay
        // the probes out across the subtables as usual.
        self.inner.choices_for(key, salt, out);
        self.offset_into_subtables(out);
    }

    fn choices_for_batch(&self, keys: &[u64], salt: u64, out: &mut [u64]) {
        // The inner scheme's batch kernel fills the whole matrix, then
        // each row shifts into the subtable layout.
        self.inner.choices_for_batch(keys, salt, out);
        let d = self.inner.d();
        for row in out.chunks_exact_mut(d) {
            self.offset_into_subtables(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DoubleHashing, FullyRandom, Replacement};
    use ba_rng::Xoshiro256StarStar;

    #[test]
    fn choice_k_lands_in_subtable_k() {
        let n = 64u64;
        let d = 4usize;
        let m = n / d as u64;
        let schemes: Vec<Box<dyn ChoiceScheme>> = vec![
            Box::new(Partitioned::new(
                FullyRandom::new(m, d, Replacement::With),
                n,
            )),
            Box::new(Partitioned::new(DoubleHashing::new(m, d), n)),
        ];
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let mut buf = vec![0u64; d];
        for scheme in &schemes {
            for _ in 0..300 {
                scheme.fill_choices(&mut rng, &mut buf);
                for (k, &c) in buf.iter().enumerate() {
                    let lo = k as u64 * m;
                    assert!(
                        (lo..lo + m).contains(&c),
                        "choice {c} at position {k} outside subtable [{lo}, {})",
                        lo + m
                    );
                }
            }
        }
    }

    #[test]
    fn subtable_size_accessor() {
        let p = Partitioned::new(FullyRandom::new(16, 4, Replacement::With), 64);
        assert_eq!(p.subtable_size(), 16);
        assert_eq!(p.inner().n(), 16);
    }

    #[test]
    fn per_subtable_marginals_uniform() {
        let n = 32u64;
        let d = 4usize;
        let m = n / d as u64;
        let scheme = Partitioned::new(DoubleHashing::new(m, d), n);
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let trials = 80_000;
        let mut counts = vec![0u64; n as usize];
        let mut buf = vec![0u64; d];
        for _ in 0..trials {
            scheme.fill_choices(&mut rng, &mut buf);
            for &c in &buf {
                counts[c as usize] += 1;
            }
        }
        // Each bin is hit once per ball when its subtable's choice lands on
        // it: expectation trials / m.
        let expect = trials as f64 / m as f64;
        for (bin, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "bin {bin}: {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_indivisible_table() {
        Partitioned::new(FullyRandom::new(10, 3, Replacement::With), 32);
    }

    #[test]
    #[should_panic(expected = "subtable")]
    fn rejects_mismatched_inner_size() {
        Partitioned::new(FullyRandom::new(10, 4, Replacement::With), 64);
    }
}
