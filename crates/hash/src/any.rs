//! A closed enum over the provided schemes, for configuration-driven code.

use crate::{
    ChoiceScheme, ContiguousBlocks, DoubleHashing, FullyRandom, OneChoice, Partitioned, Replacement,
};
use ba_rng::Rng64;

/// Any of the built-in choice schemes, selected at runtime.
///
/// The experiment harness parses scheme names from the command line; this
/// enum gives it a single concrete type without boxing in the hot path
/// (enum dispatch compiles to a jump table).
#[derive(Debug, Clone)]
pub enum AnyScheme {
    /// `d` independent uniform choices.
    FullyRandom(FullyRandom),
    /// Double hashing `f + k·g mod n`.
    DoubleHashing(DoubleHashing),
    /// Kenthapadi–Panigrahy contiguous blocks.
    Blocks(ContiguousBlocks),
    /// Vöcking layout over fully random per-subtable choices.
    DLeftRandom(Partitioned<FullyRandom>),
    /// Vöcking layout over double hashing.
    DLeftDouble(Partitioned<DoubleHashing>),
    /// Single uniform choice.
    OneChoice(OneChoice),
}

impl AnyScheme {
    /// Builds a scheme by name: `random`, `double`, `blocks`,
    /// `dleft-random`, `dleft-double`, or `one`.
    ///
    /// Returns `None` for an unrecognized name. `n` must be divisible by
    /// `d` for the `dleft-*` variants.
    pub fn by_name(name: &str, n: u64, d: usize) -> Option<Self> {
        Some(match name {
            "random" => Self::FullyRandom(FullyRandom::new(n, d, Replacement::Without)),
            "random-replace" => Self::FullyRandom(FullyRandom::new(n, d, Replacement::With)),
            "double" => Self::DoubleHashing(DoubleHashing::new(n, d)),
            "blocks" => Self::Blocks(ContiguousBlocks::new(n, d)),
            "dleft-random" => Self::DLeftRandom(Partitioned::new(
                FullyRandom::new(n / d as u64, d, Replacement::With),
                n,
            )),
            "dleft-double" => {
                Self::DLeftDouble(Partitioned::new(DoubleHashing::new(n / d as u64, d), n))
            }
            "one" => Self::OneChoice(OneChoice::new(n)),
            _ => return None,
        })
    }

    /// The names accepted by [`AnyScheme::by_name`].
    pub fn names() -> &'static [&'static str] {
        &[
            "random",
            "random-replace",
            "double",
            "blocks",
            "dleft-random",
            "dleft-double",
            "one",
        ]
    }
}

impl ChoiceScheme for AnyScheme {
    fn n(&self) -> u64 {
        match self {
            Self::FullyRandom(s) => s.n(),
            Self::DoubleHashing(s) => s.n(),
            Self::Blocks(s) => s.n(),
            Self::DLeftRandom(s) => s.n(),
            Self::DLeftDouble(s) => s.n(),
            Self::OneChoice(s) => s.n(),
        }
    }

    fn d(&self) -> usize {
        match self {
            Self::FullyRandom(s) => s.d(),
            Self::DoubleHashing(s) => s.d(),
            Self::Blocks(s) => s.d(),
            Self::DLeftRandom(s) => s.d(),
            Self::DLeftDouble(s) => s.d(),
            Self::OneChoice(s) => s.d(),
        }
    }

    #[inline]
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        match self {
            Self::FullyRandom(s) => s.fill_choices(rng, out),
            Self::DoubleHashing(s) => s.fill_choices(rng, out),
            Self::Blocks(s) => s.fill_choices(rng, out),
            Self::DLeftRandom(s) => s.fill_choices(rng, out),
            Self::DLeftDouble(s) => s.fill_choices(rng, out),
            Self::OneChoice(s) => s.fill_choices(rng, out),
        }
    }

    #[inline]
    fn choices_for(&self, key: u64, salt: u64, out: &mut [u64]) {
        match self {
            Self::FullyRandom(s) => s.choices_for(key, salt, out),
            Self::DoubleHashing(s) => s.choices_for(key, salt, out),
            Self::Blocks(s) => s.choices_for(key, salt, out),
            Self::DLeftRandom(s) => s.choices_for(key, salt, out),
            Self::DLeftDouble(s) => s.choices_for(key, salt, out),
            Self::OneChoice(s) => s.choices_for(key, salt, out),
        }
    }

    #[inline]
    fn choices_for_batch(&self, keys: &[u64], salt: u64, out: &mut [u64]) {
        // One dispatch for the whole batch: the inner scheme's batch
        // kernel (hand-unrolled for double hashing) runs monomorphized.
        match self {
            Self::FullyRandom(s) => s.choices_for_batch(keys, salt, out),
            Self::DoubleHashing(s) => s.choices_for_batch(keys, salt, out),
            Self::Blocks(s) => s.choices_for_batch(keys, salt, out),
            Self::DLeftRandom(s) => s.choices_for_batch(keys, salt, out),
            Self::DLeftDouble(s) => s.choices_for_batch(keys, salt, out),
            Self::OneChoice(s) => s.choices_for_batch(keys, salt, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    #[test]
    fn by_name_builds_every_listed_scheme() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for &name in AnyScheme::names() {
            let d = if name == "one" { 1 } else { 4 };
            let scheme =
                AnyScheme::by_name(name, 64, d).unwrap_or_else(|| panic!("{name} should parse"));
            assert_eq!(scheme.n(), 64, "{name}");
            assert_eq!(scheme.d(), d, "{name}");
            let mut buf = vec![0u64; d];
            scheme.fill_choices(&mut rng, &mut buf);
            assert!(buf.iter().all(|&c| c < 64), "{name}: {buf:?}");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(AnyScheme::by_name("triple", 64, 3).is_none());
    }

    #[test]
    fn one_choice_via_name_ignores_extra_choices() {
        // "one" always has d = 1 regardless of the requested d.
        let scheme = AnyScheme::by_name("one", 64, 1).unwrap();
        assert_eq!(scheme.d(), 1);
    }
}
