//! Choice-sequence schemes for balanced allocation.
//!
//! A balanced-allocation process needs, for each arriving ball, a vector of
//! `d` bin indices. How that vector is generated is *the* object of study in
//! "Balanced Allocations and Double Hashing" (Mitzenmacher, SPAA 2014):
//!
//! * [`FullyRandom`] — `d` independent uniform choices, with or without
//!   replacement (the paper's baseline, its "fully random hashing");
//! * [`DoubleHashing`] — the paper's subject: choices `f + k·g mod n` for
//!   `k = 0..d`, with `f` uniform on `[0,n)` and `g` uniform over residues
//!   coprime to `n`;
//! * [`ContiguousBlocks`] — the Kenthapadi–Panigrahy variant (two random
//!   choices, each expanded into a contiguous block of `d/2` bins), included
//!   for ablation against another reduced-randomness scheme;
//! * [`Partitioned`] — adapter that maps any scheme over `n/d` bins onto
//!   Vöcking's `d`-left layout (one choice per subtable, left to right);
//! * [`OneChoice`] — the classical single-choice baseline.
//!
//! All schemes implement the object-safe [`ChoiceScheme`] trait and write
//! their choices into a caller-provided slice, so the simulator's hot loop
//! performs zero allocation per ball.
//!
//! # Example
//!
//! ```
//! use ba_hash::{ChoiceScheme, DoubleHashing, FullyRandom, Replacement};
//! use ba_rng::{Rng64, Xoshiro256StarStar};
//!
//! let n = 1 << 10;
//! let dh = DoubleHashing::new(n, 3);
//! let fr = FullyRandom::new(n, 3, Replacement::Without);
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let mut buf = [0u64; 3];
//! dh.fill_choices(&mut rng, &mut buf);
//! assert!(buf.iter().all(|&b| b < n));
//! // Double hashing choices are always distinct (stride coprime to n):
//! assert!(buf[0] != buf[1] && buf[1] != buf[2] && buf[0] != buf[2]);
//! fr.fill_choices(&mut rng, &mut buf);
//! assert!(buf.iter().all(|&b| b < n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any;
mod blocks;
mod double_hashing;
mod fully_random;
mod partitioned;

pub use any::AnyScheme;
pub use blocks::ContiguousBlocks;
pub use double_hashing::DoubleHashing;
pub use fully_random::{FullyRandom, OneChoice, Replacement};
pub use partitioned::Partitioned;

use ba_rng::Rng64;

/// A generator of `d` bin choices per ball over a table of `n` bins.
///
/// Implementations must be `Send + Sync`: the experiment harness shares one
/// immutable scheme across worker threads, with all mutable state confined
/// to the per-thread RNG.
pub trait ChoiceScheme: Send + Sync {
    /// The number of bins `n`.
    fn n(&self) -> u64;

    /// The number of choices per ball `d`.
    fn d(&self) -> usize;

    /// Writes the choices for one ball into `out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != self.d()`.
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]);

    /// Convenience wrapper returning the choices as a fresh vector.
    ///
    /// Test/analysis code only — hot loops should reuse a buffer through
    /// [`ChoiceScheme::fill_choices`].
    fn choices(&self, rng: &mut dyn Rng64) -> Vec<u64> {
        let mut out = vec![0u64; self.d()];
        self.fill_choices(rng, &mut out);
        out
    }
}

impl<S: ChoiceScheme + ?Sized> ChoiceScheme for &S {
    fn n(&self) -> u64 {
        (**self).n()
    }
    fn d(&self) -> usize {
        (**self).d()
    }
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        (**self).fill_choices(rng, out)
    }
}

/// Validates common scheme parameters; shared by constructors.
pub(crate) fn validate_params(n: u64, d: usize) {
    assert!(n >= 1, "need at least one bin");
    assert!(d >= 1, "need at least one choice per ball");
    assert!(
        (d as u64) <= n,
        "cannot make {d} distinct choices over {n} bins"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    /// All schemes must produce indices < n and exactly d of them.
    #[test]
    fn all_schemes_produce_valid_indices() {
        let n = 64u64;
        let d = 4usize;
        let schemes: Vec<Box<dyn ChoiceScheme>> = vec![
            Box::new(FullyRandom::new(n, d, Replacement::With)),
            Box::new(FullyRandom::new(n, d, Replacement::Without)),
            Box::new(DoubleHashing::new(n, d)),
            Box::new(ContiguousBlocks::new(n, d)),
            Box::new(Partitioned::new(DoubleHashing::new(n / d as u64, d), n)),
            Box::new(Partitioned::new(
                FullyRandom::new(n / d as u64, d, Replacement::With),
                n,
            )),
        ];
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        for scheme in &schemes {
            assert_eq!(scheme.n(), n);
            assert_eq!(scheme.d(), d);
            let mut buf = vec![0u64; d];
            for _ in 0..500 {
                scheme.fill_choices(&mut rng, &mut buf);
                for &c in buf.iter() {
                    assert!(c < n, "choice {c} out of range for n={n}");
                }
            }
        }
    }

    #[test]
    fn choices_vec_matches_fill() {
        let scheme = DoubleHashing::new(101, 3);
        let mut r1 = Xoshiro256StarStar::seed_from_u64(5);
        let mut r2 = Xoshiro256StarStar::seed_from_u64(5);
        let v = scheme.choices(&mut r1);
        let mut buf = [0u64; 3];
        scheme.fill_choices(&mut r2, &mut buf);
        assert_eq!(v.as_slice(), &buf);
    }

    #[test]
    fn scheme_trait_object_through_reference() {
        let scheme = FullyRandom::new(10, 2, Replacement::Without);
        let by_ref: &dyn ChoiceScheme = &scheme;
        let nested = &by_ref;
        assert_eq!(nested.n(), 10);
        assert_eq!(nested.d(), 2);
    }
}
