//! Choice-sequence schemes for balanced allocation.
//!
//! A balanced-allocation process needs, for each arriving ball, a vector of
//! `d` bin indices. How that vector is generated is *the* object of study in
//! "Balanced Allocations and Double Hashing" (Mitzenmacher, SPAA 2014):
//!
//! * [`FullyRandom`] — `d` independent uniform choices, with or without
//!   replacement (the paper's baseline, its "fully random hashing");
//! * [`DoubleHashing`] — the paper's subject: choices `f + k·g mod n` for
//!   `k = 0..d`, with `f` uniform on `[0,n)` and `g` uniform over residues
//!   coprime to `n`;
//! * [`ContiguousBlocks`] — the Kenthapadi–Panigrahy variant (two random
//!   choices, each expanded into a contiguous block of `d/2` bins), included
//!   for ablation against another reduced-randomness scheme;
//! * [`Partitioned`] — adapter that maps any scheme over `n/d` bins onto
//!   Vöcking's `d`-left layout (one choice per subtable, left to right);
//! * [`OneChoice`] — the classical single-choice baseline.
//!
//! All schemes implement the object-safe [`ChoiceScheme`] trait and write
//! their choices into a caller-provided slice, so the simulator's hot loop
//! performs zero allocation per ball.
//!
//! # Example
//!
//! ```
//! use ba_hash::{ChoiceScheme, DoubleHashing, FullyRandom, Replacement};
//! use ba_rng::{Rng64, Xoshiro256StarStar};
//!
//! let n = 1 << 10;
//! let dh = DoubleHashing::new(n, 3);
//! let fr = FullyRandom::new(n, 3, Replacement::Without);
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let mut buf = [0u64; 3];
//! dh.fill_choices(&mut rng, &mut buf);
//! assert!(buf.iter().all(|&b| b < n));
//! // Double hashing choices are always distinct (stride coprime to n):
//! assert!(buf[0] != buf[1] && buf[1] != buf[2] && buf[0] != buf[2]);
//! fr.fill_choices(&mut rng, &mut buf);
//! assert!(buf.iter().all(|&b| b < n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any;
mod blocks;
mod double_hashing;
mod fully_random;
mod partitioned;

pub use any::AnyScheme;
pub use blocks::ContiguousBlocks;
pub use double_hashing::DoubleHashing;
pub use fully_random::{FullyRandom, OneChoice, Replacement};
pub use partitioned::Partitioned;

use ba_rng::{Rng64, SplitMix64};

/// Domain-separation constant for keyed choice derivation: keeps the
/// `(key, salt)` hash streams disjoint from [`ba_rng::SeedSequence`]'s
/// seed-derivation mixes even when keys coincide with trial indices.
const KEYED_DOMAIN: u64 = 0xD0B1_E4A5_11C3_57ED;

/// The deterministic hash stream that keyed choice derivation draws from:
/// a [`SplitMix64`] whose start state is a two-round finalizer mix of
/// `(key, salt)`.
///
/// This is what makes [`ChoiceScheme::choices_for`] a *pure* function:
/// the stream — and therefore the derived `f`/`g` pair and the whole
/// probe sequence — depends only on the key and the table's salt, never
/// on how many balls were placed before.
#[inline]
pub fn keyed_stream(key: u64, salt: u64) -> SplitMix64 {
    SplitMix64::new(SplitMix64::mix(key ^ KEYED_DOMAIN).wrapping_add(SplitMix64::mix(salt)))
}

/// Where a ball's choice vector comes from.
///
/// The paper's simulations use the *process model*: every ball draws fresh
/// choices from an RNG stream, so a deleted-and-re-inserted key gets new
/// bins. A production hash table uses the *keyed model*: choices are a
/// function of the key (`f`/`g` derived by hashing it), so re-insertion
/// replays the exact `f + k·g` probe sequence. This enum names the two so
/// that the allocation core, trial harness, and serving engine can run
/// either through one code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChoiceSource {
    /// Draw fresh choices from the caller's RNG stream (process model).
    Stream,
    /// Derive choices from `hash(key, salt)` (hash-table model).
    Keyed {
        /// The table-wide salt mixed into every key's derivation.
        salt: u64,
    },
}

impl ChoiceSource {
    /// Fills `out` with the choices for one ball: from `rng` in stream
    /// mode, from `(key, salt)` in keyed mode. `rng` is untouched in keyed
    /// mode, so interleaving the two sources never shifts the stream.
    #[inline]
    pub fn fill<S: ChoiceScheme + ?Sized>(
        &self,
        scheme: &S,
        key: u64,
        rng: &mut dyn Rng64,
        out: &mut [u64],
    ) {
        match *self {
            ChoiceSource::Stream => scheme.fill_choices(rng, out),
            ChoiceSource::Keyed { salt } => scheme.choices_for(key, salt, out),
        }
    }
}

/// A generator of `d` bin choices per ball over a table of `n` bins.
///
/// Implementations must be `Send + Sync`: the experiment harness shares one
/// immutable scheme across worker threads, with all mutable state confined
/// to the per-thread RNG.
pub trait ChoiceScheme: Send + Sync {
    /// The number of bins `n`.
    fn n(&self) -> u64;

    /// The number of choices per ball `d`.
    fn d(&self) -> usize;

    /// Writes the choices for one ball into `out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != self.d()`.
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]);

    /// Writes the choices for the ball identified by `key` into `out` —
    /// the keyed form of the scheme.
    ///
    /// Unlike [`ChoiceScheme::fill_choices`], this is a **pure function of
    /// `(key, salt)`**: deriving choices for the same key twice yields the
    /// identical probe sequence, no matter what was placed in between.
    /// That replayability is what lets delete→re-insert traffic exercise
    /// the paper's fixed-probe claim in a real hash table.
    ///
    /// The default implementation draws the scheme's usual hash values
    /// from the deterministic [`keyed_stream`] of `(key, salt)`, so every
    /// scheme is keyed-capable and statistically identical to its stream
    /// form; schemes with named hash values (double hashing's `f`/`g`)
    /// may override it with an explicit derivation.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != self.d()`.
    fn choices_for(&self, key: u64, salt: u64, out: &mut [u64]) {
        let mut rng = keyed_stream(key, salt);
        self.fill_choices(&mut rng, out);
    }

    /// Writes the keyed choices for a whole batch of keys into a flat
    /// row-major matrix: row `i` — `out[i * d .. (i + 1) * d]` — holds
    /// the choices for `keys[i]`.
    ///
    /// **Bit-identical by contract** to calling
    /// [`ChoiceScheme::choices_for`] once per key: the batch form exists
    /// purely so hot loops can amortize dispatch and give the compiler
    /// independent derivations to overlap (see the hand-unrolled
    /// [`DoubleHashing`] override). The default
    /// implementation is the per-key loop.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != keys.len() * self.d()`.
    fn choices_for_batch(&self, keys: &[u64], salt: u64, out: &mut [u64]) {
        let d = self.d();
        assert_eq!(
            out.len(),
            keys.len() * d,
            "matrix must hold keys.len() * d choices"
        );
        for (&key, row) in keys.iter().zip(out.chunks_exact_mut(d.max(1))) {
            self.choices_for(key, salt, row);
        }
    }

    /// Convenience wrapper returning the choices as a fresh vector.
    ///
    /// Test/analysis code only — hot loops should reuse a buffer through
    /// [`ChoiceScheme::fill_choices`].
    fn choices(&self, rng: &mut dyn Rng64) -> Vec<u64> {
        let mut out = vec![0u64; self.d()];
        self.fill_choices(rng, &mut out);
        out
    }
}

impl<S: ChoiceScheme + ?Sized> ChoiceScheme for &S {
    fn n(&self) -> u64 {
        (**self).n()
    }
    fn d(&self) -> usize {
        (**self).d()
    }
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        (**self).fill_choices(rng, out)
    }
    fn choices_for(&self, key: u64, salt: u64, out: &mut [u64]) {
        (**self).choices_for(key, salt, out)
    }
    fn choices_for_batch(&self, keys: &[u64], salt: u64, out: &mut [u64]) {
        (**self).choices_for_batch(keys, salt, out)
    }
}

/// Validates common scheme parameters; shared by constructors.
pub(crate) fn validate_params(n: u64, d: usize) {
    assert!(n >= 1, "need at least one bin");
    assert!(d >= 1, "need at least one choice per ball");
    assert!(
        (d as u64) <= n,
        "cannot make {d} distinct choices over {n} bins"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    /// All schemes must produce indices < n and exactly d of them.
    #[test]
    fn all_schemes_produce_valid_indices() {
        let n = 64u64;
        let d = 4usize;
        let schemes: Vec<Box<dyn ChoiceScheme>> = vec![
            Box::new(FullyRandom::new(n, d, Replacement::With)),
            Box::new(FullyRandom::new(n, d, Replacement::Without)),
            Box::new(DoubleHashing::new(n, d)),
            Box::new(ContiguousBlocks::new(n, d)),
            Box::new(Partitioned::new(DoubleHashing::new(n / d as u64, d), n)),
            Box::new(Partitioned::new(
                FullyRandom::new(n / d as u64, d, Replacement::With),
                n,
            )),
        ];
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        for scheme in &schemes {
            assert_eq!(scheme.n(), n);
            assert_eq!(scheme.d(), d);
            let mut buf = vec![0u64; d];
            for _ in 0..500 {
                scheme.fill_choices(&mut rng, &mut buf);
                for &c in buf.iter() {
                    assert!(c < n, "choice {c} out of range for n={n}");
                }
            }
        }
    }

    #[test]
    fn choices_vec_matches_fill() {
        let scheme = DoubleHashing::new(101, 3);
        let mut r1 = Xoshiro256StarStar::seed_from_u64(5);
        let mut r2 = Xoshiro256StarStar::seed_from_u64(5);
        let v = scheme.choices(&mut r1);
        let mut buf = [0u64; 3];
        scheme.fill_choices(&mut r2, &mut buf);
        assert_eq!(v.as_slice(), &buf);
    }

    #[test]
    fn keyed_choices_are_pure_functions_of_key_and_salt() {
        // The replay contract behind the keyed engine mode: choices_for is
        // deterministic in (key, salt), sensitive to both, and in range.
        let n = 64u64;
        let d = 4usize;
        for &name in AnyScheme::names() {
            let d = if name == "one" { 1 } else { d };
            let scheme = AnyScheme::by_name(name, n, d).unwrap();
            let mut a = vec![0u64; d];
            let mut b = vec![0u64; d];
            for key in 0..200u64 {
                scheme.choices_for(key, 7, &mut a);
                scheme.choices_for(key, 7, &mut b);
                assert_eq!(a, b, "{name}: key {key} did not replay");
                assert!(a.iter().all(|&c| c < n), "{name}: {a:?}");
            }
            scheme.choices_for(3, 7, &mut a);
            scheme.choices_for(4, 7, &mut b);
            assert_ne!(a, b, "{name}: distinct keys collided");
            scheme.choices_for(3, 8, &mut b);
            assert_ne!(a, b, "{name}: salt ignored");
        }
    }

    #[test]
    fn choice_source_routes_to_stream_or_keyed() {
        let scheme = DoubleHashing::new(101, 3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut keyed = [0u64; 3];
        ChoiceSource::Keyed { salt: 9 }.fill(&scheme, 42, &mut rng, &mut keyed);
        let mut direct = [0u64; 3];
        scheme.choices_for(42, 9, &mut direct);
        assert_eq!(keyed, direct);
        // Keyed fill must not have consumed the stream.
        let mut fresh = Xoshiro256StarStar::seed_from_u64(2);
        assert_eq!(rng.next_u64(), fresh.next_u64());

        let mut rng1 = Xoshiro256StarStar::seed_from_u64(3);
        let mut rng2 = Xoshiro256StarStar::seed_from_u64(3);
        let mut streamed = [0u64; 3];
        ChoiceSource::Stream.fill(&scheme, 42, &mut rng1, &mut streamed);
        let mut reference = [0u64; 3];
        scheme.fill_choices(&mut rng2, &mut reference);
        assert_eq!(streamed, reference);
    }

    #[test]
    fn keyed_marginals_are_uniform() {
        // Keyed derivation must not skew the per-position marginals: over
        // many keys each bin is hit equally often at every probe position.
        let n = 8u64;
        let scheme = DoubleHashing::new(n, 3);
        let trials = 80_000u64;
        let mut counts = vec![[0u64; 3]; n as usize];
        let mut buf = [0u64; 3];
        for key in 0..trials {
            scheme.choices_for(key, 123, &mut buf);
            for (pos, &c) in buf.iter().enumerate() {
                counts[c as usize][pos] += 1;
            }
        }
        let expect = trials as f64 / n as f64;
        for (bin, row) in counts.iter().enumerate() {
            for (pos, &cnt) in row.iter().enumerate() {
                let c = cnt as f64;
                assert!(
                    (c - expect).abs() < 6.0 * expect.sqrt(),
                    "bin {bin} pos {pos}: {c} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn scheme_trait_object_through_reference() {
        let scheme = FullyRandom::new(10, 2, Replacement::Without);
        let by_ref: &dyn ChoiceScheme = &scheme;
        let nested = &by_ref;
        assert_eq!(nested.n(), 10);
        assert_eq!(nested.d(), 2);
    }
}
