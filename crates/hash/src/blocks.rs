//! Contiguous-block choices (Kenthapadi–Panigrahy).

use crate::{validate_params, ChoiceScheme};
use ba_rng::Rng64;

/// Two random choices expanded into contiguous blocks of `d/2` bins each.
///
/// Kenthapadi and Panigrahy (SODA 2006) showed that two uniform choices,
/// each yielding a contiguous run of `d/2` bins, retain the
/// `O(log log n)` maximum-load guarantee of `d` fully random choices. The
/// paper cites this as the closest prior reduced-randomness scheme; we
/// implement it so the harness can compare all three (fully random, double
/// hashing, blocks) under identical workloads.
///
/// For odd `d` the first block gets the extra bin (`ceil(d/2)` and
/// `floor(d/2)`).
#[derive(Debug, Clone)]
pub struct ContiguousBlocks {
    n: u64,
    d: usize,
}

impl ContiguousBlocks {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2` (a single block is just one random contiguous run —
    /// use [`crate::OneChoice`] or a one-block variant explicitly) or
    /// `d > n`.
    pub fn new(n: u64, d: usize) -> Self {
        validate_params(n, d);
        assert!(d >= 2, "block scheme needs d >= 2 (two blocks)");
        Self { n, d }
    }
}

impl ChoiceScheme for ContiguousBlocks {
    fn n(&self) -> u64 {
        self.n
    }

    fn d(&self) -> usize {
        self.d
    }

    #[inline]
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        assert_eq!(out.len(), self.d, "output buffer must hold d choices");
        let first_len = self.d - self.d / 2; // ceil(d/2)
        let (first, second) = out.split_at_mut(first_len);
        for block in [first, second] {
            if block.is_empty() {
                continue;
            }
            let start = rng.gen_range(self.n);
            let mut h = start;
            for slot in block.iter_mut() {
                *slot = h;
                h += 1;
                if h == self.n {
                    h = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    #[test]
    fn blocks_are_contiguous_runs() {
        let n = 32u64;
        let scheme = ContiguousBlocks::new(n, 6);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut buf = [0u64; 6];
        for _ in 0..300 {
            scheme.fill_choices(&mut rng, &mut buf);
            for w in buf[..3].windows(2).chain(buf[3..].windows(2)) {
                assert_eq!((w[0] + 1) % n, w[1], "not contiguous: {buf:?}");
            }
        }
    }

    #[test]
    fn odd_d_splits_ceil_floor() {
        let n = 32u64;
        let scheme = ContiguousBlocks::new(n, 5);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut buf = [0u64; 5];
        scheme.fill_choices(&mut rng, &mut buf);
        // First block of 3 contiguous, second block of 2 contiguous.
        assert_eq!((buf[0] + 1) % n, buf[1]);
        assert_eq!((buf[1] + 1) % n, buf[2]);
        assert_eq!((buf[3] + 1) % n, buf[4]);
    }

    #[test]
    fn d_two_is_two_independent_singletons() {
        // With d = 2 each "block" is a single bin, so the scheme degenerates
        // to two independent uniform choices (duplicates possible).
        let scheme = ContiguousBlocks::new(2, 2);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut buf = [0u64; 2];
        let mut saw_duplicate = false;
        for _ in 0..200 {
            scheme.fill_choices(&mut rng, &mut buf);
            assert!(buf.iter().all(|&c| c < 2));
            saw_duplicate |= buf[0] == buf[1];
        }
        assert!(
            saw_duplicate,
            "independent singletons must collide sometimes"
        );
    }

    #[test]
    fn block_wraps_around_table_end() {
        // n = 4, d = 4: one block of 2 starting at 3 must wrap to 0.
        let scheme = ContiguousBlocks::new(4, 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut buf = [0u64; 4];
        let mut saw_wrap = false;
        for _ in 0..500 {
            scheme.fill_choices(&mut rng, &mut buf);
            if buf[0] == 3 {
                assert_eq!(buf[1], 0, "block starting at 3 must wrap: {buf:?}");
                saw_wrap = true;
            }
        }
        assert!(saw_wrap, "never observed a wrapping block in 500 draws");
    }

    #[test]
    fn marginals_are_uniform() {
        let n = 16u64;
        let scheme = ContiguousBlocks::new(n, 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let trials = 160_000;
        let mut counts = vec![0u64; n as usize];
        let mut buf = [0u64; 4];
        for _ in 0..trials {
            scheme.fill_choices(&mut rng, &mut buf);
            for &c in &buf {
                counts[c as usize] += 1;
            }
        }
        let expect = (trials * 4) as f64 / n as f64;
        for (bin, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "bin {bin}: {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn rejects_single_choice() {
        ContiguousBlocks::new(8, 1);
    }
}
