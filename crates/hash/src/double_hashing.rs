//! Double hashing: the paper's subject.

use crate::{keyed_stream, validate_params, ChoiceScheme};
use ba_numtheory::CoprimeSampler;
use ba_rng::Rng64;

/// Double-hashing choices: `h(k) = f + k·g mod n` for `k = 0..d`.
///
/// `f` is uniform over `[0, n)`; `g` is uniform over residues in `[1, n)`
/// coprime to `n` (the paper: for `n` prime all of `[1, n)`, for `n` a power
/// of two the odd residues; this implementation also supports arbitrary `n`
/// via rejection sampling against `n`'s prime divisors). Because `g` is
/// coprime to `n`, the `d ≤ n` probe values are always distinct.
///
/// The scheme consumes exactly two hash values (two RNG draws) per ball
/// versus `d` for fully random hashing — the reduced-randomness property
/// that makes it attractive in hardware and software hash tables.
#[derive(Debug, Clone)]
pub struct DoubleHashing {
    n: u64,
    d: usize,
    stride: CoprimeSampler,
}

impl DoubleHashing {
    /// Creates the scheme for a table of `n` bins and `d` probes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `d < 1` or `d > n`.
    pub fn new(n: u64, d: usize) -> Self {
        validate_params(n, d);
        assert!(n >= 2, "double hashing needs n >= 2 for a nonzero stride");
        Self {
            n,
            d,
            stride: CoprimeSampler::new(n),
        }
    }

    /// The number of valid strides φ(n).
    pub fn stride_count(&self) -> u64 {
        self.stride.count()
    }

    /// Derives the keyed `(f, g)` pair for `key` under `salt`: both hash
    /// values come from the deterministic [`keyed_stream`] of `(key,
    /// salt)`, so the pair — and the probe sequence it expands to — is a
    /// pure function of the key. This is the production formulation of
    /// double hashing (two hashes of the key), where the paper's
    /// simulations draw `f` and `g` from an RNG stream instead.
    #[inline]
    pub fn keyed_fg(&self, key: u64, salt: u64) -> (u64, u64) {
        let mut rng = keyed_stream(key, salt);
        let f = rng.gen_range(self.n);
        let g = self.stride.sample(&mut rng);
        (f, g)
    }

    /// Expands a given `(f, g)` pair into the probe sequence. Exposed so
    /// analysis code (ancestry lists, witness trees) can enumerate the
    /// deterministic part of the scheme separately from the randomness.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.d()`, `f >= n`, or `g == 0 || g >= n`.
    #[inline]
    pub fn expand(&self, f: u64, g: u64, out: &mut [u64]) {
        assert_eq!(out.len(), self.d, "output buffer must hold d choices");
        assert!(f < self.n, "f must be a bin index");
        assert!(g >= 1 && g < self.n, "stride must lie in [1, n)");
        let mut h = f;
        for slot in out.iter_mut() {
            *slot = h;
            h += g;
            if h >= self.n {
                h -= self.n;
            }
        }
    }
}

impl ChoiceScheme for DoubleHashing {
    fn n(&self) -> u64 {
        self.n
    }

    fn d(&self) -> usize {
        self.d
    }

    #[inline]
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        let f = rng.gen_range(self.n);
        let g = self.stride.sample(rng);
        self.expand(f, g, out);
    }

    #[inline]
    fn choices_for(&self, key: u64, salt: u64, out: &mut [u64]) {
        let (f, g) = self.keyed_fg(key, salt);
        self.expand(f, g, out);
    }

    /// The batched keyed kernel, hand-unrolled four keys wide. Each key's
    /// `(f, g)` derivation is an independent hash chain — no key's result
    /// feeds another's — so stamping four derivations side by side lets
    /// the CPU overlap their multiply/xor dependency chains (ILP) instead
    /// of walking one chain at a time, and the virtual-dispatch cost of
    /// reaching this method amortizes over the whole batch. Bit-identical
    /// to the per-key [`ChoiceScheme::choices_for`] loop by construction:
    /// the same `keyed_fg` and `expand` run per key, just interleaved.
    fn choices_for_batch(&self, keys: &[u64], salt: u64, out: &mut [u64]) {
        let d = self.d;
        assert_eq!(
            out.len(),
            keys.len() * d,
            "matrix must hold keys.len() * d choices"
        );
        let mut quads = keys.chunks_exact(4);
        let mut rows = out.chunks_exact_mut(4 * d);
        for (quad, rows4) in (&mut quads).zip(&mut rows) {
            let fg0 = self.keyed_fg(quad[0], salt);
            let fg1 = self.keyed_fg(quad[1], salt);
            let fg2 = self.keyed_fg(quad[2], salt);
            let fg3 = self.keyed_fg(quad[3], salt);
            let (pair01, pair23) = rows4.split_at_mut(2 * d);
            let (row0, row1) = pair01.split_at_mut(d);
            let (row2, row3) = pair23.split_at_mut(d);
            self.expand(fg0.0, fg0.1, row0);
            self.expand(fg1.0, fg1.1, row1);
            self.expand(fg2.0, fg2.1, row2);
            self.expand(fg3.0, fg3.1, row3);
        }
        for (&key, row) in quads
            .remainder()
            .iter()
            .zip(rows.into_remainder().chunks_exact_mut(d))
        {
            self.choices_for(key, salt, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_numtheory::gcd;
    use ba_rng::Xoshiro256StarStar;
    use std::collections::HashMap;

    #[test]
    fn choices_always_distinct() {
        for n in [7u64, 16, 15, 97, 1 << 10] {
            let d = 4.min(n as usize);
            let scheme = DoubleHashing::new(n, d);
            let mut rng = Xoshiro256StarStar::seed_from_u64(n);
            let mut buf = vec![0u64; d];
            for _ in 0..500 {
                scheme.fill_choices(&mut rng, &mut buf);
                let mut sorted = buf.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), d, "duplicate probes for n={n}: {buf:?}");
            }
        }
    }

    #[test]
    fn expand_is_arithmetic_progression() {
        let scheme = DoubleHashing::new(11, 5);
        let mut buf = [0u64; 5];
        scheme.expand(3, 4, &mut buf);
        assert_eq!(buf, [3, 7, 0, 4, 8]);
    }

    #[test]
    fn expand_wraps_modulo_n() {
        let scheme = DoubleHashing::new(8, 3);
        let mut buf = [0u64; 3];
        scheme.expand(7, 7, &mut buf);
        assert_eq!(buf, [7, 6, 5]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn expand_rejects_zero_stride() {
        let scheme = DoubleHashing::new(8, 3);
        let mut buf = [0u64; 3];
        scheme.expand(0, 0, &mut buf);
    }

    #[test]
    fn marginals_are_uniform() {
        // Each probe position must be marginally uniform over [0, n).
        let n = 8u64;
        let scheme = DoubleHashing::new(n, 3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(123);
        let trials = 80_000;
        let mut counts = vec![[0u64; 3]; n as usize];
        let mut buf = [0u64; 3];
        for _ in 0..trials {
            scheme.fill_choices(&mut rng, &mut buf);
            for (pos, &c) in buf.iter().enumerate() {
                counts[c as usize][pos] += 1;
            }
        }
        let expect = trials as f64 / n as f64;
        for (bin, row) in counts.iter().enumerate() {
            for (pos, &cnt) in row.iter().enumerate() {
                let c = cnt as f64;
                assert!(
                    (c - expect).abs() < 6.0 * expect.sqrt(),
                    "bin {bin} pos {pos}: {c} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn pairwise_uniform_over_ordered_pairs() {
        // The paper's key structural property: for i != j, (h_i, h_j) is
        // uniform over ordered pairs of distinct bins. Verify for prime n.
        let n = 7u64;
        let scheme = DoubleHashing::new(n, 3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(321);
        let trials = 210_000u64;
        let mut pair_counts: HashMap<(u64, u64), u64> = HashMap::new();
        let mut buf = [0u64; 3];
        for _ in 0..trials {
            scheme.fill_choices(&mut rng, &mut buf);
            *pair_counts.entry((buf[0], buf[2])).or_insert(0) += 1;
        }
        // 42 ordered pairs of distinct bins, each expecting trials/42 = 5000.
        assert_eq!(pair_counts.len(), 42);
        let expect = trials as f64 / 42.0;
        for (&pair, &c) in &pair_counts {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "pair {pair:?}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn keyed_fg_expands_to_choices_for() {
        // The override and the default derivation must agree: choices_for
        // is exactly expand(keyed_fg(key, salt)).
        for n in [16u64, 97, 360] {
            let scheme = DoubleHashing::new(n, 3);
            for key in 0..100u64 {
                let (f, g) = scheme.keyed_fg(key, 11);
                assert!(f < n);
                assert_eq!(gcd(g, n), 1, "stride {g} not coprime to {n}");
                let mut expanded = [0u64; 3];
                scheme.expand(f, g, &mut expanded);
                let mut derived = [0u64; 3];
                scheme.choices_for(key, 11, &mut derived);
                assert_eq!(expanded, derived, "n={n} key={key}");
            }
        }
    }

    #[test]
    fn strides_are_coprime() {
        for n in [12u64, 16, 97, 100] {
            let scheme = DoubleHashing::new(n, 2);
            let mut rng = Xoshiro256StarStar::seed_from_u64(n * 3 + 1);
            let mut buf = [0u64; 2];
            for _ in 0..300 {
                scheme.fill_choices(&mut rng, &mut buf);
                let g = (buf[1] + n - buf[0]) % n;
                assert_eq!(gcd(g, n), 1, "stride {g} shares a factor with {n}");
            }
        }
    }

    #[test]
    fn stride_count_matches_totient() {
        assert_eq!(DoubleHashing::new(1 << 14, 3).stride_count(), 1 << 13);
        assert_eq!(DoubleHashing::new(16411, 3).stride_count(), 16410);
        assert_eq!(DoubleHashing::new(360, 3).stride_count(), 96);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn rejects_single_bin() {
        DoubleHashing::new(1, 1);
    }

    #[test]
    fn two_rng_draws_per_ball() {
        // Structural check of the randomness saving: double hashing must
        // consume exactly 2 draws per ball for power-of-two n (no rejection).
        struct CountingRng {
            inner: Xoshiro256StarStar,
            draws: u64,
        }
        impl ba_rng::Rng64 for CountingRng {
            fn next_u64(&mut self) -> u64 {
                self.draws += 1;
                self.inner.next_u64()
            }
        }
        let scheme = DoubleHashing::new(1 << 10, 4);
        let mut rng = CountingRng {
            inner: Xoshiro256StarStar::seed_from_u64(6),
            draws: 0,
        };
        let mut buf = [0u64; 4];
        let balls = 1000;
        for _ in 0..balls {
            scheme.fill_choices(&mut rng, &mut buf);
        }
        // Lemire rejection fires with probability ~2^-54 for n = 2^10; in
        // practice exactly 2 draws per ball.
        assert_eq!(rng.draws, 2 * balls);
    }
}
