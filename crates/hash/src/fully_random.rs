//! Fully random choice generation: the paper's baseline.

use crate::{validate_params, ChoiceScheme};
use ba_rng::Rng64;

/// Whether the `d` uniform choices may repeat.
///
/// The paper's tables sample **without** replacement (footnote 7: "We also
/// considered d choices with replacement, but the difference was not
/// apparent except for very small n"). Both modes are kept so that the
/// `ablate_replacement` experiment can quantify exactly that remark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Choices are d i.i.d. uniform draws; duplicates possible.
    With,
    /// Choices are d distinct uniform draws (uniform over d-subsets, in
    /// random order).
    Without,
}

/// `d` independent uniform choices over `n` bins.
#[derive(Debug, Clone)]
pub struct FullyRandom {
    n: u64,
    d: usize,
    replacement: Replacement,
}

impl FullyRandom {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, `n == 0`, or (for [`Replacement::Without`])
    /// `d > n`.
    pub fn new(n: u64, d: usize, replacement: Replacement) -> Self {
        match replacement {
            Replacement::Without => validate_params(n, d),
            Replacement::With => {
                assert!(n >= 1, "need at least one bin");
                assert!(d >= 1, "need at least one choice per ball");
            }
        }
        Self { n, d, replacement }
    }

    /// The replacement mode.
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }
}

impl ChoiceScheme for FullyRandom {
    fn n(&self) -> u64 {
        self.n
    }

    fn d(&self) -> usize {
        self.d
    }

    #[inline]
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        assert_eq!(out.len(), self.d, "output buffer must hold d choices");
        match self.replacement {
            Replacement::With => {
                for slot in out.iter_mut() {
                    *slot = rng.gen_range(self.n);
                }
            }
            Replacement::Without => {
                // Rejection against the prefix: optimal for the small d used
                // in balanced allocation (collision probability ~ d/n).
                let mut filled = 0;
                while filled < self.d {
                    let cand = rng.gen_range(self.n);
                    if !out[..filled].contains(&cand) {
                        out[filled] = cand;
                        filled += 1;
                    }
                }
            }
        }
    }
}

/// The classical one-choice baseline (`d = 1`), giving the
/// `log n / log log n` maximum load the paper contrasts against.
#[derive(Debug, Clone)]
pub struct OneChoice {
    n: u64,
}

impl OneChoice {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n >= 1, "need at least one bin");
        Self { n }
    }
}

impl ChoiceScheme for OneChoice {
    fn n(&self) -> u64 {
        self.n
    }

    fn d(&self) -> usize {
        1
    }

    #[inline]
    fn fill_choices(&self, rng: &mut dyn Rng64, out: &mut [u64]) {
        assert_eq!(out.len(), 1, "OneChoice fills exactly one slot");
        out[0] = rng.gen_range(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_rng::Xoshiro256StarStar;

    #[test]
    fn without_replacement_distinct() {
        let scheme = FullyRandom::new(8, 8, Replacement::Without);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut buf = [0u64; 8];
        for _ in 0..200 {
            scheme.fill_choices(&mut rng, &mut buf);
            let mut sorted = buf;
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3, 4, 5, 6, 7]);
        }
    }

    #[test]
    fn with_replacement_allows_duplicates() {
        // n = 2, d = 4: duplicates are certain.
        let scheme = FullyRandom::new(2, 4, Replacement::With);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut buf = [0u64; 4];
        scheme.fill_choices(&mut rng, &mut buf);
        let mut sorted = buf;
        sorted.sort_unstable();
        sorted.windows(2).any(|w| w[0] == w[1]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn without_replacement_rejects_d_exceeding_n() {
        FullyRandom::new(3, 4, Replacement::Without);
    }

    #[test]
    fn with_replacement_permits_d_exceeding_n() {
        let scheme = FullyRandom::new(3, 4, Replacement::With);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut buf = [0u64; 4];
        scheme.fill_choices(&mut rng, &mut buf);
        assert!(buf.iter().all(|&c| c < 3));
    }

    #[test]
    fn marginals_are_uniform() {
        // Each position of the choice vector must be marginally uniform.
        let n = 8u64;
        let trials = 80_000;
        for repl in [Replacement::With, Replacement::Without] {
            let scheme = FullyRandom::new(n, 3, repl);
            let mut rng = Xoshiro256StarStar::seed_from_u64(77);
            let mut buf = [0u64; 3];
            let mut counts = vec![[0u64; 3]; n as usize];
            for _ in 0..trials {
                scheme.fill_choices(&mut rng, &mut buf);
                for (pos, &c) in buf.iter().enumerate() {
                    counts[c as usize][pos] += 1;
                }
            }
            let expect = trials as f64 / n as f64;
            for (bin, row) in counts.iter().enumerate() {
                for (pos, &cnt) in row.iter().enumerate() {
                    let c = cnt as f64;
                    assert!(
                        (c - expect).abs() < 6.0 * expect.sqrt(),
                        "{repl:?} bin {bin} pos {pos}: {c} vs {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_choice_basics() {
        let scheme = OneChoice::new(16);
        assert_eq!(scheme.d(), 1);
        assert_eq!(scheme.n(), 16);
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let mut buf = [0u64; 1];
        for _ in 0..100 {
            scheme.fill_choices(&mut rng, &mut buf);
            assert!(buf[0] < 16);
        }
    }

    #[test]
    #[should_panic(expected = "buffer")]
    fn wrong_buffer_length_panics() {
        let scheme = FullyRandom::new(8, 3, Replacement::Without);
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let mut buf = [0u64; 2];
        scheme.fill_choices(&mut rng, &mut buf);
    }
}
