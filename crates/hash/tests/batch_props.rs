//! Property tests: [`ChoiceScheme::choices_for_batch`] is bit-identical
//! to per-key [`ChoiceScheme::choices_for`] for every scheme — the
//! contract the engine's batched insert path and rounds probe derivation
//! rely on. Covers the trait's default loop, the hand-unrolled
//! `DoubleHashing` override (including its 4-wide main loop and its
//! remainder tail), the `AnyScheme` dispatch, and the `Partitioned`
//! row-offset pass.

use ba_hash::{AnyScheme, ChoiceScheme};
use proptest::prelude::*;

proptest! {
    /// For every named scheme and any (n, d, salt, key set), the batch
    /// kernel's matrix equals d-at-a-time per-key derivation, row by row.
    #[test]
    fn batch_kernel_matches_per_key_choices(
        scheme_idx in 0usize..7,
        d in 1usize..=4,
        m in 2u64..64,
        salt in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let name = AnyScheme::names()[scheme_idx];
        // n = d·m keeps every constraint satisfiable at once: divisible
        // by d for the dleft layouts, subtables of m ≥ 2 bins for the
        // double-hashing stride, d ≤ n everywhere. Per-scheme d floors:
        // "one" is unary by definition, blocks needs two blocks.
        let d = match name {
            "one" => 1,
            "blocks" => d.max(2),
            _ => d,
        };
        // The dleft layouts make d choices over m-bin subtables: m ≥ d.
        let m = m.max(d as u64);
        let n = d as u64 * m;
        let scheme = AnyScheme::by_name(name, n, d).expect("listed name parses");
        let mut batch = vec![0u64; keys.len() * d];
        scheme.choices_for_batch(&keys, salt, &mut batch);
        let mut row = vec![0u64; d];
        for (i, &key) in keys.iter().enumerate() {
            scheme.choices_for(key, salt, &mut row);
            prop_assert_eq!(
                &batch[i * d..(i + 1) * d],
                row.as_slice(),
                "{} n={} d={} key {} (row {})",
                name, n, d, key, i
            );
        }
    }

    /// The quad-unrolled double-hashing kernel in particular must agree
    /// at every batch length around the unroll width (0..4 remainder).
    #[test]
    fn double_hashing_unroll_boundaries_agree(
        d in 1usize..=6,
        m in 2u64..512,
        salt in any::<u64>(),
        base in any::<u64>(),
        len in 0usize..12,
    ) {
        let n = d as u64 * m;
        let scheme = AnyScheme::by_name("double", n, d).expect("double parses");
        let keys: Vec<u64> = (0..len as u64).map(|i| base.wrapping_add(i)).collect();
        let mut batch = vec![0u64; len * d];
        scheme.choices_for_batch(&keys, salt, &mut batch);
        let mut row = vec![0u64; d];
        for (i, &key) in keys.iter().enumerate() {
            scheme.choices_for(key, salt, &mut row);
            prop_assert_eq!(&batch[i * d..(i + 1) * d], row.as_slice(), "len {} row {}", len, i);
        }
    }
}
