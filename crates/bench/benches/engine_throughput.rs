//! Throughput of the sharded engine serving mixed traffic.
//!
//! Serves one million mixed operations (churn: inserts + deletes, plus
//! Zipf insert/lookup traffic) across 4 and 8 shards, for fully random
//! and double hashing in both choice modes (stream-drawn and keyed
//! derivation), and reports ops/s. A second group races the three worker
//! modes — sequential, scoped-spawn-per-batch, and the persistent
//! channel-fed pool — on the same 1M-op workload, which is where the
//! "persistent workers are no slower than scoped spawning" acceptance
//! gate is measured. Before timing anything it verifies the engine's
//! determinism contract at the same scale: per-shard loads after 1M
//! routed inserts must be bit-identical to single-threaded `ba_core`
//! replays for the same `(seed, scheme)` pair, in both choice modes.

use ba_core::{run_process, run_process_keys, TieBreak};
use ba_engine::{route, ChoiceMode, Engine, EngineConfig, Op, WorkerMode};
use ba_hash::{ChoiceSource, DoubleHashing};
use ba_rng::SeedSequence;
use ba_workload::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const TOTAL_OPS: u64 = 1_000_000;
const BINS_PER_SHARD: u64 = 1 << 16;
const SEED: u64 = 2014;
const BATCH: usize = 8_192;

fn mixed_stream(scenario: &Scenario, keyspace: u64) -> Vec<Op> {
    let mut workload = scenario.build(keyspace, SEED);
    let mut ops = Vec::with_capacity(TOTAL_OPS as usize);
    for _ in 0..TOTAL_OPS {
        ops.push(workload.next_op());
    }
    ops
}

/// The acceptance gate: 1M inserts across 4 shards, every shard's final
/// loads equal to a single-threaded `ba_core` run over its routed stream —
/// once per choice mode.
fn verify_against_core() {
    let shards = 4usize;
    let ops: Vec<Op> = (0..TOTAL_OPS).map(Op::Insert).collect();
    for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
        let config = EngineConfig::new(shards, BINS_PER_SHARD, 3)
            .seed(SEED)
            .mode(mode);
        let mut engine = Engine::by_name("double", config).expect("known scheme");
        engine.serve(&ops, BATCH);
        for id in 0..shards {
            let keys: Vec<u64> = ops
                .iter()
                .map(Op::key)
                .filter(|&k| route(k, shards) == id)
                .collect();
            let scheme = DoubleHashing::new(BINS_PER_SHARD, 3);
            let mut rng = SeedSequence::new(SEED).child(id as u64).xoshiro();
            let reference = match mode {
                ChoiceMode::Stream => {
                    run_process(&scheme, keys.len() as u64, TieBreak::Random, &mut rng)
                }
                ChoiceMode::Keyed => run_process_keys(
                    &scheme,
                    ChoiceSource::Keyed {
                        salt: engine.shard(id).salt(),
                    },
                    keys.iter().copied(),
                    TieBreak::Random,
                    &mut rng,
                ),
            };
            let shard = engine.shard(id);
            assert_eq!(
                shard.allocation().loads(),
                reference.loads(),
                "{mode:?} shard {id} loads diverged from single-threaded ba_core"
            );
        }
        println!(
            "verified: 1M {mode:?} inserts over {shards} shards match single-threaded ba_core \
             (engine max load {})",
            engine.max_load()
        );
    }
}

fn bench_mixed_ops(c: &mut Criterion) {
    verify_against_core();

    let mut group = c.benchmark_group("engine_mixed_1m");
    group.throughput(Throughput::Elements(TOTAL_OPS));
    let churn = mixed_stream(
        &Scenario::Churn {
            delete_fraction: 0.5,
        },
        BINS_PER_SHARD * 2,
    );
    let zipf = mixed_stream(&Scenario::Zipf { theta: 0.9 }, BINS_PER_SHARD * 2);
    for (label, ops) in [("churn", &churn), ("zipf", &zipf)] {
        for shards in [4usize, 8] {
            for scheme in ["random", "double"] {
                for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
                    let tag = match mode {
                        ChoiceMode::Stream => "stream",
                        ChoiceMode::Keyed => "keyed",
                    };
                    let id = BenchmarkId::new(format!("{label}/{scheme}/{tag}"), shards);
                    group.bench_with_input(id, ops, |b, ops| {
                        b.iter(|| {
                            let mut engine = Engine::by_name(
                                scheme,
                                EngineConfig::new(shards, BINS_PER_SHARD, 3)
                                    .seed(SEED)
                                    .mode(mode),
                            )
                            .expect("known scheme");
                            let summary = engine.serve(ops, BATCH);
                            assert_eq!(summary.total_ops(), TOTAL_OPS);
                            black_box(engine.max_load())
                        })
                    });
                }
            }
        }
    }
    group.finish();
}

/// The worker-mode race: persistent channel-fed workers must be no slower
/// than spawning scoped threads per batch (the pre-pool baseline) on the
/// 1M-op mixed workload at 4 and 8 shards — plus the pipelined ingestion
/// path at two queue depths, which overlaps routing with application on
/// top of the same persistent pool.
fn bench_worker_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_workers");
    group.throughput(Throughput::Elements(TOTAL_OPS));
    let ops = mixed_stream(&Scenario::Uniform, BINS_PER_SHARD * 4);
    for shards in [4usize, 8] {
        for workers in [
            WorkerMode::Sequential,
            WorkerMode::Scoped,
            WorkerMode::Persistent,
        ] {
            let label = match workers {
                WorkerMode::Sequential => "sequential",
                WorkerMode::Scoped => "scoped",
                WorkerMode::Persistent => "persistent",
            };
            let id = BenchmarkId::new(label, shards);
            group.bench_with_input(id, &ops, |b, ops| {
                b.iter(|| {
                    let config = EngineConfig::new(shards, BINS_PER_SHARD, 3)
                        .seed(SEED)
                        .workers(workers);
                    let mut engine = Engine::by_name("double", config).expect("known scheme");
                    engine.serve(ops, BATCH);
                    black_box(engine.max_load())
                })
            });
        }
        for depth in [4usize, 64] {
            let id = BenchmarkId::new(format!("pipelined-qd{depth}"), shards);
            group.bench_with_input(id, &ops, |b, ops| {
                b.iter(|| {
                    let config = EngineConfig::new(shards, BINS_PER_SHARD, 3)
                        .seed(SEED)
                        .pipelined(depth);
                    let mut engine = Engine::by_name("double", config).expect("known scheme");
                    engine.serve(ops, BATCH);
                    black_box(engine.max_load())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_ops, bench_worker_modes);
criterion_main!(benches);
