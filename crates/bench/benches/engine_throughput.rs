//! Throughput of the sharded engine serving mixed traffic.
//!
//! Serves one million mixed operations (churn: inserts + deletes, plus
//! Zipf insert/lookup traffic) across 4 and 8 shards, for fully random
//! and double hashing, and reports ops/s. Before timing anything it
//! verifies the engine's determinism contract at the same scale: per-shard
//! loads after 1M routed inserts must be bit-identical to single-threaded
//! `ba_core::run_process` replays for the same `(seed, scheme)` pair.

use ba_core::{run_process, TieBreak};
use ba_engine::{route, Engine, EngineConfig, Op};
use ba_hash::DoubleHashing;
use ba_rng::SeedSequence;
use ba_workload::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const TOTAL_OPS: u64 = 1_000_000;
const BINS_PER_SHARD: u64 = 1 << 16;
const SEED: u64 = 2014;
const BATCH: usize = 8_192;

fn mixed_stream(scenario: &Scenario, keyspace: u64) -> Vec<Op> {
    let mut workload = scenario.build(keyspace, SEED);
    let mut ops = Vec::with_capacity(TOTAL_OPS as usize);
    for _ in 0..TOTAL_OPS {
        ops.push(workload.next_op());
    }
    ops
}

/// The acceptance gate: 1M inserts across 4 shards, every shard's final
/// loads equal to a single-threaded `ba_core` run over its routed stream.
fn verify_against_core() {
    let shards = 4usize;
    let mut engine = Engine::by_name(
        "double",
        EngineConfig::new(shards, BINS_PER_SHARD, 3).seed(SEED),
    )
    .expect("known scheme");
    let ops: Vec<Op> = (0..TOTAL_OPS).map(Op::Insert).collect();
    engine.serve(&ops, BATCH);
    for id in 0..shards {
        let balls = ops
            .iter()
            .filter(|op| route(op.key(), shards) == id)
            .count() as u64;
        let mut rng = SeedSequence::new(SEED).child(id as u64).xoshiro();
        let reference = run_process(
            &DoubleHashing::new(BINS_PER_SHARD, 3),
            balls,
            TieBreak::Random,
            &mut rng,
        );
        let shard = &engine.shards()[id];
        assert_eq!(
            shard.allocation().max_load(),
            reference.max_load(),
            "shard {id} max load diverged from single-threaded ba_core"
        );
        assert_eq!(
            shard.allocation().loads(),
            reference.loads(),
            "shard {id} loads diverged from single-threaded ba_core"
        );
    }
    println!(
        "verified: 1M inserts over {shards} shards match single-threaded ba_core \
         (engine max load {})",
        engine.max_load()
    );
}

fn bench_mixed_ops(c: &mut Criterion) {
    verify_against_core();

    let mut group = c.benchmark_group("engine_mixed_1m");
    group.throughput(Throughput::Elements(TOTAL_OPS));
    let churn = mixed_stream(
        &Scenario::Churn {
            delete_fraction: 0.5,
        },
        BINS_PER_SHARD * 2,
    );
    let zipf = mixed_stream(&Scenario::Zipf { theta: 0.9 }, BINS_PER_SHARD * 2);
    for (label, ops) in [("churn", &churn), ("zipf", &zipf)] {
        for shards in [4usize, 8] {
            for scheme in ["random", "double"] {
                let id = BenchmarkId::new(format!("{label}/{scheme}"), shards);
                group.bench_with_input(id, ops, |b, ops| {
                    b.iter(|| {
                        let mut engine = Engine::by_name(
                            scheme,
                            EngineConfig::new(shards, BINS_PER_SHARD, 3).seed(SEED),
                        )
                        .expect("known scheme");
                        let summary = engine.serve(ops, BATCH);
                        assert_eq!(summary.total_ops(), TOTAL_OPS);
                        black_box(engine.max_load())
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_parallelism");
    group.throughput(Throughput::Elements(TOTAL_OPS));
    let ops = mixed_stream(&Scenario::Uniform, BINS_PER_SHARD * 4);
    for parallel in [false, true] {
        let label = if parallel { "parallel" } else { "sequential" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &ops, |b, ops| {
            b.iter(|| {
                let mut config = EngineConfig::new(8, BINS_PER_SHARD, 3).seed(SEED);
                config.parallel = parallel;
                let mut engine = Engine::by_name("double", config).expect("known scheme");
                engine.serve(ops, BATCH);
                black_box(engine.max_load())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_ops, bench_parallel_vs_sequential);
criterion_main!(benches);
