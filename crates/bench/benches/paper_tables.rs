//! One bench per paper table, at reduced trial counts: tracks the cost of
//! regenerating each experiment end to end.

use ba_bench::{experiment, Opts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn reduced_opts() -> Opts {
    Opts {
        trials: 3,
        seed: 2014,
        threads: 0,
        full: false,
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);
    // Tables 3-5 sweep to n = 2^18..2^20 and dominate any benchmark budget;
    // track the structurally distinct fast ones plus a theory experiment.
    for name in ["table1", "table2", "majorize", "branching", "witness"] {
        let f = experiment(name).expect("known experiment");
        group.bench_with_input(BenchmarkId::from_parameter(name), &f, |b, f| {
            let opts = reduced_opts();
            b.iter(|| black_box(f(&opts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
