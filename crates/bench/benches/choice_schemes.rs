//! Cost per choice-vector generation, scheme by scheme.
//!
//! The paper's practical motivation is that double hashing consumes two
//! hash values instead of d — this bench quantifies the per-ball saving.

use ba_hash::{AnyScheme, ChoiceScheme};
use ba_rng::Xoshiro256StarStar;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let n = 1u64 << 14;
    let mut group = c.benchmark_group("fill_choices");
    for d in [2usize, 3, 4, 8] {
        for name in ["random", "random-replace", "double", "blocks"] {
            let scheme = AnyScheme::by_name(name, n, d).expect("known scheme");
            let mut rng = Xoshiro256StarStar::seed_from_u64(1);
            let mut buf = vec![0u64; d];
            group.bench_with_input(BenchmarkId::new(name.to_string(), d), &d, |b, _| {
                b.iter(|| {
                    scheme.fill_choices(&mut rng, &mut buf);
                    black_box(buf[0])
                })
            });
        }
    }
    group.finish();
}

fn bench_prime_vs_pow2(c: &mut Criterion) {
    let mut group = c.benchmark_group("double_hashing_modulus");
    for (label, n) in [
        ("pow2_16384", 1u64 << 14),
        ("prime_16381", 16381),
        ("composite_16380", 16380),
    ] {
        let scheme = ba_hash::DoubleHashing::new(n, 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut buf = [0u64; 4];
        group.bench_function(label, |b| {
            b.iter(|| {
                scheme.fill_choices(&mut rng, &mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_prime_vs_pow2);
criterion_main!(benches);
