//! End-to-end placement throughput: balls placed per second for each
//! process variant (the simulator's hot loop).

use ba_core::{run_process, OnePlusBeta, TieBreak};
use ba_hash::{AnyScheme, DoubleHashing};
use ba_rng::Xoshiro256StarStar;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_processes(c: &mut Criterion) {
    let n = 1u64 << 14;
    let mut group = c.benchmark_group("run_process");
    group.throughput(Throughput::Elements(n));
    for name in ["one", "random", "double", "dleft-random", "dleft-double"] {
        // d-left needs d | n (subtables of equal size): use d = 4 there.
        let d = match name {
            "one" => 1,
            n if n.starts_with("dleft") => 4,
            _ => 3,
        };
        let tie = if name.starts_with("dleft") {
            TieBreak::FirstOffered
        } else {
            TieBreak::Random
        };
        let scheme = AnyScheme::by_name(name, n, d).expect("known scheme");
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, s| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(3);
            b.iter(|| black_box(run_process(s, n, tie, &mut rng).max_load()))
        });
    }
    group.finish();
}

fn bench_one_plus_beta(c: &mut Criterion) {
    let n = 1u64 << 14;
    let mut group = c.benchmark_group("one_plus_beta");
    group.throughput(Throughput::Elements(n));
    for beta in [0.25f64, 0.5, 1.0] {
        let process = OnePlusBeta::new(DoubleHashing::new(n, 2), beta);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("beta_{beta}")),
            &process,
            |b, p| {
                let mut rng = Xoshiro256StarStar::seed_from_u64(4);
                b.iter(|| black_box(p.run(n, TieBreak::Random, &mut rng).max_load()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_processes, bench_one_plus_beta);
criterion_main!(benches);
