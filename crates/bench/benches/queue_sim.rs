//! Discrete-event simulator throughput (events per second).

use ba_hash::AnyScheme;
use ba_queue::SupermarketSim;
use ba_rng::Xoshiro256StarStar;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_supermarket_sim(c: &mut Criterion) {
    let n = 1u64 << 10;
    let horizon = 100.0;
    let mut group = c.benchmark_group("supermarket_sim");
    // Each simulated second processes ~2·λ·n events (arrival + departure).
    group.throughput(Throughput::Elements(
        (2.0 * 0.9 * n as f64 * horizon) as u64,
    ));
    group.sample_size(10);
    for name in ["random", "double"] {
        let scheme = AnyScheme::by_name(name, n, 3).expect("known scheme");
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, s| {
            let sim = SupermarketSim::new(s, 0.9);
            let mut rng = Xoshiro256StarStar::seed_from_u64(5);
            b.iter(|| black_box(sim.run(horizon, 0.0, &mut rng).counted()))
        });
    }
    group.finish();
}

fn bench_choice_count(c: &mut Criterion) {
    let n = 1u64 << 10;
    let mut group = c.benchmark_group("supermarket_d_sweep");
    group.sample_size(10);
    for d in [1usize, 2, 3, 4] {
        let name = if d == 1 { "one" } else { "double" };
        let scheme = AnyScheme::by_name(name, n, d).expect("known scheme");
        group.bench_with_input(BenchmarkId::from_parameter(d), &scheme, |b, s| {
            let sim = SupermarketSim::new(s, 0.8);
            let mut rng = Xoshiro256StarStar::seed_from_u64(6);
            b.iter(|| black_box(sim.run(50.0, 0.0, &mut rng).counted()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_supermarket_sim, bench_choice_count);
criterion_main!(benches);
