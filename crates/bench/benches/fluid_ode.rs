//! Fluid-limit solver throughput: cost of regenerating the theory columns.

use ba_fluid::{BalancedAllocationOde, DLeftOde, SupermarketOde};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_balanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("balanced_ode");
    for d in [2u32, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let ode = BalancedAllocationOde::new(d, 12);
            b.iter(|| black_box(ode.tail_fractions(1.0)))
        });
    }
    group.finish();
}

fn bench_dleft(c: &mut Criterion) {
    let mut group = c.benchmark_group("dleft_ode");
    for d in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let ode = DLeftOde::new(d, 10);
            b.iter(|| black_box(ode.tail_fractions(1.0)))
        });
    }
    group.finish();
}

fn bench_supermarket(c: &mut Criterion) {
    let mut group = c.benchmark_group("supermarket");
    group.bench_function("equilibrium", |b| {
        let ode = SupermarketOde::new(0.99, 4, 60);
        b.iter(|| black_box(ode.equilibrium_sojourn_time()))
    });
    group.bench_function("transient_t50", |b| {
        let ode = SupermarketOde::new(0.9, 3, 30);
        b.iter(|| black_box(ode.tail_fractions(50.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_balanced, bench_dleft, bench_supermarket);
criterion_main!(benches);
