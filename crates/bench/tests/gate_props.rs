//! Property tests for the perf-trajectory gate (`ba_bench::gate`):
//! the tolerance floor is a *closed* bound hit exactly at
//! `baseline × (1 − tolerance)`, and no malformed rate cell — NaN,
//! infinite, zero, or negative, in either document — can ever pass.
//! A NaN candidate rate previously sailed through the `<` floor
//! comparison, so a corrupted `BENCH_pipeline.json` gated green.

use ba_bench::gate::{gate_rates, CellRate};
use proptest::prelude::*;

fn cell(scenario: &str, rate: f64) -> CellRate {
    CellRate {
        scenario: scenario.into(),
        ingest: "pipelined".into(),
        depth: Some(4),
        producers: Some(1),
        rate,
        identical: true,
    }
}

proptest! {
    /// The regression floor is closed: a candidate at exactly
    /// `baseline × (1 − tolerance)` passes, and shaving anything more
    /// off fails with the cell named as regressed.
    #[test]
    fn floor_boundary_is_closed(
        rate in 1.0f64..1e9,
        tolerance in 0.0f64..0.9,
        shave in 0.01f64..0.5,
    ) {
        let base = vec![cell("uniform", rate)];
        // Same expression the gate computes its floor with: identical
        // floats, so this is the exact boundary, not "close to it".
        let at_floor = vec![cell("uniform", rate * (1.0 - tolerance))];
        prop_assert!(gate_rates(&base, &at_floor, tolerance).is_ok());
        let below = vec![cell("uniform", rate * (1.0 - tolerance) * (1.0 - shave))];
        let err = gate_rates(&base, &below, tolerance);
        prop_assert!(err.is_err());
        prop_assert!(err.unwrap_err().contains("regressed"));
    }

    /// The CI configuration in particular: an exactly-20%-down cell is
    /// within the benches job's 0.20 tolerance.
    #[test]
    fn exactly_twenty_percent_down_passes_the_ci_tolerance(rate in 1.0f64..1e9) {
        let base = vec![cell("zipf", rate)];
        let cand = vec![cell("zipf", rate * (1.0 - 0.20))];
        prop_assert!(gate_rates(&base, &cand, 0.20).is_ok());
    }

    /// A NaN/infinite/zero/negative rate fails the gate no matter which
    /// document it sits in — a zero baseline would make the floor
    /// vacuous and a NaN candidate is incomparable, so both must be
    /// rejected as unusable rather than silently passing.
    #[test]
    fn malformed_rates_never_pass(
        rate in 1.0f64..1e9,
        selector in 0usize..5,
        side in 0u8..2,
    ) {
        let bad_rate = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -rate][selector];
        let good = vec![cell("uniform", rate), cell("churn", rate * 2.0)];
        let mut bad = good.clone();
        bad[selector % 2].rate = bad_rate;
        let (baseline, candidate) = if side == 0 {
            (&bad, &good)
        } else {
            (&good, &bad)
        };
        let err = gate_rates(baseline, candidate, 0.20);
        prop_assert!(err.is_err(), "rate {bad_rate} passed the gate");
        let message = err.unwrap_err();
        prop_assert!(message.contains("unusable ops_per_sec"), "{message}");
        prop_assert!(
            message.contains(if side == 0 { "baseline" } else { "candidate" }),
            "{message}"
        );
    }
}
