//! The rounds experiment: round-based bulk-parallel allocation
//! ([`ba_engine::IngestMode::Rounds`]) vs sequential d-choice, across the full
//! scenario × scheme grid.
//!
//! For each cell it serves one op stream twice — through a sequential
//! keyed engine (the paper's per-ball process) and through a rounds
//! engine over the same global bin space — and records both max loads,
//! both serve rates, and the round resolver's shape: rounds per batch
//! and total re-proposals (a fast-decaying re-proposal tail is the
//! O(log log n) signature). The `identical` column asserts the mode's
//! determinism contract per row: a second rounds engine at a different
//! worker mode and producer count, fed a per-batch-permuted copy of the
//! stream, must land every ball in the same global bin.

use crate::Opts;
use ba_engine::{Engine, EngineConfig, Op, WorkerMode};
use ba_stats::Table;
use ba_workload::Scenario;
use std::time::Instant;

/// Shards both engines run; the rounds engine resolves over the global
/// `SHARDS × bins_per_shard` bin space either way.
const SHARDS: usize = 4;

/// Choices per ball. Four divides every bin count used here, so the
/// partitioned d-left schemes build on the global space too. The
/// single-choice scheme gets d = 1 — its choice vector has one slot.
const D: usize = 4;

/// The scheme's choices-per-ball for this experiment.
fn d_for(scheme: &str) -> usize {
    if scheme == "one" {
        1
    } else {
        D
    }
}

/// Builds one engine of the experiment's shape for `scheme`.
fn build(scheme: &str, opts: &Opts, bins_per_shard: u64) -> Engine<ba_hash::AnyScheme> {
    let config = EngineConfig::new(SHARDS, bins_per_shard, d_for(scheme)).seed(opts.seed);
    Engine::by_name(scheme, config.keyed().sequential()).expect("known scheme")
}

/// The global per-bin load vector — shard layout flattened away, which
/// is exactly the space the determinism contract is stated over.
fn global_loads(engine: &Engine<ba_hash::AnyScheme>) -> Vec<u32> {
    engine
        .shards()
        .iter()
        .flat_map(|s| s.allocation().loads().iter().copied())
        .collect()
}

/// Permutes each batch-sized chunk in place (reversal — any in-batch
/// permutation must be invisible to the rounds resolver; crossing batch
/// boundaries would legitimately change batch multisets).
fn permute_within_batches(ops: &[Op], batch: usize) -> Vec<Op> {
    let mut permuted = ops.to_vec();
    for chunk in permuted.chunks_mut(batch) {
        chunk.reverse();
    }
    permuted
}

/// Runs the scenario × scheme grid and renders one table per scenario.
pub fn rounds(opts: &Opts) -> String {
    let bins_per_shard = if opts.full { 1u64 << 10 } else { 1u64 << 8 };
    let keyspace = SHARDS as u64 * bins_per_shard;
    let total_ops = keyspace as usize;
    let batch = 1024;

    let mut out = format!(
        "Round-based bulk-parallel allocation vs sequential d-choice: \
         {SHARDS} shards x {bins_per_shard} bins, d = {D}, {total_ops} ops per cell, \
         batches of {batch}, seed {}\n\
         (identical column: a worker/producer-shuffled rounds engine served a \
         per-batch-permuted stream and landed every ball in the same global bin)\n\n",
        opts.seed
    );
    for scenario in Scenario::all() {
        let mut ops = Vec::with_capacity(total_ops);
        let mut generator = scenario.build(keyspace, opts.seed);
        let mut chunk = Vec::new();
        while ops.len() < total_ops {
            generator.fill(&mut chunk, batch.min(total_ops - ops.len()));
            ops.extend_from_slice(&chunk);
        }
        let permuted = permute_within_batches(&ops, batch);

        let mut table = Table::new(&[
            "scheme",
            "seq max",
            "rounds max",
            "rounds/batch",
            "reproposals",
            "seq Mops/s",
            "rounds Mops/s",
            "identical",
        ]);
        for &scheme in ba_hash::AnyScheme::names() {
            let mut sequential = build(scheme, opts, bins_per_shard);
            let t0 = Instant::now();
            sequential.serve(&ops, batch);
            let seq_elapsed = t0.elapsed();

            let mut bulk = Engine::by_name(
                scheme,
                EngineConfig::new(SHARDS, bins_per_shard, d_for(scheme))
                    .seed(opts.seed)
                    .rounds_producers(2),
            )
            .expect("known scheme");
            let t0 = Instant::now();
            bulk.serve(&ops, batch);
            let rounds_elapsed = t0.elapsed();
            let report = bulk.take_round_report().expect("rounds mode");

            // Determinism: different worker mode, different producer
            // fan-out, permuted batches — same global bin vector.
            let mut twin = Engine::by_name(
                scheme,
                EngineConfig::new(SHARDS, bins_per_shard, d_for(scheme))
                    .seed(opts.seed)
                    .workers(WorkerMode::Sequential)
                    .rounds_producers(1),
            )
            .expect("known scheme");
            twin.serve(&permuted, batch);
            let identical =
                global_loads(&bulk) == global_loads(&twin) && bulk.stats().matches(&twin.stats());

            let rate = |elapsed: std::time::Duration| {
                format!("{:.2}", ops.len() as f64 / elapsed.as_secs_f64() / 1e6)
            };
            table.row_owned(vec![
                scheme.to_string(),
                sequential.max_load().to_string(),
                report.max_load.to_string(),
                format!("{:.1}", report.rounds as f64 / report.batches.max(1) as f64),
                report.reproposals.iter().sum::<u64>().to_string(),
                rate(seq_elapsed),
                rate(rounds_elapsed),
                identical.to_string(),
            ]);
        }
        out.push_str(&format!("--- scenario: {} ---\n", scenario.name()));
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_experiment_covers_the_grid_and_stays_deterministic() {
        let opts = Opts {
            trials: 1,
            seed: 3,
            threads: 0,
            full: false,
        };
        let text = rounds(&opts);
        for scenario in Scenario::all() {
            assert!(
                text.contains(scenario.name()),
                "missing scenario {}: {text}",
                scenario.name()
            );
        }
        for scheme in ba_hash::AnyScheme::names() {
            assert!(text.contains(scheme), "missing scheme {scheme}: {text}");
        }
        assert!(
            !text.contains("false"),
            "a permuted/re-threaded rounds serve diverged: {text}"
        );
    }
}
