//! CLI entry point for the experiment harness.
//!
//! ```text
//! tables <experiment>... [--trials N] [--seed S] [--threads T] [--full]
//! tables all [--trials N]
//! tables list
//! ```

use ba_bench::{experiment, run_all, Opts, EXPERIMENTS};
use std::process::ExitCode;

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: tables <experiment>... [--trials N] [--seed S] [--threads T] [--full]\n\
         \n\
         experiments: all, list, {}\n\
         \n\
         --trials N   trials per configuration (default 200; paper used 10000)\n\
         --seed S     master seed (default 2014)\n\
         --threads T  worker threads (default: all cores)\n\
         --full       paper-scale sizes for table8 (n=2^14, 10^4 s horizon)",
        names.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, names) = match Opts::parse(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if names.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    for name in &names {
        match name.as_str() {
            "list" => {
                for (n, _) in EXPERIMENTS {
                    println!("{n}");
                }
            }
            "all" => print!("{}", run_all(&opts)),
            other => match experiment(other) {
                Some(f) => {
                    println!("##### {other} #####");
                    println!("{}", f(&opts));
                }
                None => {
                    eprintln!("error: unknown experiment `{other}`\n\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    ExitCode::SUCCESS
}
