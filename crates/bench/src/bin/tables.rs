//! CLI entry point for the experiment harness.
//!
//! ```text
//! tables <experiment>... [--trials N] [--seed S] [--threads T] [--full]
//! tables all [--trials N]
//! tables list
//! tables pipeline-gate <baseline.json> <candidate.json>
//! tables hotpath-gate <baseline.json> <candidate.json>
//! ```

use ba_bench::{experiment, gate, run_all, Opts, EXPERIMENTS};
use std::process::ExitCode;

/// Allowed fractional throughput drop before the perf gate fails.
const GATE_TOLERANCE: f64 = 0.20;

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: tables <experiment>... [--trials N] [--seed S] [--threads T] [--full]\n\
         \x20      tables pipeline-gate <baseline.json> <candidate.json>\n\
         \x20      tables hotpath-gate <baseline.json> <candidate.json>\n\
         \n\
         experiments: all, list, {}\n\
         \n\
         --trials N   trials per configuration (default 200; paper used 10000)\n\
         --seed S     master seed (default 2014)\n\
         --threads T  worker threads (default: all cores)\n\
         --full       paper-scale sizes for table8 (n=2^14, 10^4 s horizon)\n\
         \n\
         pipeline-gate compares two BENCH_pipeline.json files and fails if any\n\
         candidate cell is >{:.0}% slower than its baseline, missing, extra, or no\n\
         longer bit-identical; on hosts wide enough to overlap shards and\n\
         producers it also enforces the 2x multi-producer speedup floor.\n\
         hotpath-gate applies the same rate/identity gate to two\n\
         BENCH_hotpath.json files (no producer axis, so no speedup floor).",
        names.join(", "),
        GATE_TOLERANCE * 100.0
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, names) = match Opts::parse(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if names.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if names[0] == "pipeline-gate" {
        let [_, baseline, candidate] = names.as_slice() else {
            eprintln!(
                "error: pipeline-gate takes exactly two file arguments\n\n{}",
                usage()
            );
            return ExitCode::FAILURE;
        };
        return match gate::gate_files(baseline.as_ref(), candidate.as_ref(), GATE_TOLERANCE) {
            Ok(report) => {
                print!("{report}");
                println!(
                    "pipeline perf gate: OK (tolerance {:.0}%)",
                    GATE_TOLERANCE * 100.0
                );
                ExitCode::SUCCESS
            }
            Err(violations) => {
                eprintln!("pipeline perf gate FAILED:\n{violations}");
                ExitCode::FAILURE
            }
        };
    }
    if names[0] == "hotpath-gate" {
        let [_, baseline, candidate] = names.as_slice() else {
            eprintln!(
                "error: hotpath-gate takes exactly two file arguments\n\n{}",
                usage()
            );
            return ExitCode::FAILURE;
        };
        return match gate::gate_rate_files(baseline.as_ref(), candidate.as_ref(), GATE_TOLERANCE) {
            Ok(report) => {
                print!("{report}");
                println!(
                    "hotpath perf gate: OK (tolerance {:.0}%)",
                    GATE_TOLERANCE * 100.0
                );
                ExitCode::SUCCESS
            }
            Err(violations) => {
                eprintln!("hotpath perf gate FAILED:\n{violations}");
                ExitCode::FAILURE
            }
        };
    }
    for name in &names {
        match name.as_str() {
            "list" => {
                for (n, _) in EXPERIMENTS {
                    println!("{n}");
                }
            }
            "all" => print!("{}", run_all(&opts)),
            other => match experiment(other) {
                Some(f) => {
                    println!("##### {other} #####");
                    println!("{}", f(&opts));
                }
                None => {
                    eprintln!("error: unknown experiment `{other}`\n\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    ExitCode::SUCCESS
}
