//! The engine experiment: the scenario suite against the sharded engine.
//!
//! Where the paper's tables compare hashing schemes under one idealized
//! workload, this experiment compares them under every workload scenario,
//! served by the production path (`ba_engine` + `ba_workload`): per
//! scheme × scenario it reports the engine-wide max load, the mean
//! per-shard max load, and the serve rate.

use crate::Opts;
use ba_engine::{ChoiceMode, EngineConfig};
use ba_stats::{format_fraction, Table, Welford};
use ba_workload::{run_scenario, Scenario};

/// Schemes the engine experiment compares (the paper's standard pair plus
/// the one-choice baseline).
const SCHEMES: &[&str] = &["random", "double", "one"];

/// Runs the scenario suite and renders one table per scenario, with every
/// scheme served in both choice modes: `stream` draws fresh choices from
/// the shard RNG per insert (the paper's process model), `keyed` derives
/// them from `hash(key, shard_salt)` so re-insertions replay their probe
/// sequences (the hash-table model). The paper's claim predicts the two
/// columns of any scheme stay statistically indistinguishable.
pub fn engine(opts: &Opts) -> String {
    let shards = 4usize;
    let bins_per_shard = if opts.full { 1u64 << 14 } else { 1u64 << 10 };
    let keyspace = bins_per_shard * shards as u64;
    let total_ops = keyspace * 4;
    let batch = 4_096;
    let d = 3;

    let mut out = format!(
        "Engine scenario suite: {shards} shards x {bins_per_shard} bins, d = {d}, \
         {total_ops} ops per cell, seed {}\n\
         (engine parallelism is one persistent worker per shard; --threads 1 \
         forces sequential serving, other values are ignored)\n\n",
        opts.seed
    );
    for scenario in Scenario::all() {
        let mut table = Table::new(&[
            "scheme",
            "mode",
            "max load",
            "mean shard max",
            "balls",
            "Mops/s",
        ]);
        for &scheme in SCHEMES {
            for mode in [ChoiceMode::Stream, ChoiceMode::Keyed] {
                let mut config =
                    EngineConfig::new(shards, bins_per_shard, if scheme == "one" { 1 } else { d })
                        .seed(opts.seed)
                        .mode(mode);
                if opts.threads == 1 {
                    config = config.sequential();
                }
                let report = run_scenario(scheme, &scenario, config, keyspace, total_ops, batch)
                    .expect("known scheme");
                let mut shard_max = Welford::new();
                for &m in &report.stats.max_loads() {
                    shard_max.push(m as f64);
                }
                table.row_owned(vec![
                    scheme.to_string(),
                    match mode {
                        ChoiceMode::Stream => "stream".to_string(),
                        ChoiceMode::Keyed => "keyed".to_string(),
                    },
                    report.stats.max_load().to_string(),
                    format_fraction(shard_max.mean()),
                    report.stats.total_balls().to_string(),
                    format!("{:.2}", report.ops_per_sec() / 1e6),
                ]);
            }
        }
        out.push_str(&format!("--- scenario: {} ---\n", scenario.name()));
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_experiment_renders_all_scenarios() {
        let opts = Opts {
            trials: 1,
            seed: 3,
            threads: 0,
            full: false,
        };
        let text = engine(&opts);
        for name in Scenario::names() {
            assert!(text.contains(name), "missing scenario {name}: {text}");
        }
        for scheme in SCHEMES {
            assert!(text.contains(scheme), "missing scheme {scheme}");
        }
        for mode in ["stream", "keyed"] {
            assert!(text.contains(mode), "missing mode {mode}");
        }
    }
}
