//! The pipeline experiment: phased vs pipelined ingestion throughput.
//!
//! Where the `engine` experiment compares *schemes* and the worker-mode
//! bench races *application* strategies, this experiment isolates the
//! ingestion axis: the same scenarios, scheme, and seed are served once
//! with strict generate/apply phases (the `IngestMode::Phased` baseline,
//! persistent workers), once through the lock-free SPSC-ring pipeline at
//! several queue depths, and once per producer count with routing fanned
//! out across threads at the mid depth. Every pipelined cell is checked
//! bit-identical to its phased baseline (balls, max load, full stats)
//! before any rate is reported, so the speedup column can never be
//! bought with a divergence — at any producer count.
//!
//! Besides the rendered table, the experiment emits a machine-readable
//! `BENCH_pipeline.json` next to the working directory — the perf
//! trajectory file CI regenerates on every run (and gates against the
//! committed baseline, see [`crate::gate`]), so ingestion throughput has
//! a tracked history.
//!
//! Every cell also runs with a [`ba_engine::SharedSink`] attached, so
//! the table and the JSON carry the pipeline's *pressure* alongside its
//! rate: backpressure stall count, total stall time, and the peak
//! bounded-queue occupancy seen at any ship.

use crate::Opts;
use ba_engine::{EngineConfig, SharedSink};
use ba_stats::json::JsonObject;
use ba_stats::Table;
use ba_workload::{run_scenario_with_sink, DriveReport, Scenario};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// Queue depths the single-producer pipelined cells sweep. Depth 1 is
/// the strict double-buffer; 64 approximates an unbounded ring at these
/// batch counts.
const QUEUE_DEPTHS: &[usize] = &[1, 4, 16, 64];

/// Producer-thread counts swept at the mid depth: 1 rides along with the
/// depth sweep; 2 and 4 fan the routing stage out across threads. Every
/// cell is still checked bit-identical to phased — the (producer, seq)
/// merge makes the fan-out invisible to results.
const PRODUCERS: &[usize] = &[2, 4];

/// The queue depth the multi-producer cells run at (the sweep's middle
/// depth: deep enough to decouple producers from workers, shallow enough
/// that backpressure still shows up in the stall columns).
const FAN_DEPTH: usize = 4;

/// Scenarios the experiment times: cheap-to-generate uniform traffic
/// (application-bound, where pipelining helps least), the Zipf sampler
/// (generation-heavy, where overlap pays most), and mixed churn.
const SCENARIOS: &[Scenario] = &[
    Scenario::Uniform,
    Scenario::Zipf { theta: 0.9 },
    Scenario::Churn {
        delete_fraction: 0.5,
    },
];

/// Runs the sweep and writes `BENCH_pipeline.json` into the current
/// working directory (the repo root under `cargo run`).
pub fn pipeline(opts: &Opts) -> String {
    let total_ops = if opts.full { 1u64 << 21 } else { 1u64 << 19 };
    run_matrix(opts, total_ops, Path::new("BENCH_pipeline.json"))
}

/// One measured cell of the sweep.
struct Cell {
    scenario: &'static str,
    ingest: &'static str,
    queue_depth: Option<usize>,
    /// Producer-thread count on the pipelined path (`None` for phased,
    /// which has no separable routing stage).
    producers: Option<usize>,
    report: DriveReport,
    /// End-to-end generate+serve rate over the whole run's wall clock.
    /// [`DriveReport::ops_per_sec`] would be unfair here: phased runs
    /// report a serve-only rate (generation excluded), pipelined runs a
    /// combined rate (the overlap is the point) — so the sweep times the
    /// full drive for both and compares like with like.
    wall_ops_per_sec: f64,
    consistent: bool,
    /// Backpressure stalls across the run's shipped batches (pipelined
    /// cells; structurally zero for phased).
    stalls: u64,
    /// Total time the producer spent blocked on full queues.
    stalled: Duration,
    /// Total time producers spent routing ops into per-shard batches
    /// (multi-producer cells; zero where routing is not a separable
    /// stage).
    routed: Duration,
    /// Highest bounded-queue occupancy observed at any ship.
    peak_occupancy: u32,
}

/// Runs one scenario cell with a metrics sink attached and times the
/// whole drive, generation included. The same sink rides along in both
/// modes so the phased and pipelined rates carry identical overhead.
fn timed_run(
    scenario: &Scenario,
    config: EngineConfig,
    keyspace: u64,
    total_ops: u64,
    batch: usize,
) -> (DriveReport, f64, SharedSink) {
    let sink = SharedSink::new();
    let start = std::time::Instant::now();
    let report = run_scenario_with_sink(
        "double",
        scenario,
        config,
        keyspace,
        total_ops,
        batch,
        Box::new(sink.clone()),
    )
    .expect("known scheme");
    let wall = start.elapsed().as_secs_f64();
    let rate = if wall > 0.0 {
        total_ops as f64 / wall
    } else {
        f64::INFINITY
    };
    (report, rate, sink)
}

/// Folds a run's metric records into the cell's stall/routing/occupancy
/// columns.
fn pressure(sink: &SharedSink) -> (u64, Duration, Duration, u32) {
    let records = sink.records();
    let stalls = records.iter().map(|r| u64::from(r.stalls)).sum();
    let stalled = records.iter().map(|r| r.stalled).sum();
    let routed = records.iter().map(|r| r.routed).sum();
    let peak = records.iter().map(|r| r.queue_occupancy).max().unwrap_or(0);
    (stalls, stalled, routed, peak)
}

/// The sweep body, parameterized so tests can run a small matrix against
/// a scratch JSON path.
pub(crate) fn run_matrix(opts: &Opts, total_ops: u64, json_path: &Path) -> String {
    let shards = 4usize;
    let bins_per_shard = if opts.full { 1u64 << 14 } else { 1u64 << 10 };
    let keyspace = bins_per_shard * shards as u64;
    let batch = 1_024usize;
    let d = 3;
    let config = || EngineConfig::new(shards, bins_per_shard, d).seed(opts.seed);

    let mut out = format!(
        "Pipelined ingestion sweep: {shards} shards x {bins_per_shard} bins, d = {d}, \
         {total_ops} ops per cell, batch {batch}, seed {}\n\
         (phased = generate/apply alternation with persistent workers; pipelined = \
         producer ships per-shard batches into bounded queues while workers apply; \
         Mops/s is the end-to-end generate+serve wall rate for both modes, and every \
         pipelined cell is verified bit-identical to phased before timing counts)\n\n",
        opts.seed
    );
    let mut cells: Vec<Cell> = Vec::new();
    let mut all_consistent = true;
    for scenario in SCENARIOS {
        let (phased, phased_rate, phased_sink) =
            timed_run(scenario, config(), keyspace, total_ops, batch);
        // Single-producer depth sweep, then the producer fan-out at the
        // mid depth — one flat (depth, producers) cell list per scenario.
        let pipelined_axis: Vec<(usize, usize)> = QUEUE_DEPTHS
            .iter()
            .map(|&depth| (depth, 1))
            .chain(PRODUCERS.iter().map(|&prod| (FAN_DEPTH, prod)))
            .collect();
        for (depth, prod) in pipelined_axis {
            let (pipelined, rate, sink) = timed_run(
                scenario,
                config().pipelined_producers(depth, prod),
                keyspace,
                total_ops,
                batch,
            );
            let consistent =
                pipelined.summary == phased.summary && pipelined.stats.matches(&phased.stats);
            all_consistent &= consistent;
            let (stalls, stalled, routed, peak_occupancy) = pressure(&sink);
            cells.push(Cell {
                scenario: scenario.name(),
                ingest: "pipelined",
                queue_depth: Some(depth),
                producers: Some(prod),
                report: pipelined,
                wall_ops_per_sec: rate,
                consistent,
                stalls,
                stalled,
                routed,
                peak_occupancy,
            });
        }
        let (stalls, stalled, routed, peak_occupancy) = pressure(&phased_sink);
        cells.push(Cell {
            scenario: scenario.name(),
            ingest: "phased",
            queue_depth: None,
            producers: None,
            report: phased,
            wall_ops_per_sec: phased_rate,
            consistent: true,
            stalls,
            stalled,
            routed,
            peak_occupancy,
        });
    }

    let mut table = Table::new(&[
        "scenario",
        "ingest",
        "depth",
        "prod",
        "Mops/s",
        "max load",
        "balls",
        "stalls",
        "stall ms",
        "route ms",
        "identical",
    ]);
    for cell in &cells {
        table.row_owned(vec![
            cell.scenario.to_string(),
            cell.ingest.to_string(),
            cell.queue_depth.map_or("-".into(), |d| d.to_string()),
            cell.producers.map_or("-".into(), |p| p.to_string()),
            format!("{:.2}", cell.wall_ops_per_sec / 1e6),
            cell.report.stats.max_load().to_string(),
            cell.report.stats.total_balls().to_string(),
            cell.stalls.to_string(),
            format!("{:.1}", cell.stalled.as_secs_f64() * 1e3),
            format!("{:.1}", cell.routed.as_secs_f64() * 1e3),
            if cell.consistent { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\noverall: pipelined results {} phased across every scenario x queue depth x producer count\n",
        if all_consistent {
            "bit-identical to"
        } else {
            "DIVERGE from"
        }
    ));

    let json = render_json(opts, shards, bins_per_shard, total_ops, batch, &cells);
    // A failed write must fail the run (CI would otherwise validate a
    // stale committed file), so this panics rather than logging.
    std::fs::write(json_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", json_path.display()));
    let _ = writeln!(out, "wrote {}", json_path.display());
    out
}

/// Renders the sweep as a small JSON document. The outer shell is a
/// pretty-printed object; each cell line is built with the shared
/// [`ba_stats::json`] helper — the same escaping/formatting path the
/// engine's metrics exporter uses — since the workspace takes no
/// serialization dependency.
fn render_json(
    opts: &Opts,
    shards: usize,
    bins_per_shard: u64,
    total_ops: u64,
    batch: usize,
    cells: &[Cell],
) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"pipeline\",");
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    // Hardware parallelism of the box that produced the numbers: the
    // gate uses it to decide whether multi-producer speedup expectations
    // are physically meaningful on the candidate run's host.
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let _ = writeln!(json, "  \"parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"bins_per_shard\": {bins_per_shard},");
    let _ = writeln!(json, "  \"total_ops\": {total_ops},");
    let _ = writeln!(json, "  \"batch_size\": {batch},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let obj = JsonObject::new()
            .field_str("scenario", cell.scenario)
            .field_str("ingest", cell.ingest);
        let obj = match cell.queue_depth {
            Some(depth) => obj.field_u64("queue_depth", depth as u64),
            None => obj.field_raw("queue_depth", "null"),
        };
        let obj = match cell.producers {
            Some(prod) => obj.field_u64("producers", prod as u64),
            None => obj.field_raw("producers", "null"),
        };
        let line = obj
            .field_raw("ops_per_sec", &format!("{:.0}", cell.wall_ops_per_sec))
            .field_u64("max_load", u64::from(cell.report.stats.max_load()))
            .field_u64("balls", cell.report.stats.total_balls())
            .field_u64("stalls", cell.stalls)
            .field_u64("stall_us", cell.stalled.as_micros() as u64)
            .field_u64("route_us", cell.routed.as_micros() as u64)
            .field_u64("peak_occupancy", u64::from(cell.peak_occupancy))
            .field_bool("identical", cell.consistent)
            .finish();
        let _ = write!(json, "    {line}");
        json.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_experiment_verifies_and_emits_json() {
        let opts = Opts {
            trials: 1,
            seed: 3,
            threads: 0,
            full: false,
        };
        let path =
            std::env::temp_dir().join(format!("BENCH_pipeline_test_{}.json", std::process::id()));
        let text = run_matrix(&opts, 8_192, &path);
        for name in ["uniform", "zipf", "churn"] {
            assert!(text.contains(name), "missing scenario {name}: {text}");
        }
        assert!(text.contains("bit-identical to phased"), "{text}");
        assert!(!text.contains("DIVERGE"), "{text}");
        let json = std::fs::read_to_string(&path).expect("json written");
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"experiment\": \"pipeline\""), "{json}");
        assert!(json.contains("\"parallelism\": "), "{json}");
        assert!(json.contains("\"queue_depth\": null"), "{json}");
        assert!(json.contains("\"queue_depth\": 64"), "{json}");
        assert!(json.contains("\"producers\": null"), "{json}");
        assert!(json.contains("\"producers\": 1"), "{json}");
        assert!(json.contains("\"producers\": 2"), "{json}");
        assert!(json.contains("\"producers\": 4"), "{json}");
        assert!(json.contains("\"identical\": true"), "{json}");
        assert!(!json.contains("\"identical\": false"), "{json}");
        assert!(json.contains("\"stalls\": "), "{json}");
        assert!(json.contains("\"stall_us\": "), "{json}");
        assert!(json.contains("\"route_us\": "), "{json}");
        assert!(json.contains("\"peak_occupancy\": "), "{json}");
        // The emitted document must at least be brace-balanced — cheap
        // insurance for a hand-rolled writer.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }
}
